// fault_tolerance_demo: show that the paper's figures survive dirty telemetry.
//
// Runs the same campaign three ways — perfect collector, faults + robust
// ingest, faults with ingest disabled ("trust the collector") — and compares
// the headline reproduced quantities, followed by the ingest's data-quality
// ledger for the cleaned run.
//
//   ./fault_tolerance_demo [--days 3] [--seed 42]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/job_analysis.hpp"
#include "core/study.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"

using namespace hpcpower;

namespace {

struct Headline {
  double median_w = 0.0;
  double mean_w = 0.0;
  double rho_length = 0.0;
  double rho_size = 0.0;
  std::size_t jobs = 0;
  std::size_t non_finite = 0;
};

// NaN-safe on purpose: the raw-ingest campaign can carry NaN job records,
// which the library analyzers are never fed (cleaning runs first); the demo
// has to aggregate them manually to show the damage.
Headline headline(const core::CampaignData& data) {
  Headline h;
  const core::JobFilter filter;
  std::vector<double> watts;
  for (const auto& r : data.records) {
    if (!filter.accepts(r)) continue;
    ++h.jobs;
    if (!std::isfinite(r.mean_node_power_w)) {
      ++h.non_finite;
      continue;
    }
    watts.push_back(r.mean_node_power_w);
  }
  if (watts.empty()) return h;
  std::sort(watts.begin(), watts.end());
  h.median_w = watts[watts.size() / 2];
  for (const double w : watts) h.mean_w += w;
  h.mean_w /= static_cast<double>(watts.size());
  if (h.non_finite == 0) {
    const auto corr = core::analyze_correlations(data);
    h.rho_length = corr.length_vs_power.coefficient;
    h.rho_size = corr.size_vs_power.coefficient;
  }
  return h;
}

void print_headline(const char* label, const Headline& h, bool correlations) {
  std::printf("  %-24s %6zu jobs, median %6.1f W, mean %6.1f W", label, h.jobs,
              h.median_w, h.mean_w);
  if (h.non_finite > 0)
    std::printf(", %zu NaN-poisoned records", h.non_finite);
  else if (correlations)
    std::printf(", rho(runtime)=%.2f rho(nnodes)=%.2f", h.rho_length, h.rho_size);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("fault_tolerance_demo",
                     "compare clean, cleaned-dirty, and raw-dirty campaigns");
  opts.add_option("days", "campaign length in days", "3");
  opts.add_option("seed", "root random seed", "42");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  util::set_log_level(util::LogLevel::kWarn);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.warmup_days = 0.5;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  const auto spec = cluster::emmy_spec();
  std::printf("%s, %.0f-day campaign, seed %llu\n\n", spec.name.c_str(), config.days,
              static_cast<unsigned long long>(config.seed));

  const auto baseline = core::run_campaign(spec, config);

  core::StudyConfig faulty = config;
  faulty.faults.enabled = true;
  const auto cleaned = core::run_campaign(spec, faulty);

  core::StudyConfig raw = faulty;
  raw.cleaning.enabled = false;
  const auto unclean = core::run_campaign(spec, raw);

  std::printf("Fig 3 / Table 2 headline quantities:\n");
  print_headline("perfect collector", headline(baseline), true);
  print_headline("faults + robust ingest", headline(cleaned), true);
  print_headline("faults, raw ingestion", headline(unclean), true);

  const auto& q = cleaned.quality;
  std::printf("\nIngest ledger of the cleaned run (%s):\n",
              q.reconciles() ? "reconciles" : "DOES NOT RECONCILE");
  std::printf("  %s\n", telemetry::describe(q).c_str());
  std::printf("  node dropout: mean %.2f%%, worst node %u at %.2f%% (%u nodes"
              " with gaps)\n",
              100.0 * q.mean_node_dropout_rate, q.worst_node,
              100.0 * q.max_node_dropout_rate, q.nodes_with_gaps);

  std::printf("\nprocess counters:\n");
  for (const auto& [name, value] : util::counters().snapshot())
    std::printf("  %-40s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  return 0;
}

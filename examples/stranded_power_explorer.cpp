// stranded_power_explorer: explore the paper's Sec 3/6 "stranded power"
// opportunity under stress, closed-loop. Runs the robustness scenario matrix
// (site-cap tightness x predictor quality x node-failure rate, with meter
// faults throughout) with the hierarchical power manager in the loop, and
// renders the matrix report: stranded power recovered, remaining headroom
// (the over-provisioning margin), throttle/degraded occupancy, and the two
// safety verdicts (cap never exceeded, ledger reconciles exactly).
//
//   ./stranded_power_explorer [--days 6] [--seed 42] [--system emmy|meggie]
//                             [--threads N]

#include <cstdio>

#include "core/power_study.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("stranded_power_explorer",
                     "closed-loop stranded-power robustness matrix");
  opts.add_option("days", "campaign length in days per scenario", "6");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("system", "emmy or meggie", "emmy");
  opts.add_flag("quiet", "suppress progress logging");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  const auto spec = util::to_lower(opts.str("system")) == "meggie"
                        ? cluster::meggie_spec()
                        : cluster::emmy_spec();
  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = 0.0;  // no detailed instrumentation needed

  core::PowerScenarioAxes axes;  // defaults: 3 caps x 3 sigmas x {off, 2d MTBF}
  std::printf("%s: %zu scenarios x %.0f-day campaigns (meter fault rate %.0f%%)\n",
              spec.name.c_str(),
              axes.cap_fractions.size() * axes.predictor_sigmas.size() *
                  axes.failure_mtbf_days.size(),
              config.days, 100.0 * axes.meter_fault_rate);
  const auto matrix = core::run_power_scenario_matrix(spec, config, axes);
  std::printf("\n%s", core::render_power_matrix_markdown(matrix).c_str());

  // Over-provisioning estimate from the tightest safe cap: the headroom the
  // manager preserved is budget a facility could spend on more nodes.
  const auto& tightest = matrix.rows.front();
  const double provisioned_kw = spec.provisioned_power_watts() / 1000.0;
  std::printf(
      "\nover-provisioning estimate: at the %.0f%% cap the manager kept the\n"
      "machine %.1f kW under the site budget even with mispredictions and\n"
      "failures; against %.0f kW provisioned, that margin plus the recovered\n"
      "stranded power is the electrical room for extra nodes.\n",
      100.0 * tightest.cap_fraction, tightest.report.headroom_w() / 1000.0,
      provisioned_kw);
  return matrix.any_cap_violated || !matrix.all_ledgers_reconcile ? 1 : 0;
}

// stranded_power_explorer: explore the paper's Sec 3/6 "stranded power"
// opportunity. Sweeps whole-system power caps against the simulated campaign
// and estimates how many extra nodes the released budget could host
// (hardware over-provisioning), plus the effect of a static per-node cap.
//
//   ./stranded_power_explorer [--days 10] [--seed 42]

#include <cstdio>

#include "core/system_analysis.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("stranded_power_explorer",
                     "quantify stranded power and cap/over-provisioning options");
  opts.add_option("days", "campaign length in days", "10");
  opts.add_option("seed", "root random seed", "42");
  opts.add_flag("quiet", "suppress progress logging");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = 0.0;  // no detailed instrumentation needed

  for (const auto& data : core::run_both_systems(config)) {
    const auto report = core::analyze_system_utilization(data, 0);
    const double provisioned_kw = data.spec.provisioned_power_watts() / 1000.0;
    std::printf("\n=== %s ===\n", data.spec.name.c_str());
    std::printf("provisioned power:      %8.0f kW (all %u nodes at TDP)\n",
                provisioned_kw, data.spec.node_count);
    std::printf("mean consumed power:    %8.0f kW (%.1f%% of provisioned)\n",
                report.mean_power_utilization * provisioned_kw,
                100.0 * report.mean_power_utilization);
    std::printf("stranded power:         %8.0f kW (%.1f%%)\n", report.stranded_power_kw,
                100.0 * report.stranded_power_fraction);

    std::printf("\nwhole-system cap sweep (fraction of provisioned power):\n");
    std::printf("  %-8s %-20s %s\n", "cap", "minutes over cap", "headroom vs peak");
    for (const double cap : {0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60}) {
      const double clipped = core::fraction_minutes_above_cap(data, cap);
      std::printf("  %6.0f%% %18.2f%% %16.1f%%\n", 100.0 * cap, 100.0 * clipped,
                  100.0 * (cap - report.peak_power_utilization));
    }

    // Over-provisioning estimate: if the facility capped the machine at the
    // observed peak + 2% and spent the released budget on more nodes drawing
    // the observed mean per busy node.
    const double cap_fraction = report.peak_power_utilization + 0.02;
    const double released_kw = (1.0 - cap_fraction) * provisioned_kw;
    const double mean_node_kw =
        report.mean_power_utilization * provisioned_kw /
        (report.mean_system_utilization * data.spec.node_count);
    const auto extra_nodes = static_cast<int>(released_kw / mean_node_kw);
    std::printf(
        "\nover-provisioning estimate: capping at %.0f%% frees %.0f kW, enough\n"
        "to host ~%d additional nodes at the observed mean draw (%.0f W/node) -\n"
        "+%.1f%% throughput for the same electrical budget.\n",
        100.0 * cap_fraction, released_kw, extra_nodes, 1000.0 * mean_node_kw,
        100.0 * extra_nodes / data.spec.node_count);
  }
  return 0;
}

// quickstart: simulate a short measurement campaign on both studied systems
// and print the headline numbers of the paper's three analysis levels
// (system, job, user). Start here to see the whole API surface in one page.
//
//   ./quickstart [--days 7] [--seed 42]

#include <cstdio>

#include "core/job_analysis.hpp"
#include "core/prediction.hpp"
#include "core/system_analysis.hpp"
#include "core/user_analysis.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("quickstart", "headline numbers of the power study");
  opts.add_option("days", "campaign length in days", "7");
  opts.add_option("seed", "root random seed", "42");
  opts.add_flag("quiet", "suppress progress logging");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 1.0;
  config.instrument_end_day = config.days;

  for (const auto& data : core::run_both_systems(config)) {
    const auto sys = core::analyze_system_utilization(data, 0);
    const auto power = core::analyze_per_node_power(data);
    const auto temporal = core::analyze_temporal(data);
    const auto spatial = core::analyze_spatial(data);
    const auto conc = core::analyze_concentration(data);
    const auto corr = core::analyze_correlations(data);

    std::printf("\n=== %s (%u nodes, %.0f W TDP) ===\n", data.spec.name.c_str(),
                data.spec.node_count, data.spec.node_tdp_watts);
    std::printf("jobs recorded:            %zu\n", data.records.size());
    std::printf("system utilization:       %.1f%%\n", 100.0 * sys.mean_system_utilization);
    std::printf("power utilization:        %.1f%% (peak %.1f%%, stranded %.1f%%)\n",
                100.0 * sys.mean_power_utilization, 100.0 * sys.peak_power_utilization,
                100.0 * sys.stranded_power_fraction);
    std::printf("per-node power:           %.1f W mean (%.0f%% of TDP), std %.1f W (%.0f%%)\n",
                power.watts.mean, 100.0 * power.mean_tdp_fraction, power.watts.stddev,
                100.0 * power.std_fraction_of_mean);
    std::printf("spearman length/size:     %.2f / %.2f\n",
                corr.length_vs_power.coefficient, corr.size_vs_power.coefficient);
    std::printf("temporal: cv %.1f%%, peak overshoot %.1f%%, never-above +10%%: %.0f%%\n",
                100.0 * temporal.mean_temporal_cv, 100.0 * temporal.mean_peak_overshoot,
                100.0 * temporal.fraction_jobs_never_above);
    std::printf("spatial:  avg spread %.1f W (%.1f%% of power), time above avg %.0f%%\n",
                spatial.mean_avg_spread_w, 100.0 * spatial.mean_spread_fraction,
                100.0 * spatial.mean_time_above_avg_spread);
    std::printf("users:    top-20%% node-hours %.0f%%, energy %.0f%%, overlap %.0f%%\n",
                100.0 * conc.top20_node_hours_share, 100.0 * conc.top20_energy_share,
                100.0 * conc.top20_overlap);
    const auto espread = core::analyze_energy_spread(data);
    const auto uservar = core::analyze_user_variability(data);
    const auto cluster_n =
        core::analyze_cluster_variability(data, core::ClusterKey::kUserNodes);
    std::printf("node-energy spread >15%%:  %.0f%% of jobs\n",
                100.0 * espread.fraction_above_15pct);
    std::printf("per-user power cv:        %.0f%% mean; (user,nodes) clusters <10%%: %.0f%%\n",
                100.0 * uservar.mean_power_cv, 100.0 * cluster_n.share_below_10);

    const auto prediction = core::analyze_prediction(data);
    for (const auto& model : prediction.models)
      std::printf("predict [%s]: <5%% err: %.0f%%, <10%% err: %.0f%%, mean %.1f%%\n",
                  model.model.c_str(), 100.0 * model.fraction_below(0.05),
                  100.0 * model.fraction_below(0.10), 100.0 * model.mean_error());
  }
  return 0;
}

// failure_resilience_demo: campaigns on a machine that actually breaks.
//
// Runs the same campaign twice — perfect hardware, then with the node
// failure/repair/requeue model enabled — and prints the availability ledger
// (node-hours lost, killed attempts, requeue waits) plus the exit-status
// breakdown of the job dataset. Finishes by checkpointing a failure-ridden
// campaign halfway, resuming it, and verifying the resumed result is
// bit-identical to the uninterrupted run.
//
//   ./failure_resilience_demo [--days 3] [--seed 42] [--mtbf-days 10]

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/checkpoint.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "workload/generator.hpp"

using namespace hpcpower;

namespace {

void print_campaign(const char* label, const core::CampaignData& data) {
  std::map<sched::ExitStatus, std::size_t> by_exit;
  for (const auto& r : data.records) ++by_exit[r.exit];
  std::printf("  %-20s %5zu records, mean wait %6.1f min", label,
              data.records.size(), data.scheduler.mean_wait_minutes());
  for (const auto& [exit, n] : by_exit)
    if (exit != sched::ExitStatus::kCompleted)
      std::printf(", %zu %s", n, sched::exit_status_name(exit));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("failure_resilience_demo",
                     "node failures, requeue, and checkpointable campaigns");
  opts.add_option("days", "campaign length in days", "3");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("mtbf-days", "per-node mean time between failures", "10");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  util::set_log_level(util::LogLevel::kWarn);
  obs::set_recording(true);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.warmup_days = 0.5;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  const auto spec = cluster::emmy_spec();
  std::printf("%s, %.0f-day campaign, seed %llu\n\n", spec.name.c_str(), config.days,
              static_cast<unsigned long long>(config.seed));

  const auto perfect = core::run_campaign(spec, config);

  core::StudyConfig failing = config;
  failing.node_failures.enabled = true;
  failing.node_failures.mtbf_days = opts.number("mtbf-days");
  const auto broken = core::run_campaign(spec, failing);

  std::printf("Job dataset:\n");
  print_campaign("perfect hardware", perfect);
  print_campaign("with node failures", broken);

  const auto& a = broken.availability;
  std::printf("\nAvailability ledger (MTBF %.1f days, MTTR %.0f min):\n",
              failing.node_failures.mtbf_days, failing.node_failures.mttr_min);
  std::printf("  node-hours: %.1f total, %.1f delivered, %.1f lost to repairs\n",
              static_cast<double>(a.node_minutes_total) / 60.0,
              static_cast<double>(a.node_minutes_delivered()) / 60.0,
              static_cast<double>(a.node_minutes_down) / 60.0);
  std::printf("  %llu node failures killed %llu job attempts; %llu requeued"
              " (%llu out of retries)\n",
              static_cast<unsigned long long>(a.node_failures),
              static_cast<unsigned long long>(a.attempts_killed),
              static_cast<unsigned long long>(a.requeues),
              static_cast<unsigned long long>(a.requeues_exhausted));
  std::printf("  requeue-induced wait: %.0f minutes across all retries\n",
              a.requeue_wait_minutes);

  // Checkpoint/resume: snapshot the failure-ridden campaign at half time,
  // resume it in a fresh simulator, and compare against the straight run.
  workload::GeneratorConfig gcfg;
  gcfg.seed = config.seed;
  gcfg.duration = util::MinuteTime::from_days(config.days);
  workload::WorkloadGenerator generator(spec, workload::calibration_for(spec.id), gcfg);
  const auto jobs = generator.generate();

  const auto make_sim = [&] {
    return sched::CampaignSimulator(spec.node_count, gcfg.duration,
                                    sched::SchedulerPolicy::kFcfsBackfill, {},
                                    failing.node_failures, config.seed);
  };
  auto straight_sim = make_sim();
  const auto straight = straight_sim.run(jobs);

  std::stringstream checkpoint;
  const util::MinuteTime half(gcfg.duration.minutes() / 2);
  auto first_half = make_sim();
  (void)first_half.run_until(jobs, half, checkpoint);
  auto second_half = make_sim();
  const auto resumed = second_half.resume(checkpoint, jobs);

  std::printf("\nCheckpoint at minute %lld (%zu bytes): resumed campaign is %s\n",
              static_cast<long long>(half.minutes()), checkpoint.str().size(),
              resumed == straight ? "bit-identical to the uninterrupted run"
                                  : "DIFFERENT — determinism bug!");

  const auto snapshot = obs::metrics().snapshot();
  const auto slowest = obs::slowest_timer(snapshot, "");
  std::printf("observability: %llu spans recorded, slowest stage %s (%.1f ms)\n",
              static_cast<unsigned long long>(obs::recorded_span_count()),
              slowest ? slowest->name.c_str() : "n/a",
              slowest ? static_cast<double>(slowest->total_ns) / 1e6 : 0.0);
  return resumed == straight ? 0 : 1;
}

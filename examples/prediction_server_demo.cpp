// prediction_server_demo: the prediction serving layer end to end —
// stream-fed feature store, versioned snapshot training, durable save/load,
// online drift detection, and deterministic batched serving.
//
// Phase 1 streams a campaign through the ingest daemon with the completion
// tap feeding the PredictionService's feature store (no snapshot installed
// yet, so completions only accumulate). Phase 2 trains snapshot v1 from the
// store — or, with --load-snapshot, loads a previously saved file instead —
// and installs it; --snapshot saves the trained snapshot atomically, and
// --kill-after-save exits 137 right after the save (the tier-1 smoke kills
// here, restarts with --load-snapshot, and requires byte-identical
// predictions, proving the snapshot round-trip preserves the models
// bit-for-bit). Phase 3 optionally streams a second campaign (--online-days)
// whose completions hit the live drift -> retrain -> rollback pipeline.
// Finally every retained completion is re-scored through predict_batch and
// written to --predictions-out.
//
//   ./prediction_server_demo --days 1 --snapshot snap.hpsn --predictions-out p.txt
//   ./prediction_server_demo --days 1 --snapshot snap.hpsn --kill-after-save
//   ./prediction_server_demo --days 1 --load-snapshot snap.hpsn --predictions-out p.txt

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "obs/manifest.hpp"
#include "obs/span.hpp"
#include "serve/service.hpp"
#include "stream/source.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

namespace {

serve::Completion to_completion(const telemetry::JobRecord& r) {
  serve::Completion c;
  c.job_id = r.job_id;
  c.user_id = r.user_id;
  c.nnodes = r.nnodes;
  c.walltime_req_min = r.walltime_req_min;
  c.node_power_w = r.mean_node_power_w;
  return c;
}

void stream_into(serve::PredictionService& service,
                 const cluster::SystemSpec& spec, core::StudyConfig config) {
  stream::IngestConfig ingest;  // memory-only: the WAL story lives in the
                                // streaming demo; here the tap is the point
  ingest.on_job_completed = [&service](const telemetry::JobRecord& r) {
    (void)service.observe_completion(to_completion(r));
  };
  (void)stream::run_streamed_campaign(spec, config, ingest);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("prediction_server_demo",
                     "serve power predictions from versioned model snapshots");
  opts.add_option("days", "training campaign length in days", "1");
  opts.add_option("warmup-days", "warmup period excluded from analysis", "0.25");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("online-days",
                  "second campaign streamed against the live service to "
                  "exercise drift detection (0 = skip)",
                  "0");
  opts.add_option("online-seed", "seed of the online campaign", "43");
  opts.add_option("snapshot", "save the trained snapshot here", "");
  opts.add_option("load-snapshot", "load this snapshot instead of training", "");
  opts.add_flag("kill-after-save",
                "exit 137 immediately after the snapshot save (crash smoke)");
  opts.add_option("predictions-out",
                  "write served predictions (one per retained completion)", "");
  opts.add_option("metrics-out", "write the JSON run manifest here", "");
  opts.add_flag("quiet", "suppress the stdout summary");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  util::set_log_level(util::LogLevel::kWarn);
  if (!opts.str("metrics-out").empty()) obs::set_recording(true);
  if (opts.flag("kill-after-save") && opts.str("snapshot").empty()) {
    std::fprintf(stderr, "--kill-after-save needs --snapshot\n");
    return 2;
  }

  try {
    serve::PredictionService service;
    const auto spec = cluster::emmy_spec();

    // Phase 1: fill the feature store from the streamed campaign.
    core::StudyConfig config;
    config.seed = opts.seed();
    config.days = opts.number("days");
    config.warmup_days = opts.number("warmup-days");
    config.instrument_begin_day = 0.0;
    config.instrument_end_day = config.days;
    stream_into(service, spec, config);

    // Phase 2: train v1 from the store, or load a saved snapshot.
    std::shared_ptr<const serve::ModelSnapshot> snap;
    if (!opts.str("load-snapshot").empty()) {
      snap = serve::ModelSnapshot::load_file(opts.str("load-snapshot"));
    } else {
      std::uint64_t watermark = 0;
      const ml::Dataset data = service.store().training_set(&watermark);
      serve::SnapshotTrainConfig train;
      train.seed = opts.seed();
      train.source_watermark = watermark;
      snap = serve::ModelSnapshot::train(data, serve::submission_schema(), train);
    }
    if (!opts.str("snapshot").empty()) {
      snap->save_file(opts.str("snapshot"));
      if (opts.flag("kill-after-save")) std::_Exit(137);
    }
    service.install(snap);

    // Phase 3: optional online campaign against the live service.
    const double online_days = opts.number("online-days");
    if (online_days > 0.0) {
      core::StudyConfig online = config;
      online.seed = opts.seed("online-seed");
      online.days = online_days;
      online.warmup_days = std::min(config.warmup_days, online_days / 2.0);
      online.instrument_end_day = online.days;
      stream_into(service, spec, online);
    }

    // Score every retained completion through the batched path.
    const ml::Dataset requests = service.store().training_set();
    std::vector<double> features;
    features.reserve(requests.size() * requests.dim());
    for (std::size_t i = 0; i < requests.size(); ++i)
      for (const double v : requests.row(i)) features.push_back(v);
    const std::vector<double> served = service.predict_batch(features);

    const auto live = service.snapshot();
    if (!opts.str("predictions-out").empty()) {
      std::ofstream out(opts.str("predictions-out"),
                        std::ios::binary | std::ios::trunc);
      char line[64];
      std::snprintf(line, sizeof line,
                    "# snapshot v%llu rows=%zu\n",
                    static_cast<unsigned long long>(live->version()),
                    served.size());
      out << line;
      for (const double p : served) {
        std::snprintf(line, sizeof line, "%.17g\n", p);
        out << line;
      }
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n",
                     opts.str("predictions-out").c_str());
        return 1;
      }
    }

    if (!opts.flag("quiet")) {
      const auto stats = service.stats();
      std::printf("snapshot: version=%llu trained_rows=%llu mape=%.3f p50=%.3f\n",
                  static_cast<unsigned long long>(live->version()),
                  static_cast<unsigned long long>(live->meta().trained_rows),
                  live->meta().validation_mape, live->meta().validation_p50);
      std::printf("store: completions=%llu retained=%zu users=%zu\n",
                  static_cast<unsigned long long>(service.store().recorded()),
                  service.store().size(), service.store().user_count());
      std::printf("serving: predictions=%llu batches=%llu installs=%llu\n",
                  static_cast<unsigned long long>(stats.predictions),
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<unsigned long long>(stats.installs));
      std::printf("drift: trips=%llu retrains=%llu rollbacks=%llu skipped=%llu\n",
                  static_cast<unsigned long long>(stats.drift_trips),
                  static_cast<unsigned long long>(stats.retrains),
                  static_cast<unsigned long long>(stats.rollbacks),
                  static_cast<unsigned long long>(stats.retrains_skipped));
    }

    if (!opts.str("metrics-out").empty()) {
      obs::RunInfo info;
      info.program = "prediction_server_demo";
      info.seed = opts.seed();
      info.threads = util::global_thread_count();
      info.config = {
          {"days", opts.str("days")},
          {"online-days", opts.str("online-days")},
          {"snapshot", opts.str("snapshot")},
          {"load-snapshot", opts.str("load-snapshot")},
      };
      obs::write_run_manifest(opts.str("metrics-out"), info);
      if (!opts.flag("quiet"))
        std::printf("wrote run manifest to %s\n", opts.str("metrics-out").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prediction_server_demo: %s\n", e.what());
    return 1;
  }
  return 0;
}

// generate_report: produce the complete study as a markdown document.
//
// This is the operator-facing face of the library: one command, one file
// containing every analysis of the paper for a simulated (or, via
// trace_explorer + replay, recorded) campaign.
//
//   ./generate_report [--days 10] [--seed 42] [--out report.md] [--no-ml]
//                     [--faults] [--failures] [--threads N]
//                     [--trace-out trace.json] [--metrics-out manifest.json]
//                     [--export-traces DIR] [--format csv|hpcb]
//
// --trace-out writes a Chrome trace-event profile of the run (load it in
// chrome://tracing or https://ui.perfetto.dev); --metrics-out writes the
// machine-readable run manifest. Either flag turns span recording on; the
// report itself stays byte-identical with or without them (DESIGN.md §6).
// --export-traces writes each campaign's job table and system series into
// DIR, in the container format chosen by --format (DESIGN.md §7).

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "core/report.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "trace/format.hpp"
#include "trace/job_table.hpp"
#include "trace/system_series.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("generate_report", "write the full study report as markdown");
  opts.add_option("days", "campaign length in days", "10");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("out", "output path", "hpcpower_report.md");
  opts.add_option("trace-out", "write a Chrome trace-event profile here", "");
  opts.add_option("metrics-out", "write the JSON run manifest here", "");
  opts.add_option("export-traces", "directory for job-table/series exports", "");
  opts.add_option("format", "trace export format: csv or hpcb", "csv");
  opts.add_flag("no-ml", "skip the (slow) prediction section");
  opts.add_flag("faults", "inject telemetry faults (with robust ingest)");
  opts.add_flag("failures", "inject node failures (kill + requeue)");
  opts.add_flag("quiet", "suppress progress logging");
  opts.add_threads_option();
  trace::TraceFormat export_format = trace::TraceFormat::kCsv;
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
    const auto parsed = trace::parse_trace_format(opts.str("format"));
    if (!parsed || *parsed == trace::TraceFormat::kAuto)
      throw std::invalid_argument("--format must be csv or hpcb");
    export_format = *parsed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  const std::string trace_out = opts.str("trace-out");
  const std::string metrics_out = opts.str("metrics-out");
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_recording(true);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;
  config.faults.enabled = opts.flag("faults");
  config.node_failures.enabled = opts.flag("failures");

  const auto campaigns = core::run_both_systems(config);

  core::ReportOptions report_opts;
  report_opts.include_prediction = !opts.flag("no-ml");
  core::write_markdown_report(opts.str("out"), campaigns, report_opts);
  std::printf("wrote study report to %s (%zu campaigns)\n", opts.str("out").c_str(),
              campaigns.size());

  if (!opts.str("export-traces").empty()) {
    const std::filesystem::path dir(opts.str("export-traces"));
    std::filesystem::create_directories(dir);
    const char* ext = export_format == trace::TraceFormat::kHpcb ? ".hpcb" : ".csv";
    for (const auto& campaign : campaigns) {
      std::string system = cluster::system_name(campaign.spec.id);
      for (char& ch : system) ch = static_cast<char>(std::tolower(ch));
      const std::string jobs =
          (dir / ("hpcpower_" + system + "_jobs" + ext)).string();
      const std::string series =
          (dir / ("hpcpower_" + system + "_series" + ext)).string();
      trace::save_job_table(jobs, campaign.records, export_format);
      trace::save_system_series(series, campaign.series, export_format);
      std::printf("exported %zu job records and %zu series minutes to %s, %s\n",
                  campaign.records.size(), campaign.series.total_power_w.size(),
                  jobs.c_str(), series.c_str());
    }
  }
  const auto counter_snapshot = util::counters().snapshot();
  if (!counter_snapshot.empty()) {
    std::printf("process counters:\n");
    for (const auto& [name, value] : counter_snapshot)
      std::printf("  %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  }

  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::RunInfo info;
    info.program = "generate_report";
    info.seed = config.seed;
    info.threads = util::global_thread_count();
    info.config = {
        {"days", util::format("%g", config.days)},
        {"out", opts.str("out")},
        {"faults", config.faults.enabled ? "true" : "false"},
        {"failures", config.node_failures.enabled ? "true" : "false"},
        {"prediction", report_opts.include_prediction ? "true" : "false"},
    };
    obs::write_run_manifest(metrics_out, info);
    std::printf("wrote run manifest to %s\n", metrics_out.c_str());
  }
  if (obs::recording()) {
    const auto snapshot = obs::metrics().snapshot();
    const auto slowest = obs::slowest_timer(snapshot, "");
    std::printf(
        "observability: %llu spans recorded, slowest stage %s (%.1f ms)%s%s\n",
        static_cast<unsigned long long>(obs::recorded_span_count()),
        slowest ? slowest->name.c_str() : "n/a",
        slowest ? static_cast<double>(slowest->total_ns) / 1e6 : 0.0,
        metrics_out.empty() ? "" : ", metrics in ",
        metrics_out.empty() ? "" : metrics_out.c_str());
  }
  return 0;
}

// generate_report: produce the complete study as a markdown document.
//
// This is the operator-facing face of the library: one command, one file
// containing every analysis of the paper for a simulated (or, via
// trace_explorer + replay, recorded) campaign.
//
//   ./generate_report [--days 10] [--seed 42] [--out report.md] [--no-ml]
//                     [--faults] [--threads N]

#include <cstdio>

#include "core/report.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("generate_report", "write the full study report as markdown");
  opts.add_option("days", "campaign length in days", "10");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("out", "output path", "hpcpower_report.md");
  opts.add_flag("no-ml", "skip the (slow) prediction section");
  opts.add_flag("faults", "inject telemetry faults (with robust ingest)");
  opts.add_flag("quiet", "suppress progress logging");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;
  config.faults.enabled = opts.flag("faults");

  const auto campaigns = core::run_both_systems(config);

  core::ReportOptions report_opts;
  report_opts.include_prediction = !opts.flag("no-ml");
  core::write_markdown_report(opts.str("out"), campaigns, report_opts);
  std::printf("wrote study report to %s (%zu campaigns)\n", opts.str("out").c_str(),
              campaigns.size());
  const auto counter_snapshot = util::counters().snapshot();
  if (!counter_snapshot.empty()) {
    std::printf("process counters:\n");
    for (const auto& [name, value] : counter_snapshot)
      std::printf("  %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  }
  return 0;
}

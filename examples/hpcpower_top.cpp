// hpcpower_top: live text dashboard over a continuously monitored campaign.
//
// Runs one streamed campaign (stream/source.hpp) with a SelfMonitor attached
// via StudyConfig::monitor, and prints a `top`-style frame every N *simulated*
// minutes: component health rollup, the live power/stream gauges, and the
// burn-rate state of every SLO rule. With --chaos the campaign runs the full
// adversarial stack — telemetry faults, node failures, transit faults, a
// tight site power cap, and an undersized ingest apply capacity — which
// deterministically drives the power manager into THROTTLE and the ingest
// daemon into SHEDDING, so the shipped SLO rules fire.
//
// At the end it writes the OpenMetrics text file and the self-metrics .hpcb
// (readable with `trace_explorer --inspect`), prints the monitoring report
// section, and cross-checks the SLO engine's fired/resolved tallies against
// the slo.* registry counters. tools/run_tier1.sh runs this binary with
// --chaos --require-alert as the monitoring smoke.
//
//   ./hpcpower_top --days 2 --chaos --frame-every 360
//   ./hpcpower_top --days 2 --chaos --quiet --require-alert
//       --openmetrics-out metrics.prom --self-metrics-out self.hpcb

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "stream/source.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

namespace {

const char* mode_name(double gauge, const char* names[3]) {
  const int m = static_cast<int>(gauge);
  return (m >= 0 && m <= 2) ? names[m] : "?";
}

void print_frame(std::int64_t minute, const obs::SelfMonitor& monitor) {
  auto& m = obs::metrics();
  static const char* kPowerModes[3] = {"NORMAL", "THROTTLE", "DEGRADED"};
  static const char* kStreamModes[3] = {"NORMAL", "LAGGING", "SHEDDING"};
  const auto health = obs::health().snapshot();

  std::printf("-- day %6.2f (minute %lld) -- health %s --\n",
              static_cast<double>(minute) / 1440.0,
              static_cast<long long>(minute),
              obs::health_status_name(obs::health().overall()));
  std::printf("  power   %-8s cap_violation_min=%.0f\n",
              mode_name(m.gauge("power.mode").value(), kPowerModes),
              m.gauge("power.cap.violation_minutes").value());
  std::printf("  stream  %-8s backlog=%.0f rows  applied=%.0f shed=%.0f\n",
              mode_name(m.gauge("stream.mode").value(), kStreamModes),
              m.gauge("stream.backlog.rows").value(),
              m.gauge("stream.rows.applied").value(),
              m.gauge("stream.rows.shed").value());
  for (const auto& c : health)
    std::printf("  health  %-16s %-9s %s\n", c.component.c_str(),
                obs::health_status_name(c.status), c.detail.c_str());
  // Rule status lags one cadence tick: collectors (this frame) run right
  // before the sample the SLO engine evaluates.
  for (const auto& s : monitor.slo().status())
    std::printf("  slo     %-24s burn %6.2f / %-6.2f %s\n", s.rule.c_str(),
                s.burn_short, s.burn_long, s.firing ? "FIRING" : "ok");
  std::printf("  alerts  %llu fired, %llu resolved, %zu active\n",
              static_cast<unsigned long long>(monitor.slo().fired()),
              static_cast<unsigned long long>(monitor.slo().resolved()),
              monitor.slo().active());
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("hpcpower_top",
                     "live self-monitoring dashboard over a streamed campaign");
  opts.add_option("days", "campaign length in days", "2");
  opts.add_option("warmup-days", "warmup period excluded from analysis", "0.25");
  opts.add_option("seed", "root random seed", "42");
  opts.add_flag("chaos", "telemetry faults + node failures + transit faults"
                        " + tight site cap + undersized ingest capacity");
  opts.add_option("site-cap", "site cap fraction used with --chaos", "0.55");
  opts.add_option("cadence", "monitor sampling cadence, simulated minutes", "1");
  opts.add_option("frame-every", "dashboard frame period, simulated minutes"
                                 " (0 = no frames)", "360");
  opts.add_option("export-every", "OpenMetrics re-export period, simulated"
                                  " minutes (0 = only at end)", "0");
  opts.add_option("openmetrics-out", "write the OpenMetrics text file here", "");
  opts.add_option("self-metrics-out", "write the self-metrics .hpcb here", "");
  opts.add_option("monitoring-out", "write the monitoring report section here", "");
  opts.add_flag("require-alert", "exit 3 unless at least one SLO alert fired");
  opts.add_flag("quiet", "suppress frames and the final report on stdout");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  util::set_log_level(util::LogLevel::kWarn);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.warmup_days = opts.number("warmup-days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  stream::IngestConfig ingest;
  stream::TransitFaultConfig faults;
  if (opts.flag("chaos")) {
    config.faults.enabled = true;
    config.node_failures.enabled = true;
    config.node_failures.mtbf_days = 10.0;
    config.power_manager.enabled = true;
    config.power_manager.site_cap_fraction = opts.number("site-cap");
    config.power_manager.predictor_error_sigma = 0.20;
    config.power_manager.meter_fault_rate = 0.05;
    faults.enabled = true;
    faults.seed = config.seed + 1;
    faults.drop_p = 0.08;
    faults.dup_p = 0.05;
    faults.delay_p = 0.10;
    // Far below the per-minute row volume, so the backlog model marches
    // through LAGGING into SHEDDING and the stream SLO rules have something
    // real to alert on.
    ingest.capacity_rows_per_batch = 64;
    ingest.shed_keep_rows_per_batch = 16;
  }

  obs::MonitorConfig mcfg;
  mcfg.cadence_minutes = opts.integer("cadence");
  mcfg.openmetrics_path = opts.str("openmetrics-out");
  mcfg.export_every_minutes = opts.integer("export-every");
  mcfg.self_metrics_path = opts.str("self-metrics-out");
  obs::SelfMonitor monitor(mcfg);
  config.monitor = &monitor;

  const std::int64_t frame_every = opts.integer("frame-every");
  if (!opts.flag("quiet") && frame_every > 0) {
    monitor.add_collector([&monitor, frame_every](std::int64_t minute) {
      if (minute % frame_every == 0) print_frame(minute, monitor);
    });
  }

  const std::uint64_t fired_before = util::counters().value("slo.alerts.fired");
  const std::uint64_t resolved_before =
      util::counters().value("slo.alerts.resolved");

  const auto spec = cluster::emmy_spec();
  stream::IngestDaemon daemon(spec, ingest);
  stream::StreamDriver driver(daemon, faults);
  const auto result = stream::run_streamed_campaign(spec, config, daemon, driver);
  daemon.export_metrics();  // bulk stream.* counters before the final sample

  const std::int64_t horizon =
      util::MinuteTime::from_days(config.warmup_days + config.days).minutes();
  try {
    monitor.finalize(horizon);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "finalize failed: %s\n", e.what());
    return 1;
  }

  const std::uint64_t fired_engine = monitor.slo().fired();
  const std::uint64_t resolved_engine = monitor.slo().resolved();
  const std::uint64_t fired_counter =
      util::counters().value("slo.alerts.fired") - fired_before;
  const std::uint64_t resolved_counter =
      util::counters().value("slo.alerts.resolved") - resolved_before;
  const bool reconciles =
      fired_engine == fired_counter && resolved_engine == resolved_counter;

  const std::string section = monitor.render_monitoring_section();
  if (!opts.str("monitoring-out").empty() &&
      !write_file(opts.str("monitoring-out"), section)) {
    std::fprintf(stderr, "failed to write %s\n",
                 opts.str("monitoring-out").c_str());
    return 1;
  }
  if (!opts.flag("quiet")) {
    std::fputs(section.c_str(), stdout);
    std::printf("\nstreamed %llu batches; slo ledger %s"
                " (engine %llu/%llu, counters %llu/%llu)\n",
                static_cast<unsigned long long>(result.batches_emitted),
                reconciles ? "reconciles" : "DOES NOT RECONCILE",
                static_cast<unsigned long long>(fired_engine),
                static_cast<unsigned long long>(resolved_engine),
                static_cast<unsigned long long>(fired_counter),
                static_cast<unsigned long long>(resolved_counter));
  }

  if (!reconciles) {
    std::fprintf(stderr, "slo ledger does not reconcile with slo.* counters\n");
    return 4;
  }
  if (opts.flag("require-alert") && fired_engine == 0) {
    std::fprintf(stderr, "--require-alert: no SLO alert fired\n");
    return 3;
  }
  return 0;
}

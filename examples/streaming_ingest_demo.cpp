// streaming_ingest_demo: drive one campaign through the crash-safe streaming
// ingest daemon and prove the durability story end to end.
//
// The demo regenerates the campaign deterministically from the seed, streams
// it batch-by-batch through the fault-injecting transport into an
// IngestDaemon, and writes the daemon's reconstructed report plus its
// deterministic state summary. With --kill-at-seq the daemon std::_Exit(137)s
// at the chosen batch boundary (optionally leaving a torn WAL record or a
// torn checkpoint behind); a follow-up run with --resume recovers from the
// WAL, drops every already-applied batch as stale, and must produce the exact
// bytes of the uninterrupted run. tools/check_crash_recovery.sh automates
// that kill/resume/diff loop.
//
//   ./streaming_ingest_demo --days 1 --wal /tmp/wal --out report.md
//   ./streaming_ingest_demo --days 1 --wal /tmp/wal --kill-at-seq 700
//       (add --kill-mode torn-wal|torn-checkpoint; exits 137 mid-stream)
//   ./streaming_ingest_demo --days 1 --wal /tmp/wal --resume --out report.md
//   ./streaming_ingest_demo --days 1 --spill /tmp/spill.hpcb --window-minutes 60
//       (spills applied detail rows to a queryable .hpcb; the trailing
//        window statistic is then a zone-map range query, not a ring walk)

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "core/report.hpp"
#include "core/study.hpp"
#include "obs/manifest.hpp"
#include "obs/span.hpp"
#include "storage/scan.hpp"
#include "stream/source.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("streaming_ingest_demo",
                     "stream a campaign through the crash-safe ingest daemon");
  opts.add_option("days", "campaign length in days", "1");
  opts.add_option("warmup-days", "warmup period excluded from analysis", "0.25");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("wal", "WAL directory (empty = memory-only, no durability)", "");
  opts.add_option("checkpoint-every", "batches between checkpoints (0 = replay-only)",
                  "64");
  opts.add_option("capacity", "apply capacity in rows/batch (0 disables degraded modes)",
                  "0");
  opts.add_option("shed-keep", "detail rows kept per batch while SHEDDING", "0");
  opts.add_flag("faults", "inject transit faults: drops, dups, delays, reordering");
  opts.add_option("transit-seed", "transit fault schedule seed", "1234");
  opts.add_option("kill-at-seq", "crash once this batch seq is durable (0 = never)", "0");
  opts.add_option("kill-mode",
                  "crash flavor: after-batch | torn-wal | torn-checkpoint",
                  "after-batch");
  opts.add_flag("resume", "recover from the WAL first; re-streamed batches drop as stale");
  opts.add_option("spill", "spill applied detail rows to this queryable .hpcb"
                           " file", "");
  opts.add_option("window-minutes", "trailing window queried from the spill"
                                    " after the run", "60");
  opts.add_option("out", "write the streamed campaign report here", "");
  opts.add_option("batch-out", "write the batch-path report here (for diffing)", "");
  opts.add_option("summary-out", "write the daemon's deterministic summary here", "");
  opts.add_option("metrics-out", "write the JSON run manifest here", "");
  opts.add_flag("quiet", "suppress the stdout summary");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  util::set_log_level(util::LogLevel::kWarn);
  if (!opts.str("metrics-out").empty()) obs::set_recording(true);

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.warmup_days = opts.number("warmup-days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  stream::IngestConfig ingest;
  ingest.wal_dir = opts.str("wal");
  ingest.spill_path = opts.str("spill");
  ingest.checkpoint_every = static_cast<std::uint64_t>(opts.integer("checkpoint-every"));
  ingest.capacity_rows_per_batch =
      static_cast<std::uint64_t>(opts.integer("capacity"));
  ingest.shed_keep_rows_per_batch =
      static_cast<std::uint64_t>(opts.integer("shed-keep"));
  const auto kill_seq = static_cast<std::uint64_t>(opts.integer("kill-at-seq"));
  if (kill_seq > 0) {
    if (ingest.wal_dir.empty()) {
      std::fprintf(stderr, "--kill-at-seq needs --wal: without durability there"
                           " is nothing to recover\n");
      return 2;
    }
    ingest.crash_after_seq = kill_seq;
    const std::string mode = opts.str("kill-mode");
    if (mode == "after-batch") {
      ingest.crash_mode = stream::CrashMode::kAfterBatch;
    } else if (mode == "torn-wal") {
      ingest.crash_mode = stream::CrashMode::kTornWal;
    } else if (mode == "torn-checkpoint") {
      ingest.crash_mode = stream::CrashMode::kTornCheckpoint;
    } else {
      std::fprintf(stderr, "unknown --kill-mode '%s'\n", mode.c_str());
      return 2;
    }
  }

  stream::TransitFaultConfig faults;
  if (opts.flag("faults")) {
    faults.enabled = true;
    faults.seed = opts.seed("transit-seed");
    faults.drop_p = 0.10;
    faults.dup_p = 0.08;
    faults.delay_p = 0.15;
  }

  const auto spec = cluster::emmy_spec();
  stream::IngestDaemon daemon(spec, ingest);
  if (opts.flag("resume")) {
    if (ingest.wal_dir.empty()) {
      std::fprintf(stderr, "--resume needs --wal\n");
      return 2;
    }
    const bool recovered = daemon.recover();
    if (!opts.flag("quiet"))
      std::printf("recovered=%s watermark=%llu\n", recovered ? "yes" : "no",
                  static_cast<unsigned long long>(daemon.watermark()));
  }
  stream::StreamDriver driver(daemon, faults);

  // May std::_Exit(137) inside when crash injection is armed: nothing below
  // this line runs on the killed attempt, exactly like a real kill -9.
  const auto result = stream::run_streamed_campaign(spec, config, daemon, driver);

  core::ReportOptions ropts;
  ropts.include_prediction = false;
  const std::string streamed_report = core::render_markdown_report({result.streamed}, ropts);
  const std::string summary = daemon.render_summary();

  if (!opts.str("out").empty() && !write_file(opts.str("out"), streamed_report)) {
    std::fprintf(stderr, "failed to write %s\n", opts.str("out").c_str());
    return 1;
  }
  if (!opts.str("batch-out").empty() &&
      !write_file(opts.str("batch-out"),
                  core::render_markdown_report({result.batch}, ropts))) {
    std::fprintf(stderr, "failed to write %s\n", opts.str("batch-out").c_str());
    return 1;
  }
  if (!opts.str("summary-out").empty() &&
      !write_file(opts.str("summary-out"), summary)) {
    std::fprintf(stderr, "failed to write %s\n", opts.str("summary-out").c_str());
    return 1;
  }

  if (!ingest.spill_path.empty()) {
    // Close out the spill and answer "what did the last N minutes look
    // like?" as a pruned range query — the streaming-window read path the
    // ring used to serve, now against the durable columnar sidecar.
    daemon.finish_spill();
    const auto window =
        static_cast<std::int64_t>(opts.integer("window-minutes"));
    try {
      storage::ScanQuery max_minute;
      max_minute.agg = storage::AggregateOp::kMax;
      max_minute.agg_column = "minute";
      const auto last = storage::scan_hpcb_file(ingest.spill_path, max_minute, {});
      storage::ScanQuery q;
      q.agg = storage::AggregateOp::kMean;
      q.agg_column = "watts";
      if (last.value_count > 0)
        q.where.push_back(storage::make_predicate(
            "minute", storage::PredicateOp::kGe,
            static_cast<std::int64_t>(last.value) - (window - 1)));
      const auto mean = storage::scan_hpcb_file(ingest.spill_path, q, {});
      if (!opts.flag("quiet"))
        std::printf("spill: %llu rows in %s; last %lld min window: mean"
                    " %.1f W over %llu rows (%zu/%zu blocks pruned)\n",
                    static_cast<unsigned long long>(daemon.spill_rows()),
                    ingest.spill_path.c_str(), static_cast<long long>(window),
                    mean.value, static_cast<unsigned long long>(mean.count),
                    mean.stats.blocks_pruned, mean.stats.blocks_total);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spill query failed: %s\n", e.what());
      return 1;
    }
  }

  if (!opts.flag("quiet")) {
    std::fputs(summary.c_str(), stdout);
    std::printf("transit: offered=%llu accepted=%llu duplicate=%llu stale=%llu"
                " backpressure=%llu\n",
                static_cast<unsigned long long>(result.transit.offered),
                static_cast<unsigned long long>(result.transit.accepted),
                static_cast<unsigned long long>(result.transit.duplicates_dropped),
                static_cast<unsigned long long>(result.transit.stale_dropped),
                static_cast<unsigned long long>(result.transit.backpressure_rejected));
    std::printf("driver: deliveries=%llu drops=%llu dups=%llu delays=%llu"
                " retries=%llu\n",
                static_cast<unsigned long long>(result.ledger.deliveries),
                static_cast<unsigned long long>(result.ledger.drops_injected),
                static_cast<unsigned long long>(result.ledger.dups_injected),
                static_cast<unsigned long long>(result.ledger.delays_injected),
                static_cast<unsigned long long>(result.ledger.backpressure_retries));
  }

  if (!opts.str("metrics-out").empty()) {
    daemon.export_metrics();  // bulk stream.* counters before the snapshot
    obs::RunInfo info;
    info.program = "streaming_ingest_demo";
    info.seed = config.seed;
    info.threads = util::global_thread_count();
    info.config = {
        {"days", opts.str("days")},
        {"wal", ingest.wal_dir},
        {"faults", opts.flag("faults") ? "true" : "false"},
        {"capacity", opts.str("capacity")},
        {"resume", opts.flag("resume") ? "true" : "false"},
    };
    try {
      obs::write_run_manifest(opts.str("metrics-out"), info);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (!opts.flag("quiet"))
      std::printf("wrote run manifest to %s\n", opts.str("metrics-out").c_str());
  }
  return 0;
}

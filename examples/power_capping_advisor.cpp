// power_capping_advisor: the paper's Sec 5/6 recommendation in executable
// form. Trains the BDT power predictor on a simulated campaign, then
// evaluates per-job static power caps set at prediction * (1 + headroom):
// how many jobs would ever exceed their cap (risking degradation), and how
// much provisioned power the caps release compared to TDP provisioning.
//
//   ./power_capping_advisor [--days 10] [--seed 42] [--system emmy|meggie]

#include <algorithm>
#include <array>
#include <cstdio>

#include "core/prediction.hpp"
#include "core/study.hpp"
#include "ml/decision_tree.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("power_capping_advisor",
                     "evaluate predictive per-job power caps");
  opts.add_option("days", "campaign length in days", "10");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("system", "emmy or meggie", "emmy");
  opts.add_flag("quiet", "suppress progress logging");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  const auto spec = util::to_lower(opts.str("system")) == "meggie"
                        ? cluster::meggie_spec()
                        : cluster::emmy_spec();
  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  std::printf("simulating %s campaign (%.0f days)...\n", spec.name.c_str(), config.days);
  const auto data = core::run_campaign(spec, config);

  // Train the predictor once and report aggregate savings if every job were
  // capped at its personal prediction * (1 + headroom).
  const auto dataset = core::build_prediction_dataset(data);
  ml::DecisionTreeRegressor tree;
  tree.fit(dataset);

  std::printf("\nper-job predictive power caps on %s (%zu jobs)\n", spec.name.c_str(),
              dataset.size());
  std::printf("  %-10s %18s %22s\n", "headroom", "jobs over cap", "fleet power released");
  for (const double headroom : {0.05, 0.10, 0.15, 0.20, 0.30}) {
    const double at_risk =
        core::fraction_jobs_at_risk_under_predictive_cap(data, headroom, {}, config.seed);

    // Power released: TDP minus the cap, node-hour weighted.
    double released_wh = 0.0, total_tdp_wh = 0.0;
    const core::JobFilter filter;
    for (const auto& r : data.records) {
      if (!filter.accepts(r)) continue;
      const std::array<double, 3> features = {static_cast<double>(r.user_id),
                                              static_cast<double>(r.nnodes),
                                              static_cast<double>(r.walltime_req_min)};
      const double cap = std::min(tree.predict(features) * (1.0 + headroom),
                                  spec.node_tdp_watts);
      const double node_hours = r.node_hours();
      released_wh += (spec.node_tdp_watts - cap) * node_hours;
      total_tdp_wh += spec.node_tdp_watts * node_hours;
    }
    std::printf("  %8.0f%% %17.2f%% %20.1f%%\n", 100.0 * headroom, 100.0 * at_risk,
                100.0 * released_wh / total_tdp_wh);
  }

  std::printf(
      "\nreading: risk falls steeply with headroom because temporal variance\n"
      "is limited (Fig 7); the paper suggests ~15%% headroom as the point\n"
      "where static predictive caps become a low-overhead power regulation\n"
      "strategy. Note 'over cap' counts a single peak minute - the exposure\n"
      "per job is tiny even when its peak grazes the cap.\n");
  return 0;
}

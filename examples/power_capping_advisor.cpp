// power_capping_advisor: the paper's Sec 5/6 recommendation in executable
// form, now closed-loop. Trains the BDT power predictor on a pilot campaign,
// then re-runs the campaign with the hierarchical power manager enforcing a
// site-wide cap, sweeping the admission guard band: how much stranded power
// each guard band recovers, how often the emergency throttle fires, and —
// the safety line — that the site cap is never exceeded and the power ledger
// reconciles exactly.
//
//   ./power_capping_advisor [--days 10] [--seed 42] [--system emmy|meggie]
//                           [--cap 0.75] [--threads N]

#include <cstdio>
#include <memory>

#include "core/prediction.hpp"
#include "core/study.hpp"
#include "ml/decision_tree.hpp"
#include "power/predictor.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  util::Options opts("power_capping_advisor",
                     "evaluate closed-loop predictive power capping");
  opts.add_option("days", "campaign length in days", "10");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("system", "emmy or meggie", "emmy");
  opts.add_option("cap", "site cap as a fraction of provisioned power", "0.75");
  opts.add_flag("quiet", "suppress progress logging");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return 0;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  const auto spec = util::to_lower(opts.str("system")) == "meggie"
                        ? cluster::meggie_spec()
                        : cluster::emmy_spec();
  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;
  const double cap_fraction = opts.number("cap");

  // Pilot: one unmanaged campaign to train the pre-execution predictor on
  // (user id, nnodes, requested wall time) -> mean node power.
  std::printf("pilot %s campaign (%.0f days) to train the predictor...\n",
              spec.name.c_str(), config.days);
  const auto pilot = core::run_campaign(spec, config);
  const auto dataset = core::build_prediction_dataset(pilot);
  auto tree = std::make_shared<ml::DecisionTreeRegressor>();
  tree->fit(dataset);
  const auto predictor = std::make_shared<power::TreePredictor>(
      tree, spec.node_tdp_watts);

  std::printf(
      "\nclosed-loop campaigns at %.0f%% site cap, predictor `%s` (%zu "
      "training jobs)\n",
      100.0 * cap_fraction, predictor->name().c_str(), dataset.size());
  std::printf("  %-10s %12s %16s %14s %12s %8s %8s\n", "guard", "granted",
              "recovered W", "max site kW", "thr min", "cap ok", "ledger");
  for (const double guard : {0.05, 0.10, 0.15, 0.20, 0.30}) {
    core::StudyConfig managed = config;
    managed.power_manager.enabled = true;
    managed.power_manager.site_cap_fraction = cap_fraction;
    managed.power_manager.guard_band = guard;
    const auto data = core::run_campaign(spec, managed, predictor);
    const auto& p = *data.power;
    std::printf("  %8.0f%% %12llu %16.1f %14.1f %12llu %8s %8s\n",
                100.0 * guard, static_cast<unsigned long long>(p.jobs_granted),
                p.mean_stranded_recovered_w(), p.max_true_site_w / 1000.0,
                static_cast<unsigned long long>(p.minutes_throttle),
                p.cap_violation_minutes == 0 ? "yes" : "NO",
                p.ledger_reconciles ? "exact" : "BROKEN");
  }

  std::printf(
      "\nreading: a small guard band admits aggressively and recovers the\n"
      "most stranded power, but leans on the emergency throttle when the\n"
      "predictor misses low; ~15%% headroom (the paper's suggestion) keeps\n"
      "throttle occupancy near zero while still recovering most of the gap\n"
      "between TDP provisioning and predicted draw. The site cap holds in\n"
      "every configuration by construction.\n");
  return 0;
}

// convert_trace: translate trace files between the CSV and .hpcb containers.
//
// Reads a job table, sample table, or system series in either container
// format (auto-detected from the file's magic bytes) and rewrites it in the
// format implied by the output extension (".hpcb" → binary columnar, else
// CSV) or forced with --out-format. The table kind is probed automatically:
// each reader validates its schema, so the first one that accepts the file
// wins. --lenient forwards the usual recovery mode (skip bad CSV rows /
// corrupt .hpcb blocks with counted warnings) to the reader.
//
//   ./convert_trace --in jobs.csv --out jobs.hpcb
//   ./convert_trace --in samples.hpcb --out samples.csv --table samples
//   ./convert_trace --in dirty.hpcb --out repaired.hpcb --lenient

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/job_table.hpp"
#include "trace/sample_table.hpp"
#include "trace/system_series.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"

using namespace hpcpower;

namespace {

/// Converts one table kind; returns the number of rows, or nullopt when the
/// input is not this kind of table (schema mismatch).
std::optional<std::size_t> try_convert(const std::string& kind,
                                       const std::string& in,
                                       const std::string& out,
                                       trace::TraceFormat format, bool lenient) {
  try {
    if (kind == "jobs") {
      const auto records = trace::load_job_table(in, lenient);
      trace::save_job_table(out, records, format);
      return records.size();
    }
    if (kind == "samples") {
      const auto rows = trace::load_sample_table(in, lenient);
      trace::save_sample_table(out, rows, format);
      return rows.size();
    }
    const auto series = trace::load_system_series(in);
    trace::save_system_series(out, series, format);
    return series.total_power_w.size();
  } catch (const std::invalid_argument& e) {
    if (std::string(e.what()).find("schema mismatch") != std::string::npos)
      return std::nullopt;
    throw;
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("convert_trace", "convert traces between csv and hpcb");
  opts.add_option("in", "input trace file (format auto-detected)", "");
  opts.add_option("out", "output trace file", "");
  opts.add_option("table", "table kind: auto, jobs, samples or series", "auto");
  opts.add_option("out-format", "output format: auto (by extension), csv or hpcb",
                  "auto");
  opts.add_flag("lenient", "skip malformed rows / corrupt blocks on read");
  opts.add_flag("quiet", "suppress progress logging");
  std::string in_path, out_path, table;
  trace::TraceFormat out_format = trace::TraceFormat::kAuto;
  try {
    if (!opts.parse(argc, argv)) return 0;
    in_path = opts.str("in");
    out_path = opts.str("out");
    table = opts.str("table");
    if (in_path.empty() || out_path.empty())
      throw std::invalid_argument("--in and --out are required");
    if (table != "auto" && table != "jobs" && table != "samples" &&
        table != "series")
      throw std::invalid_argument("--table must be auto, jobs, samples or series");
    const auto parsed = trace::parse_trace_format(opts.str("out-format"));
    if (!parsed) throw std::invalid_argument("--out-format must be auto, csv or hpcb");
    out_format = *parsed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  const bool lenient = opts.flag("lenient");
  const trace::TraceFormat resolved =
      trace::resolve_save_format(out_format, out_path);
  try {
    // "auto" probes kinds in a fixed order; each reader rejects foreign
    // schemas, so at most one succeeds.
    const std::vector<std::string> kinds =
        table == "auto" ? std::vector<std::string>{"jobs", "samples", "series"}
                        : std::vector<std::string>{table};
    for (const std::string& kind : kinds) {
      const auto rows = try_convert(kind, in_path, out_path, resolved, lenient);
      if (!rows) continue;
      std::printf("converted %zu %s rows: %s -> %s (%s)\n", *rows, kind.c_str(),
                  in_path.c_str(), out_path.c_str(),
                  trace::trace_format_name(resolved));
      return 0;
    }
    std::fprintf(stderr, "%s: not a recognized trace table\n", in_path.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "conversion failed: %s\n", e.what());
    return 1;
  }
}

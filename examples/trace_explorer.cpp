// trace_explorer: produce and consume the open-data trace formats.
//
// Simulates a short campaign, writes the job table (the analogue of the
// paper's Zenodo release) and a time-resolved sample table for a few
// instrumented jobs, then reads both back and recomputes statistics from the
// files alone - the workflow of a downstream researcher using the traces.
//
//   ./trace_explorer [--days 3] [--seed 42] [--outdir /tmp] [--format csv|hpcb]
//   ./trace_explorer --inspect self.hpcb
//   ./trace_explorer --query samples.hpcb --where "minute>=1440,minute<=2879" \
//                    --select job_id,pkg_w --agg mean:pkg_w
//
// --format hpcb writes the binary columnar container (.hpcb) instead of CSV;
// the re-analysis below reads either format back through the same loaders
// (projected+pruned aggregate scans when the files are .hpcb).
// --inspect opens *any* .hpcb table — including the self-metrics file the
// monitoring loop writes (obs/monitor.hpp) — and prints its schema, zone-map
// presence, and a per-column summary without running a campaign.
// --query runs a predicate-pushdown scan (storage/scan.hpp): --where is a
// comma-separated conjunction ("col>=v,col2!=v2"), --select a projection,
// --agg one of count/min:col/max:col/sum:col/mean:col. Matching rows print
// as CSV on stdout (%.17g, so doubles round-trip); scan statistics go to
// stderr. --no-prune disables zone-map pruning (full decode baseline),
// --no-mmap forces buffered reads, --strict makes any corruption fatal
// instead of skip-and-book.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/job_analysis.hpp"
#include "storage/hpcb.hpp"
#include "storage/scan.hpp"
#include "stats/descriptive.hpp"
#include "trace/format.hpp"
#include "trace/job_table.hpp"
#include "trace/sample_table.hpp"
#include "trace/system_series.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "workload/generator.hpp"

using namespace hpcpower;

namespace {

/// Generic .hpcb inspector: schema, row count, and per-column min/mean/max
/// (NaN samples — e.g. "metric not yet seen" in a self-metrics table — are
/// counted but excluded from the summary statistics).
int inspect_hpcb(const std::string& path) {
  storage::ReadStats rstats;
  storage::Table table;
  try {
    table = storage::load_hpcb(path, {}, &rstats);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: %zu columns, %zu rows, %zu blocks\n", path.c_str(),
              table.schema.size(), table.rows(), rstats.blocks.size());
  if (const auto zones = storage::load_hpcb_zone_maps(path))
    std::printf("  zone maps: %zu blocks x %zu columns (queries prune on them)\n",
                zones->block_count(), zones->column_count);
  else
    std::printf("  zone maps: none (v1 file or damaged section; queries scan"
                " every block)\n");
  for (std::size_t c = 0; c < table.schema.size(); ++c) {
    const auto& spec = table.schema[c];
    const auto& col = table.columns[c];
    double min = 0.0, max = 0.0, sum = 0.0;
    std::size_t finite = 0, nan = 0;
    const auto fold = [&](double v) {
      if (std::isnan(v)) {
        ++nan;
        return;
      }
      if (finite == 0) min = max = v;
      min = std::min(min, v);
      max = std::max(max, v);
      sum += v;
      ++finite;
    };
    if (storage::is_float_column(spec.type)) {
      for (const double v : col.f64) fold(v);
    } else {
      for (const std::int64_t v : col.i64) fold(static_cast<double>(v));
    }
    std::printf("  %-40s %-12s", spec.name.c_str(),
                storage::column_type_name(spec.type));
    if (finite > 0)
      std::printf(" min %-12.6g mean %-12.6g max %-12.6g",
                  min, sum / static_cast<double>(finite), max);
    if (nan > 0) std::printf(" (%zu NaN)", nan);
    std::printf("\n");
  }
  return 0;
}

/// One cell in the CSV a --query prints. %.17g is injective for doubles, so
/// piping the output back through a CSV loader loses nothing.
void print_cell(const storage::Table& t, std::size_t col, std::size_t row) {
  if (storage::is_float_column(t.schema[col].type))
    std::printf("%.17g", t.columns[col].f64[row]);
  else
    std::printf("%lld", static_cast<long long>(t.columns[col].i64[row]));
}

/// --query mode: predicate-pushdown scan of any .hpcb file. Rows (CSV) or
/// the aggregate go to stdout; scan statistics go to stderr. Exit 0 on
/// success, 1 on a clean error (bad query text, unknown column, corrupt
/// file in --strict mode).
int run_query(const util::Options& opts) {
  const std::string path = opts.str("query");
  storage::ScanQuery query;
  for (const std::string& part : util::split(opts.str("where"), ',')) {
    if (util::trim(part).empty()) continue;
    const auto pred = storage::parse_predicate(part);
    if (!pred) {
      std::fprintf(stderr, "bad predicate: %s (want \"column OP value\")\n",
                   part.c_str());
      return 1;
    }
    query.where.push_back(*pred);
  }
  for (const std::string& part : util::split(opts.str("select"), ','))
    if (!util::trim(part).empty())
      query.select.emplace_back(util::trim(part));
  if (!opts.str("agg").empty()) {
    const auto agg = storage::parse_aggregate(opts.str("agg"));
    if (!agg) {
      std::fprintf(stderr,
                   "bad aggregate: %s (want count|min:col|max:col|sum:col|"
                   "mean:col)\n",
                   opts.str("agg").c_str());
      return 1;
    }
    query.agg = agg->first;
    query.agg_column = agg->second;
  }
  storage::ScanOptions options;
  options.lenient = !opts.flag("strict");
  options.use_zone_maps = !opts.flag("no-prune");
  options.mmap = !opts.flag("no-mmap");

  storage::ScanResult result;
  try {
    result = storage::scan_hpcb_file(path, query, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "query failed: %s\n", e.what());
    return 1;
  }
  const storage::ScanStats& st = result.stats;
  std::fprintf(stderr,
               "scan %s: %zu blocks (%zu pruned, %zu full-match, %zu decoded, "
               "%zu skipped), %llu rows matched, zone maps %s, %s read\n",
               path.c_str(), st.blocks_total, st.blocks_pruned,
               st.blocks_full_match, st.blocks_decoded, st.blocks_skipped,
               static_cast<unsigned long long>(result.count),
               st.zone_maps ? "on" : "off", st.mapped ? "mmap" : "buffered");

  if (query.agg == storage::AggregateOp::kNone) {
    const storage::Table& t = result.table;
    for (std::size_t c = 0; c < t.schema.size(); ++c)
      std::printf("%s%s", c == 0 ? "" : ",", t.schema[c].name.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < t.rows(); ++r) {
      for (std::size_t c = 0; c < t.schema.size(); ++c) {
        if (c != 0) std::printf(",");
        print_cell(t, c, r);
      }
      std::printf("\n");
    }
  } else if (query.agg == storage::AggregateOp::kCount) {
    std::printf("count = %llu\n", static_cast<unsigned long long>(result.count));
  } else {
    std::printf("%s = %.17g (over %llu non-null of %llu matched rows)\n",
                opts.str("agg").c_str(), result.value,
                static_cast<unsigned long long>(result.value_count),
                static_cast<unsigned long long>(result.count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts("trace_explorer", "write and re-analyze open trace files");
  opts.add_option("days", "campaign length in days", "3");
  opts.add_option("seed", "root random seed", "42");
  opts.add_option("outdir", "directory for trace files", "/tmp");
  opts.add_option("format", "trace container format: csv or hpcb", "csv");
  opts.add_option("inspect", "print schema + column summary of this .hpcb"
                             " file and exit (no campaign)", "");
  opts.add_option("query", "run a pruned scan over this .hpcb file and exit"
                           " (no campaign)", "");
  opts.add_option("where", "comma-separated predicate conjunction for --query"
                           " (e.g. \"minute>=1440,minute<=2879\")", "");
  opts.add_option("select", "comma-separated column projection for --query", "");
  opts.add_option("agg", "aggregate for --query: count|min:col|max:col|"
                         "sum:col|mean:col", "");
  opts.add_flag("no-prune", "--query: decode every block (zone maps off)");
  opts.add_flag("no-mmap", "--query: buffered reads instead of mmap");
  opts.add_flag("strict", "--query: any corruption is fatal (default books"
                          " and skips)");
  opts.add_flag("quiet", "suppress progress logging");
  trace::TraceFormat format = trace::TraceFormat::kCsv;
  try {
    if (!opts.parse(argc, argv)) return 0;
    if (!opts.str("inspect").empty()) return inspect_hpcb(opts.str("inspect"));
    if (!opts.str("query").empty()) return run_query(opts);
    const auto parsed = trace::parse_trace_format(opts.str("format"));
    if (!parsed || *parsed == trace::TraceFormat::kAuto)
      throw std::invalid_argument("--format must be csv or hpcb");
    format = *parsed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);
  const char* ext = format == trace::TraceFormat::kHpcb ? ".hpcb" : ".csv";

  core::StudyConfig config;
  config.seed = opts.seed();
  config.days = opts.number("days");
  config.warmup_days = 1.0;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  const auto data = core::run_campaign(cluster::emmy_spec(), config);

  const std::filesystem::path outdir(opts.str("outdir"));
  const std::string job_path =
      (outdir / (std::string("hpcpower_emmy_jobs") + ext)).string();
  trace::save_job_table(job_path, data.records, format);
  std::printf("wrote %zu job records to %s\n", data.records.size(), job_path.c_str());

  // Time-resolved samples for the three largest instrumented jobs, from the
  // same deterministic power profiles the telemetry used.
  util::Rng node_rng(util::derive_stream(config.seed, "node-population"));
  const cluster::NodePopulation nodes(data.spec, node_rng);
  workload::GeneratorConfig gcfg;
  gcfg.seed = config.seed;
  gcfg.duration = util::MinuteTime::from_days(config.days + config.warmup_days);
  workload::WorkloadGenerator generator(data.spec, workload::emmy_calibration(), gcfg);
  const auto requests = generator.generate();

  std::vector<const telemetry::JobRecord*> detailed;
  for (const auto& r : data.records)
    if (r.detail && r.nnodes >= 4) detailed.push_back(&r);
  std::sort(detailed.begin(), detailed.end(),
            [](const auto* a, const auto* b) { return a->nnodes > b->nnodes; });
  if (detailed.size() > 3) detailed.resize(3);

  std::vector<trace::PowerSampleRow> rows;
  for (const auto* rec : detailed) {
    const auto req = std::find_if(requests.begin(), requests.end(), [&](const auto& j) {
      return j.job_id == rec->job_id;
    });
    if (req == requests.end()) continue;
    std::vector<double> mfg(rec->nnodes, 1.0);  // job-local approximation
    const workload::PowerProfile profile(req->behavior, rec->runtime_min(), mfg);
    for (std::uint32_t m = 0; m < rec->runtime_min(); ++m) {
      for (std::uint32_t n = 0; n < rec->nnodes; ++n) {
        const double watts = profile.node_power(m, n);
        const auto split = cluster::split_domains(watts, req->behavior.memory_intensity);
        rows.push_back({rec->job_id, rec->start.minutes() + m, n, split.pkg_watts,
                        split.dram_watts});
      }
    }
  }
  const std::string sample_path =
      (outdir / (std::string("hpcpower_emmy_samples") + ext)).string();
  trace::save_sample_table(sample_path, rows, format);
  std::printf("wrote %zu time-resolved samples (%zu jobs) to %s\n", rows.size(),
              detailed.size(), sample_path.c_str());

  const std::string series_path =
      (outdir / (std::string("hpcpower_emmy_series") + ext)).string();
  trace::save_system_series(series_path, data.series, format);
  std::printf("wrote %zu system-series minutes to %s\n",
              data.series.total_power_w.size(), series_path.c_str());

  // --- downstream consumer: everything below uses only the files -----------
  const auto loaded = trace::load_job_table(job_path);
  std::vector<double> power;
  power.reserve(loaded.size());
  for (const auto& r : loaded)
    if (!r.truncated_by_horizon) power.push_back(r.mean_node_power_w);
  const auto summary = stats::summarize(power);
  std::printf("\nre-analysis from %s:\n", job_path.c_str());
  std::printf("  %zu completed jobs, mean per-node power %.1f W (std %.1f W)\n",
              summary.count, summary.mean, summary.stddev);

  if (format == trace::TraceFormat::kHpcb) {
    // Projected aggregate scans: each mean decodes only its own column, and
    // the second half of the trace is a zone-map range query that never
    // touches the first half's blocks.
    const auto mean_of = [&](const std::string& column,
                             std::vector<storage::Predicate> where = {}) {
      storage::ScanQuery q;
      q.agg = storage::AggregateOp::kMean;
      q.agg_column = column;
      q.where = std::move(where);
      return storage::scan_hpcb_file(sample_path, q, {});
    };
    const auto pkg = mean_of("pkg_w");
    const auto dram = mean_of("dram_w");
    std::printf("  sample table: PKG mean %.1f W, DRAM mean %.1f W over %llu"
                " samples (projected scans)\n",
                pkg.value, dram.value,
                static_cast<unsigned long long>(pkg.count));
    std::int64_t min_minute = 0, max_minute = 0;
    if (!rows.empty()) {
      min_minute = max_minute = rows.front().minute;
      for (const auto& s : rows) {
        min_minute = std::min(min_minute, s.minute);
        max_minute = std::max(max_minute, s.minute);
      }
    }
    const std::int64_t half = min_minute + (max_minute - min_minute) / 2;
    const auto late = mean_of(
        "pkg_w", {storage::make_predicate("minute", storage::PredicateOp::kGe,
                                          half)});
    std::printf("  late-half window (minute >= %lld): PKG mean %.1f W over"
                " %llu samples — %zu/%zu blocks pruned by zone maps\n",
                static_cast<long long>(half), late.value,
                static_cast<unsigned long long>(late.count),
                late.stats.blocks_pruned, late.stats.blocks_total);
  } else {
    const auto samples = trace::load_sample_table(sample_path);
    stats::RunningStats pkg, dram;
    for (const auto& s : samples) {
      pkg.add(s.pkg_w);
      dram.add(s.dram_w);
    }
    std::printf("  sample table: PKG mean %.1f W, DRAM mean %.1f W over %zu samples\n",
                pkg.mean(), dram.mean(), samples.size());
  }

  const auto series = trace::load_system_series(series_path);
  stats::RunningStats util;
  for (const auto b : series.busy_nodes)
    util.add(static_cast<double>(b) / data.spec.node_count);
  std::printf("  system series: mean utilization %.1f%% over %zu minutes\n",
              100.0 * util.mean(), series.busy_nodes.size());
  return 0;
}

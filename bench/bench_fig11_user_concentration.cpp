// Fig 11: node-hours and energy concentration across users.

#include <cstdio>

#include "bench_common.hpp"
#include "core/user_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig11_user_concentration",
      "Fig 11: cumulative node-hours and energy share by top users");
  if (!ctx) return 0;

  bench::print_banner("Fig 11: user concentration of node-hours and energy",
                      "top 20% of users consume ~85% of node-hours and energy "
                      "on both systems; ~90% overlap between both top sets");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_concentration(data);
    bench::print_system_header(data.spec);
    std::printf("  active users: %zu\n", report.users);
    bench::print_compare("top-20% node-hours share", "~85%",
                         util::format_percent(report.top20_node_hours_share));
    bench::print_compare("top-20% energy share", "~85%",
                         util::format_percent(report.top20_energy_share));
    bench::print_compare("top-set overlap", "~90%",
                         util::format_percent(report.top20_overlap));
    bench::print_compare("gini (node-hours / energy)", "-",
                         util::format("%.2f / %.2f", report.node_hours_gini,
                                      report.energy_gini));
    std::printf("\n  top x%% users -> cumulative share (node-hours | energy)\n");
    for (std::size_t i = 0; i < report.node_hours_curve.size(); ++i) {
      const auto& [frac, nh] = report.node_hours_curve[i];
      const double en = report.energy_curve[i].second;
      std::printf("  %5.0f%%  %5.1f%% | %5.1f%%  %s\n", 100.0 * frac, 100.0 * nh,
                  100.0 * en, util::ascii_bar(nh, 1.0, 30).c_str());
    }
  }
  return 0;
}

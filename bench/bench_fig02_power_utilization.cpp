// Fig 2: power consumption vs provisioned power ("stranded power").

#include <cstdio>

#include "bench_common.hpp"
#include "core/system_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig02_power_utilization",
      "Fig 2: power utilization and stranded power over the campaign");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 2: power consumption vs provisioned power",
      "Emmy mean 69% (never >85%), Meggie mean 51% (never >70%); >30% stranded");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const bool emmy = data.spec.id == cluster::SystemId::kEmmy;
    const auto report = core::analyze_system_utilization(data, 24);
    bench::print_system_header(data.spec);
    bench::print_compare("mean power utilization", emmy ? "69%" : "51%",
                         util::format_percent(report.mean_power_utilization));
    bench::print_compare("peak power utilization", emmy ? "<=85%" : "<=70%",
                         util::format_percent(report.peak_power_utilization));
    bench::print_compare("stranded power fraction", emmy ? "31%" : "49%",
                         util::format_percent(report.stranded_power_fraction));
    std::printf("  mean stranded power: %.0f kW of %.0f kW provisioned\n",
                report.stranded_power_kw,
                data.spec.provisioned_power_watts() / 1000.0);
    std::printf("\n  day    power utilization\n");
    for (const auto& pt : report.series)
      std::printf("  %5.1f  %5.1f%%  %s\n", pt.day, 100.0 * pt.power_utilization,
                  util::ascii_bar(pt.power_utilization, 1.0, 30).c_str());
    // What-if power caps (the paper's suggested exploration).
    std::printf("\n  whole-system power cap what-if:\n");
    for (const double cap : {0.9, 0.8, 0.7, 0.6})
      std::printf("    cap at %3.0f%% of provisioned: clipped %5.2f%% of minutes\n",
                  100.0 * cap,
                  100.0 * core::fraction_minutes_above_cap(data, cap));
  }
  return 0;
}

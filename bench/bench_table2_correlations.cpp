// Table 2: Spearman correlations of job length/size with per-node power.

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_table2_correlations",
      "Table 2: Spearman correlation of length/size with per-node power");
  if (!ctx) return 0;

  bench::print_banner("Table 2: job length and size vs per-node power",
                      "Emmy: length 0.42 / size 0.21; Meggie: length 0.12 / "
                      "size 0.42; all p ~ 0");

  std::printf("\n  %-8s %-24s %12s %14s\n", "system", "feature pair", "correlation",
              "p-value");
  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_correlations(data);
    std::printf("  %-8s %-24s %12.2f %14.3g\n", report.system.c_str(),
                "runtime vs per-node power", report.length_vs_power.coefficient,
                report.length_vs_power.p_value);
    std::printf("  %-8s %-24s %12.2f %14.3g\n", report.system.c_str(),
                "nnodes vs per-node power", report.size_vs_power.coefficient,
                report.size_vs_power.p_value);
  }
  return 0;
}

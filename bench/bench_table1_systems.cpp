// Table 1: specifications of the two systems analyzed in the study.

#include <cstdio>

#include "bench_common.hpp"
#include "cluster/system_spec.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_table1_systems",
      "Table 1: specifications of the two systems (static, ignores --days)");
  if (!ctx) return 0;

  bench::print_banner("Table 1: system specifications",
                      "Emmy: 560 IvyBridge nodes / 210 W TDP / Torque; "
                      "Meggie: 728 Broadwell nodes / 195 W TDP / Slurm");

  const auto systems = cluster::studied_systems();
  const auto emmy_rows = cluster::spec_rows(systems[0]);
  const auto meggie_rows = cluster::spec_rows(systems[1]);
  std::printf("\n%-26s| %-44s| %s\n", "", "Emmy", "Meggie");
  std::printf("%.*s\n", 118,
              "----------------------------------------------------------------"
              "------------------------------------------------------");
  for (std::size_t i = 0; i < emmy_rows.size(); ++i)
    std::printf("%-26s| %-44.44s| %.44s\n", emmy_rows[i].first.c_str(),
                emmy_rows[i].second.c_str(), meggie_rows[i].second.c_str());
  return 0;
}

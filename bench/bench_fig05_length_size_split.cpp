// Fig 5: per-node power of short/long and small/large jobs (median splits).

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"

using namespace hpcpower;

namespace {
void print_group(const core::MedianSplitGroup& g, const char* paper) {
  std::printf("  %-7s %6zu jobs   mean %5.1f%% of TDP (std %4.1f%%)   paper: %s\n",
              g.label.c_str(), g.jobs, 100.0 * g.mean_tdp_fraction,
              100.0 * g.std_tdp_fraction, paper);
}
}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig05_length_size_split",
      "Fig 5: per-node power by job length and size (median splits)");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 5: power of short/long and small/large jobs",
      "Emmy short 65% / long 75% of TDP, small 65% / large 76%; "
      "Meggie short 57% / long 61%, small 56% / large 62%; "
      "long/large jobs less variable");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const bool emmy = data.spec.id == cluster::SystemId::kEmmy;
    const auto report = core::analyze_median_splits(data);
    bench::print_system_header(data.spec);
    std::printf("  median runtime %.0f min, median size %.0f nodes\n",
                report.median_runtime_min, report.median_nnodes);
    print_group(report.short_jobs, emmy ? "65%" : "57%");
    print_group(report.long_jobs, emmy ? "75%" : "61%");
    print_group(report.small_jobs, emmy ? "65%" : "56%");
    print_group(report.large_jobs, emmy ? "76%" : "62%");
  }
  return 0;
}

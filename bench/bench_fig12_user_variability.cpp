// Fig 12: variability of per-node power among jobs of the same user.

#include <cstdio>

#include "bench_common.hpp"
#include "core/user_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig12_user_variability",
      "Fig 12: per-user std/mean of job per-node power");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 12: per-user power variability",
      "mean per-user std is ~50% of mean on Emmy and ~100% on Meggie; "
      "users are NOT monotonous (paper text: nnodes CV 40%/55%, runtime CV "
      "95%/170%)");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const bool emmy = data.spec.id == cluster::SystemId::kEmmy;
    const auto report = core::analyze_user_variability(data);
    bench::print_system_header(data.spec);
    std::printf("  users with >=5 jobs: %zu\n", report.eligible_users);
    bench::print_compare("mean per-user power CV", emmy ? "~50%" : "~100%",
                         util::format_percent(report.mean_power_cv));
    bench::print_compare("mean per-user nnodes CV", emmy ? "~40%" : "~55%",
                         util::format_percent(report.mean_nnodes_cv));
    bench::print_compare("mean per-user runtime CV", emmy ? "~95%" : "~170%",
                         util::format_percent(report.mean_runtime_cv));
    std::printf("\n  CDF of per-user power CV\n");
    bench::print_cdf(report.power_cv_cdf, "std/mean");
  }
  std::printf(
      "\n  note: at short campaign scales small (high-variability) users do "
      "not\n  pass the >=5-jobs filter; run with --full for paper-scale "
      "variability.\n");
  return 0;
}

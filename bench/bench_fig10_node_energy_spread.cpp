// Fig 10: PDF of max-min per-node energy difference within a job.

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig10_node_energy_spread",
      "Fig 10: per-node energy difference (max-min)/min within a job");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 10: node-energy spread within jobs",
      ">20% of jobs exhibit >15% difference in per-node energy; spread "
      "correlated with node count");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_energy_spread(data, {}, 24);
    bench::print_system_header(data.spec);
    std::printf("  multi-node jobs analyzed: %zu\n", report.multinode_jobs);
    bench::print_compare("jobs with >15% node-energy difference", "~20%",
                         util::format_percent(report.fraction_above_15pct));
    bench::print_compare("mean node-energy spread", "-",
                         util::format_percent(report.mean_spread_fraction));
    bench::print_compare("spearman spread vs nnodes", "positive",
                         util::format("%.2f (p=%.2g)",
                                      report.spread_vs_nnodes.coefficient,
                                      report.spread_vs_nnodes.p_value));
    std::printf("\n");
    bench::print_histogram(report.histogram, "(max-min)/min", "%12.3f");
  }
  return 0;
}

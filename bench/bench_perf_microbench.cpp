// Google-benchmark timings of the library's hot paths. Not a paper figure;
// guards the simulation/analysis throughput that makes --full runs practical.

#include <benchmark/benchmark.h>

#include <array>

#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/prng.hpp"
#include "workload/power_profile.hpp"

namespace {

using namespace hpcpower;

void BM_RunningStatsAdd(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.normal(100.0, 10.0);
  for (auto _ : state) {
    stats::RunningStats rs;
    for (const double x : xs) rs.add(x);
    benchmark::DoNotOptimize(rs.variance());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_RunningStatsAdd);

void BM_SpearmanCorrelation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = x[i] + rng.normal(0.0, 0.3);
  }
  for (auto _ : state) benchmark::DoNotOptimize(stats::spearman(x, y).coefficient);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpearmanCorrelation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PowerProfileSampling(benchmark::State& state) {
  workload::PowerBehavior behavior;
  behavior.base_watts = 150.0;
  behavior.idle_watts = 42.0;
  behavior.max_watts = 220.0;
  behavior.phased = true;
  behavior.phase_amplitude = 0.2;
  behavior.phase_time_fraction = 0.2;
  behavior.straggler_prob = 0.2;
  behavior.job_seed = 1234;
  const std::vector<double> mfg(16, 1.0);
  const workload::PowerProfile profile(behavior, 480, mfg);
  std::uint32_t minute = 0;
  for (auto _ : state) {
    double sum = 0.0;
    for (std::uint32_t n = 0; n < 16; ++n) sum += profile.node_power(minute, n);
    benchmark::DoNotOptimize(sum);
    minute = (minute + 1) % 480;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_PowerProfileSampling);

ml::Dataset make_dataset(std::size_t rows) {
  util::Rng rng(7);
  ml::Dataset d(3);
  for (std::size_t i = 0; i < rows; ++i) {
    const double user = static_cast<double>(rng.uniform_index(100));
    const double nodes = static_cast<double>(1 << rng.uniform_index(7));
    const double wall = static_cast<double>(60 * (1 + rng.uniform_index(8)));
    d.add_row(std::array<double, 3>{user, nodes, wall},
              80.0 + user + 0.1 * wall + nodes + rng.normal(0.0, 3.0),
              static_cast<std::uint32_t>(user));
  }
  return d;
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const auto d = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(10000);

void BM_KnnPredict(benchmark::State& state) {
  const auto d = make_dataset(static_cast<std::size_t>(state.range(0)));
  ml::KnnRegressor knn;
  knn.fit(d);
  const std::array<double, 3> q = {50.0, 8.0, 240.0};
  for (auto _ : state) benchmark::DoNotOptimize(knn.predict(q));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KnnPredict)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

// Google-benchmark timings of the library's hot paths, plus a serial-vs-
// parallel stage harness for the campaign engine. Not a paper figure; guards
// the simulation/analysis throughput that makes --full runs practical.
//
// After the micro benches run, the harness executes the full study chain
// (campaign -> analyzers -> ml -> report) twice - once pinned to one thread
// (the serial reference) and once on all cores - and writes per-stage wall
// times to BENCH_perf.json. Stage timings come from the observability layer:
// each stage runs under a stage.* span and its wall time is read back from
// the span-fed timer metric, so the JSON and a --trace-out profile can never
// disagree. The report text from the two runs must match byte-for-byte (the
// "deterministic" flag in the JSON): the parallel engine is only allowed to
// be faster, never different — and since the chains run with span recording
// on, this doubles as a check that observability does not perturb results.
//
// Extra flags (stripped before google-benchmark sees argv):
//   --perf_days=N   campaign length for the stage harness (default 6)
//   --perf_out=P    JSON output path (default BENCH_perf.json)
//   --no_perf       skip the stage harness (micro benches only)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/prediction.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "core/system_analysis.hpp"
#include "core/user_analysis.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "serve/service.hpp"
#include "cluster/rapl.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "storage/filebytes.hpp"
#include "storage/hpcb.hpp"
#include "storage/scan.hpp"
#include "stream/source.hpp"
#include "trace/sample_table.hpp"
#include "util/logging.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>
#include <unordered_map>
#include "workload/generator.hpp"
#include "workload/power_profile.hpp"

namespace {

using namespace hpcpower;

void BM_RunningStatsAdd(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.normal(100.0, 10.0);
  for (auto _ : state) {
    stats::RunningStats rs;
    for (const double x : xs) rs.add(x);
    benchmark::DoNotOptimize(rs.variance());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_RunningStatsAdd);

void BM_SpearmanCorrelation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = x[i] + rng.normal(0.0, 0.3);
  }
  for (auto _ : state) benchmark::DoNotOptimize(stats::spearman(x, y).coefficient);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpearmanCorrelation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PowerProfileSampling(benchmark::State& state) {
  workload::PowerBehavior behavior;
  behavior.base_watts = 150.0;
  behavior.idle_watts = 42.0;
  behavior.max_watts = 220.0;
  behavior.phased = true;
  behavior.phase_amplitude = 0.2;
  behavior.phase_time_fraction = 0.2;
  behavior.straggler_prob = 0.2;
  behavior.job_seed = 1234;
  const std::vector<double> mfg(16, 1.0);
  const workload::PowerProfile profile(behavior, 480, mfg);
  std::uint32_t minute = 0;
  for (auto _ : state) {
    double sum = 0.0;
    for (std::uint32_t n = 0; n < 16; ++n) sum += profile.node_power(minute, n);
    benchmark::DoNotOptimize(sum);
    minute = (minute + 1) % 480;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_PowerProfileSampling);

ml::Dataset make_dataset(std::size_t rows) {
  util::Rng rng(7);
  ml::Dataset d(3);
  for (std::size_t i = 0; i < rows; ++i) {
    const double user = static_cast<double>(rng.uniform_index(100));
    const double nodes = static_cast<double>(1 << rng.uniform_index(7));
    const double wall = static_cast<double>(60 * (1 + rng.uniform_index(8)));
    d.add_row(std::array<double, 3>{user, nodes, wall},
              80.0 + user + 0.1 * wall + nodes + rng.normal(0.0, 3.0),
              static_cast<std::uint32_t>(user));
  }
  return d;
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const auto d = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(10000);

void BM_KnnPredict(benchmark::State& state) {
  const auto d = make_dataset(static_cast<std::size_t>(state.range(0)));
  ml::KnnRegressor knn;
  knn.fit(d);
  const std::array<double, 3> q = {50.0, 8.0, 240.0};
  for (auto _ : state) benchmark::DoNotOptimize(knn.predict(q));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KnnPredict)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Stage harness: serial vs parallel wall time for the full study chain.

constexpr std::array<const char*, 5> kStageNames = {"campaign", "analysis", "ml",
                                                    "power", "report"};

struct ChainResult {
  std::array<double, 5> stage_ms{};
  std::uint64_t spans = 0;
  std::string report_text;
};

ChainResult run_chain(const core::StudyConfig& config) {
  // Stage wall times are read back from the stage.* span timers, so start
  // each chain from a clean slate.
  obs::metrics().reset();
  obs::clear_recorded();

  ChainResult out;
  std::vector<core::CampaignData> campaigns;
  {
    HPCPOWER_SPAN("stage.campaign");
    campaigns = core::run_both_systems(config);
  }

  const core::JobFilter filter;
  {
    HPCPOWER_SPAN("stage.analysis");
    for (const auto& data : campaigns) {
      benchmark::DoNotOptimize(core::analyze_per_node_power(data, filter));
      benchmark::DoNotOptimize(core::analyze_correlations(data, filter));
      benchmark::DoNotOptimize(core::analyze_median_splits(data, filter));
      benchmark::DoNotOptimize(core::analyze_temporal(data, filter));
      benchmark::DoNotOptimize(core::analyze_spatial(data, filter));
      benchmark::DoNotOptimize(core::analyze_energy_spread(data, filter));
      benchmark::DoNotOptimize(
          core::analyze_monthly_consistency(data, 30.0, filter));
      benchmark::DoNotOptimize(core::analyze_concentration(data, filter));
      benchmark::DoNotOptimize(core::analyze_user_variability(data, filter));
      benchmark::DoNotOptimize(core::analyze_system_utilization(data));
    }
  }

  {
    HPCPOWER_SPAN("stage.ml");
    for (const auto& data : campaigns)
      benchmark::DoNotOptimize(core::analyze_prediction(data, filter));
  }

  {
    // Closed-loop overhead: the same campaign engine with the hierarchical
    // power manager in the loop (admission, per-minute caps, site meter).
    HPCPOWER_SPAN("stage.power");
    core::StudyConfig managed = config;
    managed.power_manager.enabled = true;
    managed.power_manager.site_cap_fraction = 0.65;
    managed.power_manager.predictor_error_sigma = 0.20;
    managed.power_manager.meter_fault_rate = 0.05;
    managed.instrument_begin_day = 0.0;
    managed.instrument_end_day = 0.0;  // time the loop, not instrumentation
    const auto managed_data = core::run_campaign(cluster::emmy_spec(), managed);
    if (!managed_data.power || !managed_data.power->ledger_reconciles)
      throw std::runtime_error("power stage: ledger failed to reconcile");
    benchmark::DoNotOptimize(managed_data.records.size());
  }

  {
    HPCPOWER_SPAN("stage.report");
    core::ReportOptions ropts;
    ropts.include_prediction = false;  // ml is timed as its own stage
    out.report_text = core::render_markdown_report(campaigns, ropts);
  }

  for (std::size_t i = 0; i < kStageNames.size(); ++i) {
    const std::string name = std::string("stage.") + kStageNames[i];
    out.stage_ms[i] =
        static_cast<double>(obs::metrics().timer(name).total_ns()) / 1e6;
  }
  out.spans = obs::recorded_span_count();
  return out;
}

// ---------------------------------------------------------------------------
// Storage stage: CSV vs .hpcb cost for a campaign-sized sample table.

struct StorageResult {
  std::size_t rows = 0;
  std::size_t csv_bytes = 0;
  std::size_t hpcb_bytes = 0;
  double csv_write_ms = 0.0;
  double hpcb_write_ms = 0.0;
  double csv_read_ms = 0.0;
  double hpcb_read_ms = 0.0;
  double hpcb_scan_ms = 0.0;

  [[nodiscard]] double size_ratio() const {
    return hpcb_bytes > 0 ? static_cast<double>(csv_bytes) /
                                static_cast<double>(hpcb_bytes)
                          : 0.0;
  }
  [[nodiscard]] double read_speedup() const {
    return hpcb_read_ms > 0.0 ? csv_read_ms / hpcb_read_ms : 0.0;
  }
};

// Sample rows the way a `days`-long instrumented campaign logs them: run the
// campaign, then regenerate every detailed job's per-minute RAPL readings
// from the same deterministic power profiles the telemetry used (the
// trace_explorer export path), emitted in the canonical (job, node, minute)
// scrub order that cleaned tables are stored in.
std::vector<trace::PowerSampleRow> make_storage_rows(double days) {
  core::StudyConfig config;
  config.days = days;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;
  const auto data = core::run_campaign(cluster::emmy_spec(), config);

  workload::GeneratorConfig gcfg;
  gcfg.seed = config.seed;
  gcfg.duration = util::MinuteTime::from_days(config.days + config.warmup_days);
  workload::WorkloadGenerator generator(data.spec, workload::emmy_calibration(),
                                        gcfg);
  const auto requests = generator.generate();
  std::unordered_map<std::uint64_t, const workload::JobRequest*> by_id;
  for (const auto& req : requests) by_id[req.job_id] = &req;

  // Cap the table so the stage stays a benchmark, not a soak test; the cap
  // still covers hundreds of jobs of real profile data at 4 days.
  constexpr std::size_t kMaxRows = 600000;
  std::vector<trace::PowerSampleRow> rows;
  for (const auto& rec : data.records) {
    if (!rec.detail) continue;
    const auto it = by_id.find(rec.job_id);
    if (it == by_id.end()) continue;
    const auto& req = *it->second;
    if (rows.size() + static_cast<std::size_t>(rec.nnodes) * rec.runtime_min() >
        kMaxRows)
      break;
    const std::vector<double> mfg(rec.nnodes, 1.0);  // job-local approximation
    const workload::PowerProfile profile(req.behavior, rec.runtime_min(), mfg);
    for (std::uint32_t n = 0; n < rec.nnodes; ++n)
      for (std::uint32_t m = 0; m < rec.runtime_min(); ++m) {
        const double watts = profile.node_power(m, n);
        const auto split =
            cluster::split_domains(watts, req.behavior.memory_intensity);
        rows.push_back({rec.job_id, rec.start.minutes() + m, n, split.pkg_watts,
                        split.dram_watts});
      }
  }
  return rows;
}

StorageResult run_storage_stage(const std::vector<trace::PowerSampleRow>& rows) {
  obs::metrics().reset();
  StorageResult out;
  out.rows = rows.size();

  std::string csv, hpcb;
  {
    HPCPOWER_SPAN("stage.storage.csv_write");
    std::ostringstream os;
    trace::write_sample_table(os, rows);
    csv = std::move(os).str();
  }
  {
    HPCPOWER_SPAN("stage.storage.hpcb_write");
    std::ostringstream os;
    trace::write_sample_table_hpcb(os, rows);
    hpcb = std::move(os).str();
  }
  out.csv_bytes = csv.size();
  out.hpcb_bytes = hpcb.size();

  constexpr int kReps = 3;
  {
    HPCPOWER_SPAN("stage.storage.csv_read");
    for (int r = 0; r < kReps; ++r) {
      std::istringstream is(csv);
      benchmark::DoNotOptimize(trace::read_sample_table(is).size());
    }
  }
  {
    HPCPOWER_SPAN("stage.storage.hpcb_read");
    for (int r = 0; r < kReps; ++r) {
      std::istringstream is(hpcb);
      const auto back = trace::read_sample_table_hpcb(is);
      if (back.size() != rows.size())
        throw std::runtime_error("storage stage: hpcb round trip lost rows");
      benchmark::DoNotOptimize(back.size());
    }
  }
  {
    // Column projection: the "mean PKG power" question should not pay for
    // decoding the whole table.
    HPCPOWER_SPAN("stage.storage.hpcb_scan");
    storage::ReadOptions opts;
    opts.columns = {"minute", "pkg_w"};
    for (int r = 0; r < kReps; ++r) {
      std::istringstream is(hpcb);
      benchmark::DoNotOptimize(storage::read_hpcb(is, opts).rows());
    }
  }

  const auto stage_ms = [](const char* name) {
    return static_cast<double>(obs::metrics().timer(name).total_ns()) / 1e6;
  };
  out.csv_write_ms = stage_ms("stage.storage.csv_write");
  out.hpcb_write_ms = stage_ms("stage.storage.hpcb_write");
  out.csv_read_ms = stage_ms("stage.storage.csv_read") / kReps;
  out.hpcb_read_ms = stage_ms("stage.storage.hpcb_read") / kReps;
  out.hpcb_scan_ms = stage_ms("stage.storage.hpcb_scan") / kReps;
  return out;
}

// ---------------------------------------------------------------------------
// Query stage: zone-map predicate pushdown vs full-scan decode on a file.
//
// The sample table is rewritten sorted by minute so blocks partition the time
// axis and a trailing ~5% minute window is provably prunable. The pruned scan
// must answer that window >= 3x faster than decoding every block (the gate's
// absolute floor), and its output must be byte-identical to filtering the
// full decode at 1, 2, and all threads — pruning may only skip work, never
// change an answer.

struct QueryResult {
  std::size_t rows = 0;
  std::size_t blocks_total = 0;
  std::size_t blocks_pruned = 0;
  double block_match_fraction = 1.0;
  double full_scan_ms = 0.0;     // same window, zone maps off: decode + filter
  double pruned_scan_ms = 0.0;   // zone maps on
  double agg_count_ms = 0.0;     // pruned count(*): CRC-only full-match blocks
  double mmap_read_ms = 0.0;     // whole-file load, mapped
  double buffered_read_ms = 0.0; // whole-file load, ifstream
  bool mmap_supported = false;
  bool identical = false;        // pruned == filtered full scan, all thread counts

  [[nodiscard]] double pruned_speedup() const {
    return pruned_scan_ms > 0.0 ? full_scan_ms / pruned_scan_ms : 0.0;
  }
};

bool tables_bitwise_equal(const storage::Table& a, const storage::Table& b) {
  if (a.schema.size() != b.schema.size() || a.rows() != b.rows()) return false;
  for (std::size_t c = 0; c < a.schema.size(); ++c) {
    if (a.schema[c].name != b.schema[c].name) return false;
    const auto& ca = a.columns[c];
    const auto& cb = b.columns[c];
    if (ca.i64 != cb.i64) return false;
    if (ca.f64.size() != cb.f64.size()) return false;
    if (!ca.f64.empty() &&
        std::memcmp(ca.f64.data(), cb.f64.data(),
                    ca.f64.size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

QueryResult run_query_stage(std::vector<trace::PowerSampleRow> rows) {
  namespace fs = std::filesystem;
  QueryResult out;
  out.rows = rows.size();
  out.mmap_supported = storage::FileBytes::mmap_supported();
  if (rows.empty()) return out;

  std::stable_sort(rows.begin(), rows.end(),
                   [](const trace::PowerSampleRow& a,
                      const trace::PowerSampleRow& b) { return a.minute < b.minute; });
  const fs::path path = fs::temp_directory_path() / "hpcpower_bench_query.hpcb";
  trace::save_sample_table(path.string(), rows, trace::TraceFormat::kHpcb);

  // A ~5% slice of the minute span, mid-campaign: with the table time-sorted
  // the zone maps prove ~95% of blocks can never match.
  const std::int64_t lo = rows.front().minute;
  const std::int64_t span = rows.back().minute - lo + 1;
  const std::int64_t win_lo = lo + (span * 45) / 100;
  const std::int64_t win_hi = lo + (span * 50) / 100;
  storage::ScanQuery window;
  window.where = {
      storage::make_predicate("minute", storage::PredicateOp::kGe, win_lo),
      storage::make_predicate("minute", storage::PredicateOp::kLe, win_hi)};

  storage::ScanOptions pruned_opts;
  storage::ScanOptions full_opts;
  full_opts.use_zone_maps = false;

  // Identity first: at 1, 2, and all threads the pruned scan must produce
  // the exact bytes of filter-after-full-decode.
  out.identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    util::set_global_thread_count(threads);
    const auto pruned = storage::scan_hpcb_file(path.string(), window, pruned_opts);
    const auto full = storage::scan_hpcb_file(path.string(), window, full_opts);
    if (!tables_bitwise_equal(pruned.table, full.table) ||
        pruned.count != full.count)
      out.identical = false;
    if (threads == 0) {
      out.blocks_total = pruned.stats.blocks_total;
      out.blocks_pruned = pruned.stats.blocks_pruned;
      if (pruned.stats.blocks_total > 0)
        out.block_match_fraction =
            static_cast<double>(pruned.stats.blocks_total -
                                pruned.stats.blocks_pruned) /
            static_cast<double>(pruned.stats.blocks_total);
    }
  }

  constexpr int kReps = 5;
  const auto time_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
  };
  out.pruned_scan_ms = time_ms([&] {
    benchmark::DoNotOptimize(
        storage::scan_hpcb_file(path.string(), window, pruned_opts).count);
  });
  out.full_scan_ms = time_ms([&] {
    benchmark::DoNotOptimize(
        storage::scan_hpcb_file(path.string(), window, full_opts).count);
  });
  {
    storage::ScanQuery count = window;
    count.agg = storage::AggregateOp::kCount;
    out.agg_count_ms = time_ms([&] {
      benchmark::DoNotOptimize(
          storage::scan_hpcb_file(path.string(), count, pruned_opts).count);
    });
  }
  {
    storage::ReadOptions mapped;
    mapped.mmap = true;
    out.mmap_read_ms = time_ms([&] {
      benchmark::DoNotOptimize(storage::load_hpcb(path.string(), mapped).rows());
    });
    storage::ReadOptions buffered;
    buffered.mmap = false;
    out.buffered_read_ms = time_ms([&] {
      benchmark::DoNotOptimize(storage::load_hpcb(path.string(), buffered).rows());
    });
  }

  fs::remove(path);
  return out;
}

// ---------------------------------------------------------------------------
// Stream stage: sustained ingest throughput, WAL recovery cost, flat memory.

struct StreamResult {
  std::uint64_t batches = 0;
  std::uint64_t rows = 0;          // detail sample rows applied
  std::uint64_t peak_pending = 0;  // reorder buffer high-water mark (batches)
  std::uint64_t retained_samples = 0;
  std::uint64_t retained_samples_half = 0;
  double wal_replay_ms = 0.0;  // fresh daemon recover() over the full WAL
  bool flat_memory = false;
  bool recovery_identical = false;

  [[nodiscard]] double rows_per_sec() const {
    return wal_replay_ms > 0.0
               ? static_cast<double>(rows) / (wal_replay_ms / 1e3)
               : 0.0;
  }
};

StreamResult run_stream_stage(double days) {
  namespace fs = std::filesystem;
  StreamResult out;
  const fs::path wal_dir =
      fs::temp_directory_path() / "hpcpower_bench_stream_wal";
  fs::remove_all(wal_dir);

  core::StudyConfig config;
  config.days = days;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  // Live pass under a nasty transport (drops, dups, delays, reordering) so
  // peak_pending measures the reorder buffer doing real work; every batch
  // still lands in the WAL exactly once.
  stream::TransitFaultConfig faults;
  faults.enabled = true;
  faults.seed = 4242;
  faults.drop_p = 0.05;
  faults.dup_p = 0.05;
  faults.delay_p = 0.10;

  stream::IngestConfig ingest;
  ingest.wal_dir = wal_dir.string();
  ingest.checkpoint_every = 0;  // replay-only recovery: the replay below then
                                // covers the entire stream, i.e. pure ingest

  std::string live_summary;
  {
    stream::IngestDaemon daemon(cluster::emmy_spec(), ingest);
    stream::StreamDriver driver(daemon, faults);
    const auto result = stream::run_streamed_campaign(cluster::emmy_spec(),
                                                      config, daemon, driver);
    out.batches = result.batches_emitted;
    out.rows = result.apply.rows_applied;
    out.peak_pending = result.transit.peak_pending;
    out.retained_samples = daemon.history().retained_samples();
    live_summary = daemon.render_summary();
  }

  // WAL replay: decode + offer + apply of the whole stream with no simulator
  // in the loop — at once the crash-recovery cost and the daemon's sustained
  // ingest rate.
  {
    stream::IngestDaemon recovered(cluster::emmy_spec(), ingest);
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = recovered.recover();
    const auto t1 = std::chrono::steady_clock::now();
    out.wal_replay_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.recovery_identical = ok && recovered.render_summary() == live_summary;
  }

  // Flat memory: the ring window bounds retained detail by window size, not
  // campaign length — half the campaign must retain exactly as many samples.
  {
    core::StudyConfig half = config;
    half.days = days / 2.0;
    half.instrument_end_day = half.days;
    stream::IngestDaemon daemon(cluster::emmy_spec(), stream::IngestConfig{});
    stream::StreamDriver driver(daemon, stream::TransitFaultConfig{});
    const auto result = stream::run_streamed_campaign(cluster::emmy_spec(),
                                                      half, daemon, driver);
    benchmark::DoNotOptimize(result.batches_emitted);
    out.retained_samples_half = daemon.history().retained_samples();
  }
  out.flat_memory = out.retained_samples == out.retained_samples_half;

  fs::remove_all(wal_dir);
  return out;
}

// ---------------------------------------------------------------------------
// Serve stage: prediction serving latency/throughput + batched-vs-serial
// bit-identity through the PredictionService.

struct ServeResult {
  std::uint64_t training_rows = 0;
  std::uint64_t requests = 0;       // single predict() calls timed
  std::uint64_t batch_rows = 0;     // rows pushed through predict_batch
  double p50_us = 0.0;              // per-call predict() latency
  double p99_us = 0.0;
  double batch_ms = 0.0;            // one batched pass, wall
  bool batched_identical = false;   // batched == serial direct, bitwise

  [[nodiscard]] double predictions_per_sec() const {
    return batch_ms > 0.0
               ? static_cast<double>(batch_rows) / (batch_ms / 1e3)
               : 0.0;
  }
};

ServeResult run_serve_stage(double days) {
  ServeResult out;

  // Train a snapshot on the campaign's own prediction dataset, exactly what
  // a warm retrain would see.
  core::StudyConfig config;
  config.days = days;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;
  const auto data = core::run_campaign(cluster::emmy_spec(), config);
  const ml::Dataset dataset = core::build_prediction_dataset(data);
  out.training_rows = dataset.size();

  serve::PredictionService service;
  service.install(
      serve::ModelSnapshot::train(dataset, serve::submission_schema(), {}));
  const auto snap = service.snapshot();

  // Request stream: the dataset's rows, cycled. Per-call latency includes
  // the full serving path (snapshot pick-up, metrics, the model).
  constexpr std::uint64_t kRequests = 20000;
  out.requests = kRequests;
  std::vector<double> latencies_us;
  latencies_us.reserve(kRequests);
  double sink = 0.0;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto row = dataset.row(i % dataset.size());
    const auto t0 = std::chrono::steady_clock::now();
    sink += service.predict(row);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  benchmark::DoNotOptimize(sink);
  std::sort(latencies_us.begin(), latencies_us.end());
  out.p50_us = latencies_us[latencies_us.size() / 2];
  out.p99_us = latencies_us[latencies_us.size() * 99 / 100];

  // Batched throughput over ~8 copies of the dataset, then the bit-identity
  // check against a serial pass of direct model calls.
  const std::size_t reps = std::max<std::size_t>(1, 80000 / dataset.size());
  std::vector<double> features;
  features.reserve(reps * dataset.size() * dataset.dim());
  for (std::size_t r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < dataset.size(); ++i)
      for (const double v : dataset.row(i)) features.push_back(v);
  out.batch_rows = reps * dataset.size();

  std::vector<double> served(out.batch_rows);
  {
    const auto t0 = std::chrono::steady_clock::now();
    service.predict_batch(features, served);
    const auto t1 = std::chrono::steady_clock::now();
    out.batch_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  }

  bool identical = true;
  for (std::size_t i = 0; i < out.batch_rows; ++i) {
    const double direct = snap->predict(
        serve::ModelKind::kTree,
        std::span<const double>(features).subspan(i * dataset.dim(),
                                                  dataset.dim()));
    if (std::memcmp(&direct, &served[i], sizeof(double)) != 0) {
      identical = false;
      break;
    }
  }
  out.batched_identical = identical;
  return out;
}

// ---------------------------------------------------------------------------
// Obs stage: continuous self-monitoring overhead. A synthetic registry the
// size of a long campaign's (~120 time-series columns across all four metric
// kinds) is sampled into a bounded ring well past its capacity while the SLO
// engine evaluates a flapping threshold rule on every tick. Reports the
// per-tick monitoring cost plus exporter timings, and checks the two
// monitoring invariants: the ring stays bounded by its capacity, and the
// slo.* registry counters reconcile exactly with the engine's tallies.

struct ObsResult {
  std::size_t columns = 0;      // time-series columns interned
  std::uint64_t ticks = 0;      // monitoring ticks timed
  double tick_us = 0.0;         // avg sample + SLO evaluation cost per tick
  double openmetrics_ms = 0.0;  // one full OpenMetrics text exposition
  double hpcb_save_ms = 0.0;    // self-metrics table -> .hpcb bytes
  bool ring_bounded = false;
  bool alerts_reconciled = false;
};

ObsResult run_obs_stage() {
  obs::metrics().reset();
  ObsResult out;

  constexpr int kCounters = 40, kGauges = 40, kHists = 10, kTimers = 10;
  constexpr std::array<double, 4> kEdges = {1.0, 10.0, 100.0, 1000.0};
  std::vector<std::string> counters;
  std::vector<obs::Gauge*> gauges;
  std::vector<obs::Histogram*> hists;
  std::vector<obs::Timer*> timers;
  for (int i = 0; i < kCounters; ++i)
    counters.push_back("bench.obs.counter" + std::to_string(i));
  for (int i = 0; i < kGauges; ++i)
    gauges.push_back(&obs::metrics().gauge("bench.obs.gauge" + std::to_string(i)));
  for (int i = 0; i < kHists; ++i)
    hists.push_back(
        &obs::metrics().histogram("bench.obs.hist" + std::to_string(i), kEdges));
  for (int i = 0; i < kTimers; ++i)
    timers.push_back(&obs::metrics().timer("bench.obs.timer" + std::to_string(i)));
  obs::Gauge& flap = obs::metrics().gauge("bench.obs.flap");

  obs::SloRule rule;
  rule.name = "bench.flap_budget";
  rule.value = "gauge.bench.obs.flap";
  rule.threshold = 0.5;
  rule.objective = 0.9;
  rule.burn_threshold = 1.0;
  rule.short_window_min = 30;
  rule.long_window_min = 120;
  obs::SloEngine slo({rule});

  const std::uint64_t fired_before = util::counters().value("slo.alerts.fired");
  const std::uint64_t resolved_before =
      util::counters().value("slo.alerts.resolved");

  obs::MetricTimeSeries series(
      obs::TimeSeriesConfig{/*capacity=*/2048, /*cadence_minutes=*/1});
  constexpr std::int64_t kTicks = 6000;
  util::Rng rng(11);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t minute = 0; minute < kTicks; ++minute) {
    // Live churn between samples: the per-minute updates subsystems make.
    for (int i = 0; i < 8; ++i)
      obs::metrics().count(
          counters[static_cast<std::size_t>((minute + i * 5) % kCounters)]);
    for (int i = 0; i < kGauges; ++i)
      gauges[static_cast<std::size_t>(i)]->set(
          static_cast<double>(minute % (i + 7)));
    hists[static_cast<std::size_t>(minute % kHists)]->observe(rng.uniform() *
                                                              500.0);
    timers[static_cast<std::size_t>(minute % kTimers)]->add(1000);
    // Two sustained bad episodes: the rule must fire and resolve twice.
    flap.set((minute >= 1000 && minute < 2000) ||
                     (minute >= 3500 && minute < 4500)
                 ? 1.0
                 : 0.0);
    series.sample(minute);
    slo.evaluate(series, minute);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.ticks = kTicks;
  out.tick_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kTicks;
  out.columns = series.column_refs().size();
  out.ring_bounded = series.size() == series.capacity() &&
                     series.samples_evicted() ==
                         static_cast<std::uint64_t>(kTicks) - series.capacity();

  const std::uint64_t fired =
      util::counters().value("slo.alerts.fired") - fired_before;
  const std::uint64_t resolved =
      util::counters().value("slo.alerts.resolved") - resolved_before;
  out.alerts_reconciled =
      slo.fired() >= 2 && fired == slo.fired() && resolved == slo.resolved();

  {
    constexpr int kReps = 5;
    const auto r0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r)
      benchmark::DoNotOptimize(obs::render_openmetrics().size());
    const auto r1 = std::chrono::steady_clock::now();
    out.openmetrics_ms =
        std::chrono::duration<double, std::milli>(r1 - r0).count() / kReps;
  }
  {
    constexpr int kReps = 3;
    const auto r0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      std::ostringstream os;
      storage::write_hpcb(os, series.to_table());
      const std::string bytes = std::move(os).str();
      benchmark::DoNotOptimize(bytes.size());
    }
    const auto r1 = std::chrono::steady_clock::now();
    out.hpcb_save_ms =
        std::chrono::duration<double, std::milli>(r1 - r0).count() / kReps;
  }
  return out;
}

int run_stage_harness(double days, const std::string& out_path) {
  core::StudyConfig config;
  config.days = days;
  config.instrument_begin_day = 0.0;
  config.instrument_end_day = config.days;

  obs::set_recording(true);

  std::printf("\nstage harness: %.0f-day campaign, serial then parallel\n", days);
  util::set_global_thread_count(1);
  const std::size_t serial_threads = util::global_thread_count();
  const ChainResult serial = run_chain(config);
  util::set_global_thread_count(0);
  const std::size_t parallel_threads = util::global_thread_count();
  const ChainResult parallel = run_chain(config);
  const bool deterministic = serial.report_text == parallel.report_text;
  const unsigned hw = std::thread::hardware_concurrency();
  const auto sample_rows = make_storage_rows(days);
  const StorageResult storage = run_storage_stage(sample_rows);
  const QueryResult query = run_query_stage(sample_rows);
  const StreamResult stream = run_stream_stage(days);
  const ServeResult serve_r = run_serve_stage(days);
  const ObsResult obs_r = run_obs_stage();

  // A "speedup" measured against a parallel pass that had one hardware
  // thread is pool overhead, not parallelism — report null rather than a
  // misleading sub-1.0 number.
  const bool comparable = parallel_threads > 1;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  double serial_total = 0.0, parallel_total = 0.0;
  std::fprintf(f,
               "{\n  \"days\": %.1f,\n  \"serial_threads\": %zu,\n"
               "  \"parallel_threads\": %zu,\n  \"hardware_concurrency\": %u,\n"
               "  \"stages\": [\n",
               days, serial_threads, parallel_threads, hw);
  for (std::size_t s = 0; s < kStageNames.size(); ++s) {
    const double speedup =
        parallel.stage_ms[s] > 0.0 ? serial.stage_ms[s] / parallel.stage_ms[s] : 0.0;
    serial_total += serial.stage_ms[s];
    parallel_total += parallel.stage_ms[s];
    std::fprintf(f,
                 "    {\"stage\": \"%s\", \"serial_ms\": %.2f, \"parallel_ms\": "
                 "%.2f, \"speedup\": ",
                 kStageNames[s], serial.stage_ms[s], parallel.stage_ms[s]);
    if (comparable) {
      std::fprintf(f, "%.2f", speedup);
    } else {
      std::fprintf(f, "null");
    }
    std::fprintf(f, "}%s\n", s + 1 < kStageNames.size() ? "," : "");
    std::printf("  %-10s serial %9.2f ms   parallel %9.2f ms   speedup %.2fx\n",
                kStageNames[s], serial.stage_ms[s], parallel.stage_ms[s], speedup);
  }
  const double total_speedup =
      parallel_total > 0.0 ? serial_total / parallel_total : 0.0;
  std::fprintf(f,
               "  ],\n  \"storage\": {\n"
               "    \"rows\": %zu,\n    \"csv_bytes\": %zu,\n"
               "    \"hpcb_bytes\": %zu,\n    \"size_ratio\": %.2f,\n"
               "    \"csv_write_ms\": %.2f,\n    \"hpcb_write_ms\": %.2f,\n"
               "    \"csv_read_ms\": %.2f,\n    \"hpcb_read_ms\": %.2f,\n"
               "    \"hpcb_scan_ms\": %.2f,\n    \"read_speedup\": %.2f\n  },\n",
               storage.rows, storage.csv_bytes, storage.hpcb_bytes,
               storage.size_ratio(), storage.csv_write_ms, storage.hpcb_write_ms,
               storage.csv_read_ms, storage.hpcb_read_ms, storage.hpcb_scan_ms,
               storage.read_speedup());
  std::fprintf(f,
               "  \"query\": {\n"
               "    \"rows\": %zu,\n    \"blocks_total\": %zu,\n"
               "    \"blocks_pruned\": %zu,\n"
               "    \"block_match_fraction\": %.4f,\n"
               "    \"full_scan_ms\": %.2f,\n    \"pruned_scan_ms\": %.2f,\n"
               "    \"pruned_speedup\": %.2f,\n    \"agg_count_ms\": %.2f,\n"
               "    \"mmap_read_ms\": %.2f,\n    \"buffered_read_ms\": %.2f,\n"
               "    \"mmap_supported\": %s,\n    \"identical\": %s\n  },\n",
               query.rows, query.blocks_total, query.blocks_pruned,
               query.block_match_fraction, query.full_scan_ms,
               query.pruned_scan_ms, query.pruned_speedup(), query.agg_count_ms,
               query.mmap_read_ms, query.buffered_read_ms,
               query.mmap_supported ? "true" : "false",
               query.identical ? "true" : "false");
  std::fprintf(f,
               "  \"stream\": {\n"
               "    \"batches\": %llu,\n    \"rows\": %llu,\n"
               "    \"ingest_rows_per_sec\": %.0f,\n"
               "    \"wal_replay_ms\": %.2f,\n"
               "    \"peak_pending_batches\": %llu,\n"
               "    \"retained_samples\": %llu,\n"
               "    \"retained_samples_half\": %llu,\n"
               "    \"flat_memory\": %s,\n    \"recovery_identical\": %s\n  },\n",
               static_cast<unsigned long long>(stream.batches),
               static_cast<unsigned long long>(stream.rows),
               stream.rows_per_sec(), stream.wal_replay_ms,
               static_cast<unsigned long long>(stream.peak_pending),
               static_cast<unsigned long long>(stream.retained_samples),
               static_cast<unsigned long long>(stream.retained_samples_half),
               stream.flat_memory ? "true" : "false",
               stream.recovery_identical ? "true" : "false");
  std::fprintf(f,
               "  \"serve\": {\n"
               "    \"training_rows\": %llu,\n    \"requests\": %llu,\n"
               "    \"latency_p50_us\": %.2f,\n    \"latency_p99_us\": %.2f,\n"
               "    \"batch_rows\": %llu,\n    \"batch_ms\": %.2f,\n"
               "    \"predictions_per_sec\": %.0f,\n"
               "    \"batched_identical\": %s\n  },\n",
               static_cast<unsigned long long>(serve_r.training_rows),
               static_cast<unsigned long long>(serve_r.requests),
               serve_r.p50_us, serve_r.p99_us,
               static_cast<unsigned long long>(serve_r.batch_rows),
               serve_r.batch_ms, serve_r.predictions_per_sec(),
               serve_r.batched_identical ? "true" : "false");
  std::fprintf(f,
               "  \"obs\": {\n"
               "    \"columns\": %zu,\n    \"ticks\": %llu,\n"
               "    \"tick_us\": %.2f,\n    \"openmetrics_ms\": %.2f,\n"
               "    \"hpcb_save_ms\": %.2f,\n    \"ring_bounded\": %s,\n"
               "    \"alerts_reconciled\": %s\n  },\n",
               obs_r.columns, static_cast<unsigned long long>(obs_r.ticks),
               obs_r.tick_us, obs_r.openmetrics_ms, obs_r.hpcb_save_ms,
               obs_r.ring_bounded ? "true" : "false",
               obs_r.alerts_reconciled ? "true" : "false");
  std::fprintf(f,
               "  \"serial_total_ms\": %.2f,\n  \"parallel_total_ms\": "
               "%.2f,\n  \"total_speedup\": ",
               serial_total, parallel_total);
  if (comparable) {
    std::fprintf(f, "%.2f", total_speedup);
  } else {
    std::fprintf(f,
                 "null,\n  \"note\": \"parallel pass ran on a single hardware "
                 "thread; speedups are not meaningful on this machine\"");
  }
  std::fprintf(f, ",\n  \"spans_recorded\": %llu,\n  \"deterministic\": %s\n}\n",
               static_cast<unsigned long long>(parallel.spans),
               deterministic ? "true" : "false");
  std::fclose(f);
  std::printf("  %-10s serial %9.2f ms   parallel %9.2f ms   speedup %.2fx\n",
              "total", serial_total, parallel_total, total_speedup);
  std::printf(
      "  storage    %zu rows: csv %.1f MB / hpcb %.1f MB (%.2fx smaller), "
      "read %.1f ms vs %.1f ms (%.2fx faster), projected scan %.1f ms\n",
      storage.rows, static_cast<double>(storage.csv_bytes) / 1e6,
      static_cast<double>(storage.hpcb_bytes) / 1e6, storage.size_ratio(),
      storage.csv_read_ms, storage.hpcb_read_ms, storage.read_speedup(),
      storage.hpcb_scan_ms);
  std::printf(
      "  query      %zu rows / %zu blocks: window matches %zu blocks (%.1f%%), "
      "pruned %.1f ms vs full %.1f ms (%.2fx), count %.2f ms, load mmap %.1f "
      "ms vs buffered %.1f ms%s, pruned==filtered %s\n",
      query.rows, query.blocks_total, query.blocks_total - query.blocks_pruned,
      query.block_match_fraction * 100.0, query.pruned_scan_ms,
      query.full_scan_ms, query.pruned_speedup(), query.agg_count_ms,
      query.mmap_read_ms, query.buffered_read_ms,
      query.mmap_supported ? "" : " (mmap unsupported: both buffered)",
      query.identical ? "byte-identical" : "DIVERGED");
  std::printf(
      "  stream     %llu batches / %llu rows: WAL replay %.1f ms (%.0f "
      "rows/s), peak pending %llu, retained %llu vs %llu at half length "
      "(flat=%s), recovery %s\n",
      static_cast<unsigned long long>(stream.batches),
      static_cast<unsigned long long>(stream.rows), stream.wal_replay_ms,
      stream.rows_per_sec(),
      static_cast<unsigned long long>(stream.peak_pending),
      static_cast<unsigned long long>(stream.retained_samples),
      static_cast<unsigned long long>(stream.retained_samples_half),
      stream.flat_memory ? "yes" : "NO",
      stream.recovery_identical ? "byte-identical" : "DIVERGED");
  std::printf(
      "  serve      %llu requests: p50 %.1f us / p99 %.1f us, batched %llu "
      "rows in %.1f ms (%.0f pred/s), batched==serial %s\n",
      static_cast<unsigned long long>(serve_r.requests), serve_r.p50_us,
      serve_r.p99_us, static_cast<unsigned long long>(serve_r.batch_rows),
      serve_r.batch_ms, serve_r.predictions_per_sec(),
      serve_r.batched_identical ? "bit-identical" : "DIVERGED");
  std::printf(
      "  obs        %llu monitoring ticks over %zu columns: %.1f us/tick, "
      "openmetrics render %.2f ms, hpcb save %.2f ms, ring %s, slo ledger %s\n",
      static_cast<unsigned long long>(obs_r.ticks), obs_r.columns,
      obs_r.tick_us, obs_r.openmetrics_ms, obs_r.hpcb_save_ms,
      obs_r.ring_bounded ? "bounded" : "UNBOUNDED",
      obs_r.alerts_reconciled ? "reconciles" : "DIVERGED");
  if (!comparable)
    std::printf("  note: single hardware thread; speedups not meaningful\n");
  std::printf("  spans recorded (parallel pass): %llu\n",
              static_cast<unsigned long long>(parallel.spans));
  std::printf("  deterministic (byte-identical report): %s\n",
              deterministic ? "yes" : "NO");
  std::printf("  wrote %s\n", out_path.c_str());
  return (deterministic && query.identical && stream.flat_memory &&
          stream.recovery_identical && serve_r.batched_identical &&
          obs_r.ring_bounded && obs_r.alerts_reconciled)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip harness flags before google-benchmark parses the rest.
  double perf_days = 6.0;
  std::string perf_out = "BENCH_perf.json";
  bool run_perf = true;
  std::vector<char*> bench_args;
  bench_args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--perf_days=", 0) == 0) {
      perf_days = std::stod(std::string(arg.substr(12)));
    } else if (arg.rfind("--perf_out=", 0) == 0) {
      perf_out = std::string(arg.substr(11));
    } else if (arg == "--no_perf") {
      run_perf = false;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!run_perf) return 0;
  hpcpower::util::set_log_level(hpcpower::util::LogLevel::kWarn);
  const int rc = run_stage_harness(perf_days, perf_out);
  hpcpower::util::shutdown_global_pool();
  return rc;
}

// Fig 4: per-node power of the five key applications on both systems.

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig04_app_cross_system",
      "Fig 4: key applications' per-node power on Emmy vs Meggie");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 4: key applications across systems",
      "all apps draw less on Meggie; ranking NOT preserved (MD-0 vs FASTEST)");

  const workload::ApplicationCatalog catalog;
  const auto campaigns = core::run_both_systems(ctx->config);
  const auto emmy = core::analyze_app_power(campaigns[0], catalog);
  const auto meggie = core::analyze_app_power(campaigns[1], catalog);

  std::printf("\n  %-10s  %18s  %18s  %s\n", "app", "Emmy W (jobs)", "Meggie W (jobs)",
              "Meggie/Emmy");
  for (std::size_t i = 0; i < emmy.size(); ++i) {
    std::printf("  %-10s  %8.1f W (%5zu)  %8.1f W (%5zu)  %10.2f\n",
                emmy[i].app_name.c_str(), emmy[i].mean_power_w, emmy[i].jobs,
                meggie[i].mean_power_w, meggie[i].jobs,
                emmy[i].mean_power_w > 0.0 ? meggie[i].mean_power_w / emmy[i].mean_power_w
                                           : 0.0);
  }

  const auto rank_of = [](const std::vector<core::AppPowerEntry>& entries,
                          const std::string& name) {
    std::size_t rank = 0;
    double mine = 0.0;
    for (const auto& e : entries)
      if (e.app_name == name) mine = e.mean_power_w;
    for (const auto& e : entries) rank += (e.mean_power_w > mine);
    return rank + 1;
  };
  std::printf("\n  ranking check (1 = most power-hungry):\n");
  for (const char* name : {"Gromacs", "MD-0", "FASTEST", "STARCCM", "WRF"})
    std::printf("    %-10s Emmy rank %zu, Meggie rank %zu\n", name,
                rank_of(emmy, name), rank_of(meggie, name));
  std::printf("\n  paper: MD-0 outranks FASTEST on Emmy, FASTEST outranks MD-0 on Meggie\n");
  return 0;
}

#include "bench_common.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace hpcpower::bench {

std::optional<BenchContext> parse_common_args(int argc, const char* const* argv,
                                              const std::string& name,
                                              const std::string& description) {
  util::Options opts(name, description);
  opts.add_option("days", "campaign length in simulated days", "12");
  opts.add_option("seed", "root random seed", "42");
  opts.add_flag("full", "run the paper-scale 151-day campaign");
  opts.add_flag("quiet", "suppress progress logging");
  opts.add_threads_option();
  try {
    if (!opts.parse(argc, argv)) return std::nullopt;
    util::set_global_thread_count(opts.threads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
  if (opts.flag("quiet")) util::set_log_level(util::LogLevel::kWarn);

  BenchContext ctx;
  if (opts.flag("full")) {
    ctx.config = core::StudyConfig::paper_scale(opts.seed());
    ctx.full_scale = true;
  } else {
    ctx.config.seed = opts.seed();
    ctx.config.days = opts.number("days");
    ctx.config.warmup_days = 3.0;
    ctx.config.instrument_begin_day = 0.0;
    ctx.config.instrument_end_day = ctx.config.days;
  }
  return ctx;
}

void print_banner(const std::string& experiment, const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper reference: %s\n", paper_reference.c_str());
  std::printf("==============================================================\n");
}

void print_system_header(const cluster::SystemSpec& spec) {
  std::printf("\n--- %s (%u nodes, node TDP %.0f W, provisioned %.0f kW) ---\n",
              spec.name.c_str(), spec.node_count, spec.node_tdp_watts,
              spec.provisioned_power_watts() / 1000.0);
}

void print_cdf(const stats::Ecdf& cdf, const std::string& x_label,
               const char* x_format, std::size_t points) {
  if (cdf.empty()) {
    std::printf("  (no data)\n");
    return;
  }
  std::printf("  %-14s  CDF\n", x_label.c_str());
  for (const auto& [x, f] : cdf.curve(points)) {
    std::printf("  ");
    std::printf(x_format, x);
    std::printf("  %5.2f  %s\n", f, util::ascii_bar(f, 1.0, 30).c_str());
  }
}

void print_histogram(const stats::Histogram& hist, const std::string& x_label,
                     const char* x_format) {
  const auto pdf = hist.pdf();
  double peak = 0.0;
  for (const double d : pdf) peak = std::max(peak, d);
  std::printf("  %-12s  density\n", x_label.c_str());
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    std::printf("  ");
    std::printf(x_format, hist.bin_center(b));
    std::printf("  %9.5f  %s\n", pdf[b], util::ascii_bar(pdf[b], peak, 30).c_str());
  }
}

void print_compare(const std::string& metric, const std::string& paper,
                   const std::string& measured) {
  std::printf("  %-42s paper: %-16s measured: %s\n", metric.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace hpcpower::bench

# Bench targets, included from the top-level CMakeLists (not added as a
# subdirectory) so that build/bench/ contains ONLY the bench executables -
# `for b in build/bench/*; do $b; done` then runs the whole harness.

set(HPCPOWER_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

add_library(hpcpower_bench_common STATIC ${HPCPOWER_BENCH_DIR}/bench_common.cpp)
target_include_directories(hpcpower_bench_common PUBLIC ${HPCPOWER_BENCH_DIR})
target_link_libraries(hpcpower_bench_common PUBLIC hpcpower_core
                      PRIVATE hpcpower_warnings)

function(hpcpower_add_bench name)
  add_executable(${name} ${HPCPOWER_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE hpcpower_bench_common hpcpower_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

hpcpower_add_bench(bench_table1_systems)
hpcpower_add_bench(bench_fig01_system_utilization)
hpcpower_add_bench(bench_fig02_power_utilization)
hpcpower_add_bench(bench_fig03_pernode_power_pdf)
hpcpower_add_bench(bench_fig04_app_cross_system)
hpcpower_add_bench(bench_table2_correlations)
hpcpower_add_bench(bench_fig05_length_size_split)
hpcpower_add_bench(bench_fig07_temporal_cdfs)
hpcpower_add_bench(bench_fig09_spatial_cdfs)
hpcpower_add_bench(bench_fig10_node_energy_spread)
hpcpower_add_bench(bench_fig11_user_concentration)
hpcpower_add_bench(bench_fig12_user_variability)
hpcpower_add_bench(bench_fig13_cluster_variability)
hpcpower_add_bench(bench_fig14_prediction_error)
hpcpower_add_bench(bench_fig15_per_user_error)
hpcpower_add_bench(bench_ablation_features)
hpcpower_add_bench(bench_ablation_scheduler)
hpcpower_add_bench(bench_ablation_powercap)
hpcpower_add_bench(bench_ablation_overprovision)

add_executable(bench_perf_microbench ${HPCPOWER_BENCH_DIR}/bench_perf_microbench.cpp)
target_link_libraries(bench_perf_microbench PRIVATE hpcpower_core hpcpower_ml
                      hpcpower_workload hpcpower_stats hpcpower_trace
                      hpcpower_storage hpcpower_stream hpcpower_serve
                      benchmark::benchmark
                      hpcpower_warnings)
set_target_properties(bench_perf_microbench PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

// Figs 8-9: spatial power-spread metrics of instrumented multi-node jobs.
// Fig 8 defines the metrics (spatial spread, average spread, time above it);
// this bench prints a worked example plus the Fig 9 CDFs.

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig09_spatial_cdfs",
      "Figs 8-9: spatial spread metrics across a job's nodes");
  if (!ctx) return 0;

  bench::print_banner(
      "Figs 8-9: spatial power spread across nodes of one job",
      "mean avg spread 20 W (up to ~110 W); ~15% of per-node power "
      "(some >40%); above own average ~30% of runtime");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_spatial(data);
    bench::print_system_header(data.spec);
    std::printf("  instrumented multi-node jobs: %zu\n",
                report.instrumented_multinode_jobs);
    bench::print_compare("mean of avg spatial spread", "20 W",
                         util::format_watts(report.mean_avg_spread_w));
    bench::print_compare("max of avg spatial spread", "~110 W",
                         util::format_watts(report.max_avg_spread_w));
    bench::print_compare("spread as fraction of power", "~15%",
                         util::format_percent(report.mean_spread_fraction));
    bench::print_compare("time above own avg spread", "~30%",
                         util::format_percent(report.mean_time_above_avg_spread));

    std::printf("\n  Fig 9(a): CDF of average spatial spread (W)\n");
    bench::print_cdf(report.avg_spread_w_cdf, "watts", "%8.1f");
    std::printf("\n  Fig 9(b): CDF of spread as fraction of per-node power\n");
    bench::print_cdf(report.spread_fraction_cdf, "fraction");
    std::printf("\n  Fig 9(c): CDF of fraction of runtime above avg spread\n");
    bench::print_cdf(report.time_above_avg_spread_cdf, "time fraction");
  }

  std::printf("\n--- Fig 8 metric illustration ---\n");
  std::printf(
      "  at minute t a 4-node job drawing {150, 140, 155, 120} W has spatial\n"
      "  spread 155-120 = 35 W; averaging the spread over the run gives the\n"
      "  job's 'average spatial spread'.\n");
  return 0;
}

// Fig 15: per-user mean absolute prediction error with the BDT model.

#include <cstdio>

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig15_per_user_error",
      "Fig 15: mean absolute prediction error per user (BDT)");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 15: prediction quality across users (BDT)",
      "90% of users see <5% average absolute prediction error");

  ml::EvaluationConfig cfg;
  cfg.seed = ctx->config.seed;
  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_prediction(data, {}, cfg);
    const auto& bdt = report.model("BDT");
    bench::print_system_header(data.spec);
    std::printf("  users with predictions: %zu\n", bdt.per_user_mean_error.size());
    bench::print_compare("users with mean error <5%", "~90%",
                         util::format_percent(bdt.user_fraction_below(0.05)));
    bench::print_compare("users with mean error <10%", "-",
                         util::format_percent(bdt.user_fraction_below(0.10)));
    std::printf("\n  CDF over users of mean absolute prediction error\n");
    bench::print_cdf(stats::Ecdf(bdt.per_user_errors()), "mean abs error");
  }
  return 0;
}

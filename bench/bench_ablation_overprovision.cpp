// Ablation: hardware over-provisioning under a fixed power budget.
//
// The paper's Sec 3/6 argument: because jobs draw well below TDP, a facility
// can cap compute power below worst-case provisioning and spend the released
// budget on MORE nodes, increasing throughput for the same electricity.
// This bench runs that experiment: same workload pressure, power-aware
// admission at a fixed budget, machine sizes from 560 to 728 nodes.

#include <cstdio>

#include "bench_common.hpp"
#include "core/system_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_ablation_overprovision",
      "ablation: throughput vs node count under a fixed power budget");
  if (!ctx) return 0;

  const cluster::SystemSpec base = cluster::emmy_spec();
  // Budget: 80% of the baseline machine's worst-case provisioning - roughly
  // what Fig 2 shows Emmy actually peaks at.
  const double budget_w = 0.80 * base.provisioned_power_watts();

  bench::print_banner(
      "Ablation: over-provisioning under a fixed power budget",
      util::format("budget fixed at %.0f kW (80%% of Emmy's worst-case "
                   "provisioning); paper Sec 3/6: stranded power can host "
                   "extra nodes",
                   budget_w / 1000.0));

  std::printf("\n  %-8s %14s %14s %16s %16s\n", "nodes", "utilization",
              "node-hours/day", "mean power", "peak power");
  for (const std::uint32_t nodes : {560u, 600u, 650u, 700u, 728u}) {
    cluster::SystemSpec spec = base;
    spec.id = cluster::SystemId::kCustom;  // custom size, Emmy-like workload
    spec.name = util::format("Emmy+%d", static_cast<int>(nodes) - 560);
    spec.node_count = nodes;

    core::StudyConfig config = ctx->config;
    config.power_budget.watts = budget_w;
    // Scale arrivals with the machine so demand keeps pace with capacity.
    config.load_scale = static_cast<double>(nodes) / base.node_count;

    const auto data = core::run_campaign(spec, config);
    const auto report = core::analyze_system_utilization(data, 0);

    double node_hours = 0.0;
    for (const auto& r : data.records) node_hours += r.node_hours();
    const double days =
        static_cast<double>(data.series.total_power_w.size()) / (24.0 * 60.0);

    std::printf("  %-8u %13.1f%% %14.0f %13.0f kW %13.0f kW\n", nodes,
                100.0 * report.mean_system_utilization, node_hours / days,
                report.mean_power_utilization * spec.provisioned_power_watts() / 1000.0,
                report.peak_power_utilization * spec.provisioned_power_watts() / 1000.0);
  }
  std::printf(
      "\n  reading: completed node-hours/day keep growing past 560 nodes while\n"
      "  the power peak stays under the fixed budget - the stranded power of\n"
      "  Fig 2 converted into throughput.\n");
  return 0;
}

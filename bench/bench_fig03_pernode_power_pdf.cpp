// Fig 3: PDF of per-node power consumption of all jobs.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig03_pernode_power_pdf",
      "Fig 3: distribution of per-node power over all jobs");
  if (!ctx) return 0;

  bench::print_banner("Fig 3: PDF of per-node power of all jobs",
                      "Emmy mean 149 W (71% TDP) std 39 W; "
                      "Meggie mean 114 W (59% TDP) std 20 W");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const bool emmy = data.spec.id == cluster::SystemId::kEmmy;
    const auto report = core::analyze_per_node_power(data, {}, 30);
    bench::print_system_header(data.spec);
    std::printf("  jobs analyzed: %zu\n", report.watts.count);
    bench::print_compare("mean per-node power", emmy ? "149 W" : "114 W",
                         util::format_watts(report.watts.mean));
    bench::print_compare("mean as fraction of TDP", emmy ? "71%" : "59%",
                         util::format_percent(report.mean_tdp_fraction));
    bench::print_compare("std deviation", emmy ? "39 W (26%)" : "20 W (18%)",
                         util::format("%.1f W (%.0f%%)", report.watts.stddev,
                                      100.0 * report.std_fraction_of_mean));
    std::printf("\n");
    bench::print_histogram(report.histogram, "watts");

    // The paper's consistency check: Fig 3 is not an artifact of one
    // atypical phase of the campaign.
    const double window_days = std::max(1.0, ctx->config.days / 5.0);
    const auto consistency = core::analyze_monthly_consistency(data, window_days);
    std::printf("\n  consistency over %.0f-day windows (max mean deviation %.1f%%):\n",
                window_days, 100.0 * consistency.max_mean_deviation);
    for (const auto& w : consistency.windows)
      std::printf("    day %5.0f+  %6zu jobs  mean %6.1f W  std %5.1f W\n",
                  w.begin_day, w.jobs, w.mean_power_w, w.std_power_w);
  }
  return 0;
}

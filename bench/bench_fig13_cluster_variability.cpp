// Fig 13: power variability after clustering jobs by (user, nnodes) and
// (user, requested walltime).

#include <cstdio>

#include "bench_common.hpp"
#include "core/user_analysis.hpp"

using namespace hpcpower;

namespace {
void print_report(const core::ClusterVariabilityReport& r, const char* paper_below10) {
  std::printf("  clusters (>=3 jobs): %zu, mean cluster CV %.1f%%\n", r.clusters,
              100.0 * r.mean_cluster_cv);
  std::printf("    std < 10%%        : %5.1f%%   (paper: %s)\n",
              100.0 * r.share_below_10, paper_below10);
  std::printf("    std in [10,20)%%  : %5.1f%%\n", 100.0 * r.share_10_to_20);
  std::printf("    std in [20,30)%%  : %5.1f%%\n", 100.0 * r.share_20_to_30);
  std::printf("    std >= 30%%       : %5.1f%%\n", 100.0 * r.share_above_30);
}
}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig13_cluster_variability",
      "Fig 13: per-cluster power variability, clustered by nodes / walltime");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 13: variability within (user, nnodes) and (user, walltime) clusters",
      "most clusters have <10% power std (Emmy by-nodes: 61.7% of clusters)");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const bool emmy = data.spec.id == cluster::SystemId::kEmmy;
    bench::print_system_header(data.spec);
    std::printf("\n  clustered by (user, number of nodes):\n");
    print_report(core::analyze_cluster_variability(data, core::ClusterKey::kUserNodes),
                 emmy ? "61.7%" : "majority");
    std::printf("\n  clustered by (user, requested walltime):\n");
    print_report(
        core::analyze_cluster_variability(data, core::ClusterKey::kUserWalltime),
        "majority");
  }
  return 0;
}

// Figs 6-7: temporal power-consumption metrics of instrumented jobs.
// Fig 6 defines the metrics (peak overshoot; % of runtime >10% above mean);
// this bench prints a worked metric example plus the Fig 7 CDFs.

#include <cstdio>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig07_temporal_cdfs",
      "Figs 6-7: temporal metrics (peak overshoot, time above +10%)");
  if (!ctx) return 0;

  bench::print_banner(
      "Figs 6-7: temporal power variation of jobs",
      "avg peak overshoot ~12%; 80% of jobs <12%; avg time >10% above mean "
      "~10%; >70% of jobs spend ~0% there");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_temporal(data);
    bench::print_system_header(data.spec);
    std::printf("  instrumented jobs: %zu\n", report.instrumented_jobs);
    bench::print_compare("mean temporal std/mean", "~11%",
                         util::format_percent(report.mean_temporal_cv));
    bench::print_compare("mean peak overshoot", "10-12%",
                         util::format_percent(report.mean_peak_overshoot));
    bench::print_compare("mean time >10% above mean", "~10%",
                         util::format_percent(report.mean_time_above_10pct));
    bench::print_compare("jobs spending ~0% time above", ">70%",
                         util::format_percent(report.fraction_jobs_never_above));

    std::printf("\n  Fig 7(a): CDF of peak overshoot (peak/mean - 1)\n");
    bench::print_cdf(report.peak_overshoot_cdf, "overshoot");
    std::printf("\n  Fig 7(b): CDF of fraction of runtime >10%% above mean\n");
    bench::print_cdf(report.time_above_10pct_cdf, "time fraction");
  }

  // Fig 6 worked example: one synthetic job's metric computation.
  std::printf("\n--- Fig 6 metric illustration ---\n");
  std::printf(
      "  a job averaging 100 W that peaks at 130 W has overshoot (130-100)/100 "
      "= 30%%;\n  if 8%% of its minutes sit above 110 W, its 'time above +10%%' "
      "metric is 8%%.\n");
  return 0;
}

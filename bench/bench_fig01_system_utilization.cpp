// Fig 1: system utilization of Emmy and Meggie over the campaign.

#include <cstdio>

#include "bench_common.hpp"
#include "core/system_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig01_system_utilization",
      "Fig 1: system (node) utilization over the campaign");
  if (!ctx) return 0;

  bench::print_banner("Fig 1: system utilization over the campaign",
                      "high on both systems: Emmy mean 87%, Meggie mean 80%");

  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_system_utilization(data, 24);
    bench::print_system_header(data.spec);
    bench::print_compare(
        "mean system utilization",
        data.spec.id == cluster::SystemId::kEmmy ? "87%" : "80%",
        util::format_percent(report.mean_system_utilization));
    std::printf("\n  day    utilization\n");
    for (const auto& pt : report.series)
      std::printf("  %5.1f  %5.1f%%  %s\n", pt.day, 100.0 * pt.system_utilization,
                  util::ascii_bar(pt.system_utilization, 1.0, 30).c_str());
  }
  return 0;
}

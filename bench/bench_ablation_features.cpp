// Ablation: which of the three pre-execution features carry the predictive
// signal? (Design-choice ablation from DESIGN.md; not a paper figure.)

#include <cstdio>

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_ablation_features",
      "ablation: BDT accuracy with feature subsets");
  if (!ctx) return 0;

  bench::print_banner(
      "Ablation: BDT prediction with feature subsets",
      "paper argument: user id alone is insufficient (Fig 12); adding nnodes "
      "and walltime makes jobs predictable (Fig 13-14)");

  ml::EvaluationConfig cfg;
  cfg.seed = ctx->config.seed;
  cfg.repeats = 5;
  constexpr core::FeatureSet kSets[] = {
      core::FeatureSet::kUserOnly,          core::FeatureSet::kNodesWalltime,
      core::FeatureSet::kUserNodes,         core::FeatureSet::kUserWalltime,
      core::FeatureSet::kUserNodesWalltime,
  };

  for (const auto& data : core::run_both_systems(ctx->config)) {
    bench::print_system_header(data.spec);
    std::printf("  %-22s %10s %10s %12s\n", "features", "<5% err", "<10% err",
                "mean error");
    for (const core::FeatureSet set : kSets) {
      const auto dataset = core::build_prediction_dataset(data, {}, set);
      const auto result = ml::evaluate_model(
          dataset, [] { return std::make_unique<ml::DecisionTreeRegressor>(); }, cfg);
      std::printf("  %-22s %9.1f%% %9.1f%% %11.1f%%\n", core::feature_set_name(set),
                  100.0 * result.fraction_below(0.05),
                  100.0 * result.fraction_below(0.10), 100.0 * result.mean_error());
    }

    // Model extension: does an ensemble improve on the paper's single tree?
    const auto full = core::build_prediction_dataset(data);
    const auto single = ml::evaluate_model(
        full, [] { return std::make_unique<ml::DecisionTreeRegressor>(); }, cfg);
    const auto forest = ml::evaluate_model(
        full, [] { return std::make_unique<ml::RandomForestRegressor>(); }, cfg);
    std::printf("\n  model extension (all three features):\n");
    for (const auto* r : {&single, &forest})
      std::printf("  %-22s %9.1f%% %9.1f%% %11.1f%%\n", r->model.c_str(),
                  100.0 * r->fraction_below(0.05), 100.0 * r->fraction_below(0.10),
                  100.0 * r->mean_error());
  }
  return 0;
}

// Ablation: what EASY backfill buys over strict FCFS on these workloads.
// (Substrate design-choice ablation from DESIGN.md; not a paper figure. The
// high utilization in Fig 1 presumes production backfilling.)

#include <cstdio>

#include "bench_common.hpp"
#include "core/system_analysis.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_ablation_scheduler",
      "ablation: utilization under EASY backfill vs strict FCFS");
  if (!ctx) return 0;

  bench::print_banner(
      "Ablation: scheduler policy (EASY backfill vs strict FCFS)",
      "Fig 1's >80% utilization presumes production backfilling; FCFS stalls "
      "the machine behind wide jobs");

  for (const auto& spec : cluster::studied_systems()) {
    bench::print_system_header(spec);
    std::printf("  %-16s %12s %12s %14s %14s\n", "policy", "utilization",
                "power util", "mean wait", "backfilled");
    for (const auto policy :
         {sched::SchedulerPolicy::kFcfsBackfill, sched::SchedulerPolicy::kFcfsOnly}) {
      core::StudyConfig config = ctx->config;
      config.scheduler_policy = policy;
      const auto data = core::run_campaign(spec, config);
      const auto report = core::analyze_system_utilization(data, 0);
      std::printf("  %-16s %11.1f%% %11.1f%% %11.0f min %13.1f%%\n",
                  policy == sched::SchedulerPolicy::kFcfsBackfill ? "EASY backfill"
                                                                  : "strict FCFS",
                  100.0 * report.mean_system_utilization,
                  100.0 * report.mean_power_utilization,
                  data.scheduler.mean_wait_minutes(),
                  data.scheduler.started
                      ? 100.0 * static_cast<double>(data.scheduler.backfilled) /
                            static_cast<double>(data.scheduler.started)
                      : 0.0);
    }
  }
  return 0;
}

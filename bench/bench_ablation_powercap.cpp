// Ablation: static per-node power caps (the paper's Sec 6 recommendation).
// Re-simulates the campaign under RAPL-style node caps and reports how much
// fleet power is clipped versus how many samples get throttled.

#include <cstdio>

#include "bench_common.hpp"
#include "core/system_analysis.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_ablation_powercap",
      "ablation: campaign under static per-node RAPL caps");
  if (!ctx) return 0;

  bench::print_banner(
      "Ablation: static per-node power caps",
      "paper Sec 5-6: static caps above predicted job power regulate power "
      "with little throttling because temporal variance is limited");

  for (const auto& spec : cluster::studied_systems()) {
    bench::print_system_header(spec);
    std::printf("  %-14s %12s %14s %16s\n", "node cap", "power util",
                "peak util", "throttled samples");
    for (const double cap_fraction : {0.0, 0.95, 0.90, 0.85, 0.80, 0.70}) {
      core::StudyConfig config = ctx->config;
      config.node_power_cap_w =
          cap_fraction > 0.0 ? cap_fraction * spec.node_tdp_watts : 0.0;
      const auto data = core::run_campaign(spec, config);
      const auto report = core::analyze_system_utilization(data, 0);

      std::uint64_t samples = 0;
      for (const auto& r : data.records)
        samples += static_cast<std::uint64_t>(r.nnodes) * r.runtime_min();
      const double throttled =
          samples ? static_cast<double>(data.throttled_samples) /
                        static_cast<double>(samples)
                  : 0.0;
      if (cap_fraction > 0.0) {
        std::printf("  %5.0f%% of TDP %11.1f%% %13.1f%% %15.2f%%\n",
                    100.0 * cap_fraction, 100.0 * report.mean_power_utilization,
                    100.0 * report.peak_power_utilization, 100.0 * throttled);
      } else {
        std::printf("  %-14s %11.1f%% %13.1f%% %15.2f%%\n", "uncapped",
                    100.0 * report.mean_power_utilization,
                    100.0 * report.peak_power_utilization, 100.0 * throttled);
      }
    }
  }
  return 0;
}

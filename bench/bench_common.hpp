#pragma once
// Shared scaffolding for the experiment benches (one binary per paper
// table/figure). Every bench accepts:
//   --days N    campaign length (default 12 simulated days)
//   --seed S    root seed (default 42)
//   --full      paper-scale campaign (151 days, Oct-Feb)
//   --quiet     suppress progress logging
//   --threads N worker threads (0 = all cores, 1 = serial; default:
//               HPCPOWER_THREADS, else all cores)
// and prints its figure's measured series next to the paper's reference
// values, so the terminal output is a directly comparable "figure".

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace hpcpower::bench {

struct BenchContext {
  core::StudyConfig config;
  bool full_scale = false;
};

/// Parses common bench options. Returns nullopt if --help was printed.
/// Extra per-bench options can be registered via the callback hooks.
[[nodiscard]] std::optional<BenchContext> parse_common_args(
    int argc, const char* const* argv, const std::string& name,
    const std::string& description);

/// Prints the bench banner: experiment id, what the paper reports.
void print_banner(const std::string& experiment, const std::string& paper_reference);

/// Prints a labelled section header for one system.
void print_system_header(const cluster::SystemSpec& spec);

/// Prints an ECDF as a fixed set of (x, F(x)) rows with ASCII bars.
void print_cdf(const stats::Ecdf& cdf, const std::string& x_label,
               const char* x_format = "%8.3f", std::size_t points = 12);

/// Prints a histogram as (bin center, density) rows with ASCII bars.
void print_histogram(const stats::Histogram& hist, const std::string& x_label,
                     const char* x_format = "%8.1f");

/// Prints a "paper vs measured" comparison row.
void print_compare(const std::string& metric, const std::string& paper,
                   const std::string& measured);

}  // namespace hpcpower::bench

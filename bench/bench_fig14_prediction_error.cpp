// Fig 14: absolute prediction error of BDT, KNN, and FLDA.

#include <cstdio>

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "util/strings.hpp"

using namespace hpcpower;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_common_args(
      argc, argv, "bench_fig14_prediction_error",
      "Fig 14: per-node power prediction error of BDT / KNN / FLDA");
  if (!ctx) return 0;

  bench::print_banner(
      "Fig 14: pre-execution power prediction (user, nnodes, walltime)",
      "BDT best: 90% of predictions <10% error, 75% <5%; KNN middle; FLDA "
      "worst, notably poor on Emmy (50% of predictions >10% error)");

  ml::EvaluationConfig cfg;
  cfg.seed = ctx->config.seed;
  for (const auto& data : core::run_both_systems(ctx->config)) {
    const auto report = core::analyze_prediction(data, {}, cfg,
                                                 /*include_baselines=*/true);
    bench::print_system_header(data.spec);
    std::printf("  jobs: %zu; 80/20 split x %zu repeats\n", report.jobs, cfg.repeats);
    std::printf("\n  %-10s %10s %10s %10s %12s\n", "model", "<5% err", "<10% err",
                "<20% err", "mean error");
    for (const auto& model : report.models)
      std::printf("  %-10s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n", model.model.c_str(),
                  100.0 * model.fraction_below(0.05),
                  100.0 * model.fraction_below(0.10),
                  100.0 * model.fraction_below(0.20), 100.0 * model.mean_error());

    std::printf("\n  CDF of absolute prediction error (BDT)\n");
    bench::print_cdf(report.model("BDT").error_cdf(), "abs error");
  }
  return 0;
}

#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hpcpower::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("ragged matrix initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matrix multiply shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("matrix-vector shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix add shape mismatch");
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix subtract shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - rhs.data_[i]));
  return worst;
}

bool Matrix::is_symmetric(double tol) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double dot(const Vector& a, const Vector& b) noexcept {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vector& v) noexcept { return std::sqrt(dot(v, v)); }

Vector subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Matrix outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r)
    for (std::size_t c = 0; c < b.size(); ++c) out(r, c) = a[r] * b[c];
  return out;
}

}  // namespace hpcpower::linalg

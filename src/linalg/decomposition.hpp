#pragma once
// Dense factorizations: Cholesky (SPD) and partially-pivoted LU.

#include <optional>

#include "linalg/matrix.hpp"

namespace hpcpower::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Returns nullopt if the matrix is not (numerically) SPD.
[[nodiscard]] std::optional<Matrix> cholesky(const Matrix& a);

/// Solves L y = b with L lower triangular (forward substitution).
[[nodiscard]] Vector forward_substitute(const Matrix& lower, const Vector& b);

/// Solves L^T x = y with L lower triangular (backward substitution).
[[nodiscard]] Vector backward_substitute_transposed(const Matrix& lower, const Vector& y);

/// Solves A x = b for SPD A via Cholesky. Returns nullopt if not SPD.
[[nodiscard]] std::optional<Vector> solve_spd(const Matrix& a, const Vector& b);

/// LU with partial pivoting.
struct LuDecomposition {
  Matrix lu;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> piv; // row permutation
  int sign = 1;                 // permutation parity

  [[nodiscard]] Vector solve(const Vector& b) const;
  [[nodiscard]] double determinant() const;
};

/// Returns nullopt if the matrix is singular to working precision.
[[nodiscard]] std::optional<LuDecomposition> lu_decompose(const Matrix& a);

/// General inverse via LU; nullopt if singular.
[[nodiscard]] std::optional<Matrix> inverse(const Matrix& a);

}  // namespace hpcpower::linalg

#pragma once
// Small dense row-major matrix/vector types.
//
// Sized for the study's needs: feature covariances and Fisher-LDA scatter
// matrices are at most a-handful x a-handful, so the implementation favours
// clarity and numerical care over blocking/vectorization.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hpcpower::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Row-major construction from nested initializer lists.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vector operator*(const Vector& v) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double scalar);
  Matrix& operator+=(const Matrix& rhs);

  /// Max absolute element difference; convenience for tests.
  [[nodiscard]] double max_abs_diff(const Matrix& rhs) const;

  /// True if symmetric within `tol`.
  [[nodiscard]] bool is_symmetric(double tol = 1e-10) const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] double dot(const Vector& a, const Vector& b) noexcept;
[[nodiscard]] double norm2(const Vector& v) noexcept;
/// a - b elementwise.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);
/// a + s*b elementwise.
[[nodiscard]] Vector axpy(const Vector& a, double s, const Vector& b);
/// Outer product a b^T.
[[nodiscard]] Matrix outer(const Vector& a, const Vector& b);

}  // namespace hpcpower::linalg

#pragma once
// Symmetric eigenproblems.
//
// The cyclic Jacobi method is exact enough and robust for the small scatter
// and covariance matrices in this library. The generalized problem
// A v = lambda B v (B SPD) is reduced to standard form via Cholesky, which is
// what Fisher LDA needs for S_b v = lambda S_w v.

#include <optional>

#include "linalg/matrix.hpp"

namespace hpcpower::linalg {

struct EigenDecomposition {
  Vector values;        // descending order
  Matrix vectors;       // column i pairs with values[i]
};

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Throws std::invalid_argument if `a` is not symmetric.
[[nodiscard]] EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64);

/// Generalized symmetric-definite eigenproblem A v = lambda B v with B SPD.
/// Eigenvectors are returned in the original (non-whitened) basis and are
/// B-orthonormal. Returns nullopt if B is not SPD.
[[nodiscard]] std::optional<EigenDecomposition> eigen_generalized(const Matrix& a,
                                                                  const Matrix& b,
                                                                  int max_sweeps = 64);

}  // namespace hpcpower::linalg

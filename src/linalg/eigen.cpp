#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/decomposition.hpp"

namespace hpcpower::linalg {

EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps) {
  if (!a.is_symmetric(1e-8)) throw std::invalid_argument("eigen_symmetric: not symmetric");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) off += d(r, c) * d(r, c);
    if (off < 1e-24) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue, permuting vector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = d(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

std::optional<EigenDecomposition> eigen_generalized(const Matrix& a, const Matrix& b,
                                                    int max_sweeps) {
  const auto l = cholesky(b);
  if (!l) return std::nullopt;
  const std::size_t n = a.rows();

  // C = L^-1 A L^-T, built column by column via triangular solves.
  Matrix c(n, n);
  for (std::size_t col = 0; col < n; ++col) {
    Vector acol(n);
    for (std::size_t r = 0; r < n; ++r) acol[r] = a(r, col);
    const Vector y = forward_substitute(*l, acol);
    for (std::size_t r = 0; r < n; ++r) c(r, col) = y[r];
  }
  // Now apply L^-1 from the right: C := C L^-T, i.e. solve row systems.
  for (std::size_t row = 0; row < n; ++row) {
    Vector crow(n);
    for (std::size_t k = 0; k < n; ++k) crow[k] = c(row, k);
    const Vector y = forward_substitute(*l, crow);
    for (std::size_t k = 0; k < n; ++k) c(row, k) = y[k];
  }
  // Symmetrize against round-off before Jacobi.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = r + 1; k < n; ++k) {
      const double avg = 0.5 * (c(r, k) + c(k, r));
      c(r, k) = avg;
      c(k, r) = avg;
    }

  EigenDecomposition inner = eigen_symmetric(c, max_sweeps);

  // Back-transform eigenvectors: v = L^-T w (column-wise).
  EigenDecomposition out;
  out.values = std::move(inner.values);
  out.vectors = Matrix(n, n);
  for (std::size_t col = 0; col < n; ++col) {
    Vector w(n);
    for (std::size_t r = 0; r < n; ++r) w[r] = inner.vectors(r, col);
    const Vector v = backward_substitute_transposed(*l, w);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, col) = v[r];
  }
  return out;
}

}  // namespace hpcpower::linalg

#include "linalg/decomposition.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hpcpower::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

Vector forward_substitute(const Matrix& lower, const Vector& b) {
  const std::size_t n = lower.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower(i, k) * y[k];
    y[i] = sum / lower(i, i);
  }
  return y;
}

Vector backward_substitute_transposed(const Matrix& lower, const Vector& y) {
  const std::size_t n = lower.rows();
  assert(y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * x[k];
    x[ii] = sum / lower(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_spd(const Matrix& a, const Vector& b) {
  const auto l = cholesky(a);
  if (!l) return std::nullopt;
  return backward_substitute_transposed(*l, forward_substitute(*l, b));
}

std::optional<LuDecomposition> lu_decompose(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("lu: not square");
  const std::size_t n = a.rows();
  LuDecomposition d;
  d.lu = a;
  d.piv.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.piv[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(d.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(d.lu(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(d.lu(pivot, c), d.lu(col, c));
      std::swap(d.piv[pivot], d.piv[col]);
      d.sign = -d.sign;
    }
    const double inv = 1.0 / d.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      d.lu(r, col) *= inv;
      const double factor = d.lu(r, col);
      for (std::size_t c = col + 1; c < n; ++c) d.lu(r, c) -= factor * d.lu(col, c);
    }
  }
  return d;
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu.rows();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  // Forward: L has unit diagonal.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu(i, k) * x[k];
  // Backward with U.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu(ii, k) * x[k];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = sign;
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

std::optional<Matrix> inverse(const Matrix& a) {
  const auto d = lu_decompose(a);
  if (!d) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const Vector col = d->solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace hpcpower::linalg

#include "storage/hpcb.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obs/span.hpp"
#include "storage/crc32.hpp"
#include "storage/varint.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace hpcpower::storage {

namespace {

// ---- little-endian scalar coding -----------------------------------------

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// Bounds-checked forward reader over a byte buffer. Every read throws
/// std::invalid_argument on truncation, so corrupt input can never walk past
/// the end of the mapped data.
struct Cursor {
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  [[nodiscard]] bool has(std::size_t n) const noexcept {
    return pos <= size && n <= size - pos;
  }
  void need(std::size_t n, const char* what) const {
    if (!has(n))
      throw std::invalid_argument(util::format("hpcb: truncated %s", what));
  }
  [[nodiscard]] std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  [[nodiscard]] std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
                  << (8 * i));
    pos += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 8;
    return v;
  }
  [[nodiscard]] std::string_view bytes(std::size_t n, const char* what) {
    need(n, what);
    const std::string_view v(data + pos, n);
    pos += n;
    return v;
  }
};

[[nodiscard]] std::uint64_t load_u64_le(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(p[static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

// ---- header ---------------------------------------------------------------

struct Header {
  std::vector<ColumnSpec> schema;
  std::size_t end = 0;  ///< buffer offset of the first block
};

Header parse_header(std::string_view buf) {
  Cursor c{buf.data(), buf.size(), 0};
  const auto magic = c.bytes(kHpcbMagic.size(), "magic");
  if (std::memcmp(magic.data(), kHpcbMagic.data(), kHpcbMagic.size()) != 0)
    throw std::invalid_argument("hpcb: bad magic (not a .hpcb file)");
  const std::uint16_t version = c.u16("version");
  if (version == 0 || version > kHpcbVersion)
    throw std::invalid_argument(
        util::format("hpcb: unsupported version %u (reader supports <= %u)",
                     version, kHpcbVersion));
  const std::uint16_t columns = c.u16("column count");
  if (columns == 0) throw std::invalid_argument("hpcb: zero columns");
  (void)c.u32("rows per block");
  Header h;
  h.schema.reserve(columns);
  for (std::uint16_t i = 0; i < columns; ++i) {
    const auto type = c.u8("column type");
    if (type > static_cast<std::uint8_t>(ColumnType::kFloat64Xor))
      throw std::invalid_argument(
          util::format("hpcb: column %u has unknown type %u", i, type));
    const std::uint16_t name_len = c.u16("column name length");
    const auto name = c.bytes(name_len, "column name");
    if (name.empty())
      throw std::invalid_argument(util::format("hpcb: column %u has empty name", i));
    h.schema.push_back({std::string(name), static_cast<ColumnType>(type)});
  }
  h.end = c.pos;
  return h;
}

// ---- footer index ---------------------------------------------------------

struct BlockTask {
  std::size_t offset = 0;
  std::uint32_t rows = 0;  ///< from the footer index (or the scanned payload)
};

struct FooterIndex {
  std::vector<BlockTask> blocks;
  std::uint64_t total_rows = 0;
};

/// Validates and parses the footer; nullopt on any inconsistency (the caller
/// decides between throwing and rescanning).
std::optional<FooterIndex> parse_footer(std::string_view buf,
                                        std::size_t header_end) noexcept {
  // magic + len + minimal payload + crc + footer_offset + tail magic.
  constexpr std::size_t kTailFixed = 8 + kHpcbTailMagic.size();
  if (buf.size() < header_end + 4 + 4 + 12 + 4 + kTailFixed) return std::nullopt;
  if (std::memcmp(buf.data() + buf.size() - kHpcbTailMagic.size(),
                  kHpcbTailMagic.data(), kHpcbTailMagic.size()) != 0)
    return std::nullopt;
  const std::uint64_t footer_offset =
      load_u64_le(buf.data() + buf.size() - kTailFixed);
  if (footer_offset < header_end || footer_offset + 12 + kTailFixed > buf.size())
    return std::nullopt;
  try {
    Cursor c{buf.data(), buf.size(), static_cast<std::size_t>(footer_offset)};
    if (c.u32("footer magic") != kFooterMagic) return std::nullopt;
    const std::uint32_t payload_len = c.u32("footer length");
    const auto payload = c.bytes(payload_len, "footer payload");
    const std::uint32_t stored_crc = c.u32("footer crc");
    if (c.pos != buf.size() - kTailFixed) return std::nullopt;
    if (crc32(payload) != stored_crc) return std::nullopt;

    Cursor p{payload.data(), payload.size(), 0};
    FooterIndex index;
    index.total_rows = p.u64("footer row count");
    const std::uint32_t count = p.u32("footer block count");
    index.blocks.reserve(count);
    std::uint64_t rows_sum = 0;
    std::size_t prev_end = header_end;
    for (std::uint32_t i = 0; i < count; ++i) {
      BlockTask t;
      const std::uint64_t offset = p.u64("footer block offset");
      t.rows = p.u32("footer block rows");
      if (offset < prev_end || offset >= footer_offset) return std::nullopt;
      t.offset = static_cast<std::size_t>(offset);
      prev_end = t.offset + 1;
      rows_sum += t.rows;
      index.blocks.push_back(t);
    }
    if (p.pos != payload.size()) return std::nullopt;
    if (rows_sum != index.total_rows) return std::nullopt;
    return index;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Lenient recovery: walk the block stream from the header, resynchronizing
/// on the block magic, and keep every block whose CRC verifies. Used when
/// the footer is damaged or the file is truncated.
std::vector<BlockTask> scan_blocks(std::string_view buf, std::size_t header_end,
                                   std::size_t& corrupt_blocks) {
  std::vector<BlockTask> tasks;
  std::string magic_bytes;
  append_u32(magic_bytes, kBlockMagic);
  std::size_t pos = header_end;
  while (pos + 12 <= buf.size()) {
    const std::size_t hit = buf.find(magic_bytes, pos);
    if (hit == std::string_view::npos || hit + 12 > buf.size()) break;
    if (hit != pos) ++corrupt_blocks;  // garbage between blocks
    Cursor c{buf.data(), buf.size(), hit + 4};
    bool ok = false;
    try {
      const std::uint32_t payload_len = c.u32("block length");
      const auto payload = c.bytes(payload_len, "block payload");
      const std::uint32_t stored_crc = c.u32("block crc");
      if (crc32(payload) == stored_crc && payload.size() >= 4) {
        Cursor p{payload.data(), payload.size(), 0};
        tasks.push_back({hit, p.u32("block rows")});
        ok = true;
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      pos = c.pos;
    } else {
      ++corrupt_blocks;
      pos = hit + 1;  // resync on the next magic
    }
  }
  return tasks;
}

// ---- block decoding -------------------------------------------------------

struct DecodedBlock {
  bool ok = false;
  std::string error;
  std::uint32_t rows = 0;
  std::vector<Column> cols;  ///< projected columns, in file schema order
};

void decode_i64_delta(std::string_view enc, std::uint32_t rows,
                      std::vector<std::int64_t>& out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const auto varint = read_varint(enc.data(), enc.size(), pos);
    if (!varint)
      throw std::invalid_argument("hpcb: malformed varint in integer column");
    prev += static_cast<std::uint64_t>(zigzag_decode(*varint));
    out.push_back(static_cast<std::int64_t>(prev));
  }
  if (pos != enc.size())
    throw std::invalid_argument("hpcb: trailing bytes in integer column");
}

void decode_f64(std::string_view enc, std::uint32_t rows,
                std::vector<double>& out) {
  if (enc.size() != static_cast<std::size_t>(rows) * 8)
    throw std::invalid_argument("hpcb: double column length mismatch");
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r)
    out.push_back(std::bit_cast<double>(
        load_u64_le(enc.data() + static_cast<std::size_t>(r) * 8)));
}

void decode_f64_xor(std::string_view enc, std::uint32_t rows,
                    std::vector<double>& out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const auto varint = read_varint(enc.data(), enc.size(), pos);
    if (!varint)
      throw std::invalid_argument("hpcb: malformed varint in double column");
    prev ^= *varint;
    out.push_back(std::bit_cast<double>(prev));
  }
  if (pos != enc.size())
    throw std::invalid_argument("hpcb: trailing bytes in double column");
}

DecodedBlock decode_block(std::string_view buf, std::size_t offset,
                          std::size_t block_no,
                          const std::vector<ColumnSpec>& schema,
                          const std::vector<char>& keep,
                          std::size_t projected_count) {
  DecodedBlock out;
  try {
    Cursor c{buf.data(), buf.size(), offset};
    if (c.u32("block magic") != kBlockMagic)
      throw std::invalid_argument("hpcb: missing block magic");
    const std::uint32_t payload_len = c.u32("block length");
    const auto payload = c.bytes(payload_len, "block payload");
    const std::uint32_t stored_crc = c.u32("block crc");
    if (crc32(payload) != stored_crc)
      throw std::invalid_argument("hpcb: block checksum mismatch");

    Cursor p{payload.data(), payload.size(), 0};
    out.rows = p.u32("block row count");
    out.cols.resize(projected_count);
    std::size_t slot = 0;
    for (std::size_t i = 0; i < schema.size(); ++i) {
      const std::uint32_t enc_len = p.u32("column length");
      const auto enc = p.bytes(enc_len, "column data");
      if (!keep[i]) continue;
      switch (schema[i].type) {
        case ColumnType::kInt64Delta:
          decode_i64_delta(enc, out.rows, out.cols[slot].i64);
          break;
        case ColumnType::kFloat64:
          decode_f64(enc, out.rows, out.cols[slot].f64);
          break;
        case ColumnType::kFloat64Xor:
          decode_f64_xor(enc, out.rows, out.cols[slot].f64);
          break;
      }
      ++slot;
    }
    if (p.pos != payload.size())
      throw std::invalid_argument("hpcb: trailing bytes in block payload");
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = util::format("hpcb: block %zu at offset %zu: %s", block_no,
                             offset, e.what());
  }
  return out;
}

}  // namespace

// ---- Table ----------------------------------------------------------------

const char* column_type_name(ColumnType type) noexcept {
  switch (type) {
    case ColumnType::kInt64Delta: return "i64-delta";
    case ColumnType::kFloat64: return "f64";
    case ColumnType::kFloat64Xor: return "f64-xor";
  }
  return "?";
}

std::size_t Table::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < schema.size(); ++i)
    if (schema[i].name == name) return i;
  throw std::out_of_range("hpcb: no such column: " + std::string(name));
}

void Table::validate() const {
  if (schema.empty()) throw std::invalid_argument("hpcb: empty schema");
  if (schema.size() != columns.size())
    throw std::invalid_argument("hpcb: schema/column count mismatch");
  if (schema.size() > 0xFFFF)
    throw std::invalid_argument("hpcb: too many columns");
  std::unordered_set<std::string_view> names;
  for (const ColumnSpec& c : schema) {
    if (c.name.empty() || c.name.size() > 0xFFFF)
      throw std::invalid_argument("hpcb: invalid column name");
    if (!names.insert(c.name).second)
      throw std::invalid_argument("hpcb: duplicate column name: " + c.name);
  }
  const std::size_t n = rows();
  for (std::size_t i = 0; i < schema.size(); ++i)
    if (columns[i].size(schema[i].type) != n)
      throw std::invalid_argument("hpcb: ragged column: " + schema[i].name);
}

// ---- writer ---------------------------------------------------------------

void write_hpcb(std::ostream& out, const Table& table,
                std::size_t rows_per_block) {
  HPCPOWER_SPAN("storage.write");
  table.validate();
  if (rows_per_block == 0)
    throw std::invalid_argument("hpcb: rows_per_block must be positive");
  rows_per_block = std::min<std::size_t>(rows_per_block, 0xFFFFFFFFu);

  std::string buf;
  buf.append(reinterpret_cast<const char*>(kHpcbMagic.data()), kHpcbMagic.size());
  append_u16(buf, kHpcbVersion);
  append_u16(buf, static_cast<std::uint16_t>(table.schema.size()));
  append_u32(buf, static_cast<std::uint32_t>(rows_per_block));
  for (const ColumnSpec& c : table.schema) {
    buf.push_back(static_cast<char>(static_cast<std::uint8_t>(c.type)));
    append_u16(buf, static_cast<std::uint16_t>(c.name.size()));
    buf.append(c.name);
  }

  const std::size_t rows = table.rows();
  std::vector<BlockTask> index;
  std::string payload, enc;
  for (std::size_t begin = 0; begin < rows; begin += rows_per_block) {
    const std::size_t end = std::min(rows, begin + rows_per_block);
    payload.clear();
    append_u32(payload, static_cast<std::uint32_t>(end - begin));
    for (std::size_t i = 0; i < table.schema.size(); ++i) {
      enc.clear();
      switch (table.schema[i].type) {
        case ColumnType::kInt64Delta: {
          // Deltas restart at zero in every block so blocks stay independent.
          std::uint64_t prev = 0;
          for (std::size_t r = begin; r < end; ++r) {
            const auto v = static_cast<std::uint64_t>(table.columns[i].i64[r]);
            append_varint(enc, zigzag_encode(static_cast<std::int64_t>(v - prev)));
            prev = v;
          }
          break;
        }
        case ColumnType::kFloat64:
          for (std::size_t r = begin; r < end; ++r)
            append_u64(enc, std::bit_cast<std::uint64_t>(table.columns[i].f64[r]));
          break;
        case ColumnType::kFloat64Xor: {
          std::uint64_t prev = 0;
          for (std::size_t r = begin; r < end; ++r) {
            const auto bits = std::bit_cast<std::uint64_t>(table.columns[i].f64[r]);
            append_varint(enc, bits ^ prev);
            prev = bits;
          }
          break;
        }
      }
      append_u32(payload, static_cast<std::uint32_t>(enc.size()));
      payload.append(enc);
    }
    index.push_back({buf.size(), static_cast<std::uint32_t>(end - begin)});
    append_u32(buf, kBlockMagic);
    append_u32(buf, static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
    append_u32(buf, crc32(payload));
  }

  std::string footer;
  append_u64(footer, rows);
  append_u32(footer, static_cast<std::uint32_t>(index.size()));
  for (const BlockTask& t : index) {
    append_u64(footer, t.offset);
    append_u32(footer, t.rows);
  }
  const std::size_t footer_offset = buf.size();
  append_u32(buf, kFooterMagic);
  append_u32(buf, static_cast<std::uint32_t>(footer.size()));
  buf.append(footer);
  append_u32(buf, crc32(footer));
  append_u64(buf, footer_offset);
  buf.append(reinterpret_cast<const char*>(kHpcbTailMagic.data()),
             kHpcbTailMagic.size());

  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

// ---- reader ---------------------------------------------------------------

Table read_hpcb(std::istream& in, const ReadOptions& options, ReadStats* stats) {
  HPCPOWER_SPAN("storage.read");
  const std::string buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const Header header = parse_header(buf);

  // Column projection (empty = everything), preserving file schema order.
  std::vector<char> keep(header.schema.size(),
                         options.columns.empty() ? char{1} : char{0});
  for (const std::string& name : options.columns) {
    bool found = false;
    for (std::size_t i = 0; i < header.schema.size(); ++i)
      if (header.schema[i].name == name) {
        keep[i] = 1;
        found = true;
      }
    if (!found)
      throw std::invalid_argument("hpcb: no such column: " + name);
  }

  ReadStats local;
  ReadStats& st = stats != nullptr ? *stats : local;
  st = ReadStats{};

  std::vector<BlockTask> tasks;
  std::uint64_t footer_rows = 0;
  if (auto footer = parse_footer(buf, header.end)) {
    st.footer_valid = true;
    tasks = std::move(footer->blocks);
    footer_rows = footer->total_rows;
  } else if (!options.lenient) {
    throw std::invalid_argument(
        "hpcb: missing or corrupt footer (truncated file?)");
  } else {
    st.rescanned = true;
    util::counters().add("storage.footer_rescans");
    std::size_t corrupt = 0;
    tasks = scan_blocks(buf, header.end, corrupt);
    st.blocks_skipped += corrupt;
    if (corrupt > 0) util::counters().add("storage.blocks_skipped", corrupt);
    util::log_warn(util::format(
        "hpcb: footer damaged; block scan recovered %zu block(s), "
        "%zu corrupt region(s) skipped",
        tasks.size(), corrupt));
  }

  Table out;
  std::size_t projected = 0;
  for (std::size_t i = 0; i < header.schema.size(); ++i)
    if (keep[i] != 0) {
      out.schema.push_back(header.schema[i]);
      ++projected;
    }
  out.columns.resize(projected);

  std::vector<DecodedBlock> slots(tasks.size());
  {
    HPCPOWER_SPAN("storage.decode");
    const auto work = [&](std::size_t i) {
      slots[i] =
          decode_block(buf, tasks[i].offset, i, header.schema, keep, projected);
    };
    if (options.parallel) {
      util::parallel_for(tasks.size(), work);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) work(i);
    }
  }

  for (Column& c : out.columns) {
    c.i64.reserve(static_cast<std::size_t>(footer_rows));
    c.f64.reserve(static_cast<std::size_t>(footer_rows));
  }
  // Merge in block order: the output is byte-identical at any thread count.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    DecodedBlock& slot = slots[i];
    BlockInfo info{tasks[i].offset, slot.ok ? slot.rows : tasks[i].rows, slot.ok};
    if (!slot.ok) {
      if (!options.lenient) throw std::invalid_argument(slot.error);
      ++st.blocks_skipped;
      st.rows_skipped += tasks[i].rows;
      util::counters().add("storage.blocks_skipped");
      util::counters().add("storage.rows_skipped", tasks[i].rows);
      util::log_warn(slot.error + " (block skipped)");
    } else {
      if (!options.lenient && slot.rows != tasks[i].rows)
        throw std::invalid_argument(util::format(
            "hpcb: block %zu row count disagrees with the footer index", i));
      for (std::size_t c = 0; c < projected; ++c) {
        Column& dst = out.columns[c];
        Column& src = slot.cols[c];
        dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
        dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
      }
      st.rows_read += slot.rows;
    }
    st.blocks.push_back(info);
  }
  if (!options.lenient && st.footer_valid && st.rows_read != footer_rows)
    throw std::invalid_argument("hpcb: decoded rows disagree with the footer");
  return out;
}

std::vector<ColumnSpec> read_hpcb_schema(std::istream& in) {
  // The header is small and sits at the front; read it incrementally so the
  // caller does not pay for the data blocks.
  std::string head;
  char chunk[256];
  while (head.size() < (1u << 20) && in.read(chunk, sizeof chunk).gcount() > 0) {
    head.append(chunk, static_cast<std::size_t>(in.gcount()));
    try {
      return parse_header(head).schema;
    } catch (const std::invalid_argument& e) {
      if (!util::starts_with(e.what(), "hpcb: truncated")) throw;
      if (in.eof()) throw;
    }
  }
  throw std::invalid_argument("hpcb: truncated header");
}

bool sniff_hpcb(std::istream& in) {
  const auto pos = in.tellg();
  std::array<char, 8> head{};
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  const bool full = in.gcount() == static_cast<std::streamsize>(head.size());
  in.clear();
  in.seekg(pos);
  return full &&
         std::memcmp(head.data(), kHpcbMagic.data(), kHpcbMagic.size()) == 0;
}

// ---- file wrappers --------------------------------------------------------

void save_hpcb(const std::string& path, const Table& table,
               std::size_t rows_per_block) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_hpcb(out, table, rows_per_block);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Table load_hpcb(const std::string& path, const ReadOptions& options,
                ReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_hpcb(in, options, stats);
}

}  // namespace hpcpower::storage

#include "storage/hpcb.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obs/span.hpp"
#include "storage/crc32.hpp"
#include "storage/filebytes.hpp"
#include "storage/hpcb_internal.hpp"
#include "storage/varint.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace hpcpower::storage {

namespace detail {

// ---- header ---------------------------------------------------------------

Header parse_header(std::string_view buf) {
  Cursor c{buf.data(), buf.size(), 0};
  const auto magic = c.bytes(kHpcbMagic.size(), "magic");
  if (std::memcmp(magic.data(), kHpcbMagic.data(), kHpcbMagic.size()) != 0)
    throw std::invalid_argument("hpcb: bad magic (not a .hpcb file)");
  const std::uint16_t version = c.u16("version");
  if (version == 0 || version > kHpcbVersion)
    throw std::invalid_argument(
        util::format("hpcb: unsupported version %u (reader supports <= %u)",
                     version, kHpcbVersion));
  const std::uint16_t columns = c.u16("column count");
  if (columns == 0) throw std::invalid_argument("hpcb: zero columns");
  (void)c.u32("rows per block");
  Header h;
  h.version = version;
  h.schema.reserve(columns);
  for (std::uint16_t i = 0; i < columns; ++i) {
    const auto type = c.u8("column type");
    if (type > static_cast<std::uint8_t>(ColumnType::kFloat64Xor))
      throw std::invalid_argument(
          util::format("hpcb: column %u has unknown type %u", i, type));
    const std::uint16_t name_len = c.u16("column name length");
    const auto name = c.bytes(name_len, "column name");
    if (name.empty())
      throw std::invalid_argument(util::format("hpcb: column %u has empty name", i));
    h.schema.push_back({std::string(name), static_cast<ColumnType>(type)});
  }
  h.end = c.pos;
  return h;
}

// ---- footer index ---------------------------------------------------------

std::optional<FooterIndex> parse_footer(std::string_view buf,
                                        std::size_t header_end) noexcept {
  // magic + len + minimal payload + crc + footer_offset + tail magic.
  constexpr std::size_t kTailFixed = 8 + kHpcbTailMagic.size();
  if (buf.size() < header_end + 4 + 4 + 12 + 4 + kTailFixed) return std::nullopt;
  if (std::memcmp(buf.data() + buf.size() - kHpcbTailMagic.size(),
                  kHpcbTailMagic.data(), kHpcbTailMagic.size()) != 0)
    return std::nullopt;
  const std::uint64_t footer_offset =
      load_u64_le(buf.data() + buf.size() - kTailFixed);
  if (footer_offset < header_end || footer_offset + 12 + kTailFixed > buf.size())
    return std::nullopt;
  try {
    Cursor c{buf.data(), buf.size(), static_cast<std::size_t>(footer_offset)};
    if (c.u32("footer magic") != kFooterMagic) return std::nullopt;
    const std::uint32_t payload_len = c.u32("footer length");
    const auto payload = c.bytes(payload_len, "footer payload");
    const std::uint32_t stored_crc = c.u32("footer crc");
    if (c.pos != buf.size() - kTailFixed) return std::nullopt;
    if (crc32(payload) != stored_crc) return std::nullopt;

    Cursor p{payload.data(), payload.size(), 0};
    FooterIndex index;
    index.total_rows = p.u64("footer row count");
    const std::uint32_t count = p.u32("footer block count");
    index.blocks.reserve(count);
    std::uint64_t rows_sum = 0;
    std::size_t prev_end = header_end;
    for (std::uint32_t i = 0; i < count; ++i) {
      BlockTask t;
      const std::uint64_t offset = p.u64("footer block offset");
      t.rows = p.u32("footer block rows");
      if (offset < prev_end || offset >= footer_offset) return std::nullopt;
      t.offset = static_cast<std::size_t>(offset);
      prev_end = t.offset + 1;
      rows_sum += t.rows;
      index.blocks.push_back(t);
    }
    if (p.pos != payload.size()) {
      // Version-2 footers carry a trailing zone-map offset; version-1
      // payloads end exactly after the block list.
      index.zonemap_offset = p.u64("footer zone-map offset");
      if (p.pos != payload.size()) return std::nullopt;
      if (index.zonemap_offset != 0 &&
          (index.zonemap_offset < prev_end ||
           index.zonemap_offset >= footer_offset))
        return std::nullopt;
    }
    if (rows_sum != index.total_rows) return std::nullopt;
    return index;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<BlockTask> scan_blocks(std::string_view buf, std::size_t header_end,
                                   std::size_t& corrupt_blocks) {
  std::vector<BlockTask> tasks;
  std::string magic_bytes;
  append_u32(magic_bytes, kBlockMagic);
  std::size_t pos = header_end;
  while (pos + 12 <= buf.size()) {
    const std::size_t hit = buf.find(magic_bytes, pos);
    if (hit == std::string_view::npos || hit + 12 > buf.size()) break;
    if (hit != pos) ++corrupt_blocks;  // garbage between blocks
    Cursor c{buf.data(), buf.size(), hit + 4};
    bool ok = false;
    try {
      const std::uint32_t payload_len = c.u32("block length");
      const auto payload = c.bytes(payload_len, "block payload");
      const std::uint32_t stored_crc = c.u32("block crc");
      if (crc32(payload) == stored_crc && payload.size() >= 4) {
        Cursor p{payload.data(), payload.size(), 0};
        tasks.push_back({hit, p.u32("block rows")});
        ok = true;
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      pos = c.pos;
    } else {
      ++corrupt_blocks;
      pos = hit + 1;  // resync on the next magic
    }
  }
  return tasks;
}

// ---- zone maps ------------------------------------------------------------

std::optional<ZoneMaps> parse_zone_maps(
    std::string_view buf, std::uint64_t offset, std::size_t header_end,
    std::size_t block_count, const std::vector<ColumnSpec>& schema) noexcept {
  if (offset < header_end || offset >= buf.size()) return std::nullopt;
  try {
    Cursor c{buf.data(), buf.size(), static_cast<std::size_t>(offset)};
    if (c.u32("zone-map magic") != kZoneMapMagic) return std::nullopt;
    const std::uint32_t payload_len = c.u32("zone-map length");
    const auto payload = c.bytes(payload_len, "zone-map payload");
    const std::uint32_t stored_crc = c.u32("zone-map crc");
    if (crc32(payload) != stored_crc) return std::nullopt;

    Cursor p{payload.data(), payload.size(), 0};
    const std::uint32_t blocks = p.u32("zone-map block count");
    const std::uint16_t columns = p.u16("zone-map column count");
    if (blocks != block_count || columns != schema.size()) return std::nullopt;

    ZoneMaps zones;
    zones.column_count = columns;
    zones.entries.resize(static_cast<std::size_t>(blocks) * columns);
    for (ZoneEntry& z : zones.entries) {
      z.null_count = p.u32("zone null count");
      z.has_range = p.u8("zone range flag") != 0;
      const std::uint64_t min_bits = p.u64("zone min");
      const std::uint64_t max_bits = p.u64("zone max");
      z.min_i = static_cast<std::int64_t>(min_bits);
      z.max_i = static_cast<std::int64_t>(max_bits);
      z.min_d = std::bit_cast<double>(min_bits);
      z.max_d = std::bit_cast<double>(max_bits);
    }
    if (p.pos != payload.size()) return std::nullopt;
    // Reject ranges that could not have been produced by the writer: a NaN
    // bound or an inverted range would poison every pruning decision.
    for (std::size_t b = 0; b < blocks; ++b)
      for (std::size_t i = 0; i < columns; ++i) {
        const ZoneEntry& z = zones.at(b, i);
        if (!z.has_range) continue;
        if (is_float_column(schema[i].type)) {
          if (std::isnan(z.min_d) || std::isnan(z.max_d) || z.min_d > z.max_d)
            return std::nullopt;
        } else {
          if (z.min_i > z.max_i || z.null_count != 0) return std::nullopt;
        }
      }
    return zones;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// ---- block decoding -------------------------------------------------------

namespace {

void decode_i64_delta(std::string_view enc, std::uint32_t rows,
                      std::vector<std::int64_t>& out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const auto varint = read_varint(enc.data(), enc.size(), pos);
    if (!varint)
      throw std::invalid_argument("hpcb: malformed varint in integer column");
    prev += static_cast<std::uint64_t>(zigzag_decode(*varint));
    out.push_back(static_cast<std::int64_t>(prev));
  }
  if (pos != enc.size())
    throw std::invalid_argument("hpcb: trailing bytes in integer column");
}

void decode_f64(std::string_view enc, std::uint32_t rows,
                std::vector<double>& out) {
  if (enc.size() != static_cast<std::size_t>(rows) * 8)
    throw std::invalid_argument("hpcb: double column length mismatch");
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r)
    out.push_back(std::bit_cast<double>(
        load_u64_le(enc.data() + static_cast<std::size_t>(r) * 8)));
}

void decode_f64_xor(std::string_view enc, std::uint32_t rows,
                    std::vector<double>& out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  out.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const auto varint = read_varint(enc.data(), enc.size(), pos);
    if (!varint)
      throw std::invalid_argument("hpcb: malformed varint in double column");
    prev ^= *varint;
    out.push_back(std::bit_cast<double>(prev));
  }
  if (pos != enc.size())
    throw std::invalid_argument("hpcb: trailing bytes in double column");
}

}  // namespace

DecodedBlock decode_block(std::string_view buf, std::size_t offset,
                          std::size_t block_no,
                          const std::vector<ColumnSpec>& schema,
                          const std::vector<char>& keep,
                          std::size_t projected_count) {
  DecodedBlock out;
  try {
    Cursor c{buf.data(), buf.size(), offset};
    if (c.u32("block magic") != kBlockMagic)
      throw std::invalid_argument("hpcb: missing block magic");
    const std::uint32_t payload_len = c.u32("block length");
    const auto payload = c.bytes(payload_len, "block payload");
    const std::uint32_t stored_crc = c.u32("block crc");
    if (crc32(payload) != stored_crc)
      throw std::invalid_argument("hpcb: block checksum mismatch");

    Cursor p{payload.data(), payload.size(), 0};
    out.rows = p.u32("block row count");
    out.cols.resize(projected_count);
    std::size_t slot = 0;
    for (std::size_t i = 0; i < schema.size(); ++i) {
      const std::uint32_t enc_len = p.u32("column length");
      const auto enc = p.bytes(enc_len, "column data");
      if (!keep[i]) continue;
      switch (schema[i].type) {
        case ColumnType::kInt64Delta:
          decode_i64_delta(enc, out.rows, out.cols[slot].i64);
          break;
        case ColumnType::kFloat64:
          decode_f64(enc, out.rows, out.cols[slot].f64);
          break;
        case ColumnType::kFloat64Xor:
          decode_f64_xor(enc, out.rows, out.cols[slot].f64);
          break;
      }
      ++slot;
    }
    if (p.pos != payload.size())
      throw std::invalid_argument("hpcb: trailing bytes in block payload");
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = util::format("hpcb: block %zu at offset %zu: %s", block_no,
                             offset, e.what());
  }
  return out;
}

bool verify_block(std::string_view buf, std::size_t offset,
                  std::uint32_t* rows_out) noexcept {
  try {
    Cursor c{buf.data(), buf.size(), offset};
    if (c.u32("block magic") != kBlockMagic) return false;
    const std::uint32_t payload_len = c.u32("block length");
    const auto payload = c.bytes(payload_len, "block payload");
    const std::uint32_t stored_crc = c.u32("block crc");
    if (crc32(payload) != stored_crc || payload.size() < 4) return false;
    if (rows_out != nullptr) {
      Cursor p{payload.data(), payload.size(), 0};
      *rows_out = p.u32("block rows");
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<char> make_keep(const std::vector<ColumnSpec>& schema,
                            const std::vector<std::string>& columns) {
  std::vector<char> keep(schema.size(), columns.empty() ? char{1} : char{0});
  for (const std::string& name : columns) {
    bool found = false;
    for (std::size_t i = 0; i < schema.size(); ++i)
      if (schema[i].name == name) {
        keep[i] = 1;
        found = true;
      }
    if (!found)
      throw std::invalid_argument("hpcb: no such column: " + name);
  }
  return keep;
}

}  // namespace detail

namespace {

using detail::append_u16;
using detail::append_u32;
using detail::append_u64;
using detail::BlockTask;

/// Zone-map entry for one column over rows [begin, end) of `table`.
ZoneEntry compute_zone(const Table& table, std::size_t col, std::size_t begin,
                       std::size_t end) {
  ZoneEntry z;
  const ColumnSpec& spec = table.schema[col];
  if (is_float_column(spec.type)) {
    const std::vector<double>& v = table.columns[col].f64;
    for (std::size_t r = begin; r < end; ++r) {
      const double x = v[r];
      if (std::isnan(x)) {
        ++z.null_count;
        continue;
      }
      if (!z.has_range) {
        z.has_range = true;
        z.min_d = z.max_d = x;
      } else {
        if (x < z.min_d) z.min_d = x;
        if (x > z.max_d) z.max_d = x;
      }
    }
  } else {
    const std::vector<std::int64_t>& v = table.columns[col].i64;
    for (std::size_t r = begin; r < end; ++r) {
      const std::int64_t x = v[r];
      if (!z.has_range) {
        z.has_range = true;
        z.min_i = z.max_i = x;
      } else {
        if (x < z.min_i) z.min_i = x;
        if (x > z.max_i) z.max_i = x;
      }
    }
  }
  return z;
}

}  // namespace

// ---- Table ----------------------------------------------------------------

const char* column_type_name(ColumnType type) noexcept {
  switch (type) {
    case ColumnType::kInt64Delta: return "i64-delta";
    case ColumnType::kFloat64: return "f64";
    case ColumnType::kFloat64Xor: return "f64-xor";
  }
  return "?";
}

std::size_t Table::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < schema.size(); ++i)
    if (schema[i].name == name) return i;
  throw std::out_of_range("hpcb: no such column: " + std::string(name));
}

void Table::validate() const {
  if (schema.empty()) throw std::invalid_argument("hpcb: empty schema");
  if (schema.size() != columns.size())
    throw std::invalid_argument("hpcb: schema/column count mismatch");
  if (schema.size() > 0xFFFF)
    throw std::invalid_argument("hpcb: too many columns");
  std::unordered_set<std::string_view> names;
  for (const ColumnSpec& c : schema) {
    if (c.name.empty() || c.name.size() > 0xFFFF)
      throw std::invalid_argument("hpcb: invalid column name");
    if (!names.insert(c.name).second)
      throw std::invalid_argument("hpcb: duplicate column name: " + c.name);
  }
  const std::size_t n = rows();
  for (std::size_t i = 0; i < schema.size(); ++i)
    if (columns[i].size(schema[i].type) != n)
      throw std::invalid_argument("hpcb: ragged column: " + schema[i].name);
}

// ---- incremental writer ---------------------------------------------------

struct HpcbChunkWriter::Impl {
  std::ostream& out;
  std::vector<ColumnSpec> schema;
  std::size_t rows_per_block;
  std::uint16_t version;
  std::uint64_t offset = 0;      ///< bytes emitted so far
  std::uint64_t total_rows = 0;  ///< rows flushed into blocks
  std::vector<BlockTask> index;
  std::vector<ZoneEntry> zones;  ///< block-major, schema.size() per block
  Table pending;                 ///< buffered tail shorter than a block
  bool finished = false;

  Impl(std::ostream& o, std::vector<ColumnSpec> s, std::size_t rpb,
       std::uint16_t ver)
      : out(o), schema(std::move(s)), rows_per_block(rpb), version(ver) {
    if (rows_per_block == 0)
      throw std::invalid_argument("hpcb: rows_per_block must be positive");
    if (version == 0 || version > kHpcbVersion)
      throw std::invalid_argument(
          util::format("hpcb: cannot write version %u", version));
    rows_per_block = std::min<std::size_t>(rows_per_block, 0xFFFFFFFFu);
    pending.schema = schema;
    pending.columns.resize(schema.size());
    pending.validate();  // rejects empty/duplicate/oversized schemas

    std::string buf;
    buf.append(reinterpret_cast<const char*>(kHpcbMagic.data()),
               kHpcbMagic.size());
    append_u16(buf, version);
    append_u16(buf, static_cast<std::uint16_t>(schema.size()));
    append_u32(buf, static_cast<std::uint32_t>(rows_per_block));
    for (const ColumnSpec& c : schema) {
      buf.push_back(static_cast<char>(static_cast<std::uint8_t>(c.type)));
      append_u16(buf, static_cast<std::uint16_t>(c.name.size()));
      buf.append(c.name);
    }
    emit(buf);
  }

  void emit(std::string_view bytes) {
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    offset += bytes.size();
  }

  /// Encodes and writes rows [begin, end) of `table` as one block, recording
  /// its index entry and (for v2) its zone-map entries.
  void flush_block(const Table& table, std::size_t begin, std::size_t end) {
    std::string payload, enc;
    append_u32(payload, static_cast<std::uint32_t>(end - begin));
    for (std::size_t i = 0; i < schema.size(); ++i) {
      enc.clear();
      switch (schema[i].type) {
        case ColumnType::kInt64Delta: {
          // Deltas restart at zero in every block so blocks stay independent.
          std::uint64_t prev = 0;
          for (std::size_t r = begin; r < end; ++r) {
            const auto v = static_cast<std::uint64_t>(table.columns[i].i64[r]);
            append_varint(enc, zigzag_encode(static_cast<std::int64_t>(v - prev)));
            prev = v;
          }
          break;
        }
        case ColumnType::kFloat64:
          for (std::size_t r = begin; r < end; ++r)
            append_u64(enc, std::bit_cast<std::uint64_t>(table.columns[i].f64[r]));
          break;
        case ColumnType::kFloat64Xor: {
          std::uint64_t prev = 0;
          for (std::size_t r = begin; r < end; ++r) {
            const auto bits = std::bit_cast<std::uint64_t>(table.columns[i].f64[r]);
            append_varint(enc, bits ^ prev);
            prev = bits;
          }
          break;
        }
      }
      append_u32(payload, static_cast<std::uint32_t>(enc.size()));
      payload.append(enc);
    }
    index.push_back(
        {static_cast<std::size_t>(offset), static_cast<std::uint32_t>(end - begin)});
    if (version >= 2)
      for (std::size_t i = 0; i < schema.size(); ++i)
        zones.push_back(compute_zone(table, i, begin, end));
    std::string buf;
    append_u32(buf, kBlockMagic);
    append_u32(buf, static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
    append_u32(buf, crc32(payload));
    emit(buf);
    total_rows += end - begin;
  }

  void append(const Table& table) {
    if (finished) throw std::logic_error("hpcb: append after finish");
    table.validate();
    if (table.schema != schema)
      throw std::invalid_argument("hpcb: chunk schema mismatch");
    const std::size_t rows = table.rows();
    std::size_t pos = 0;
    // Top up the buffered tail first so block boundaries are independent of
    // how rows were split across append() calls.
    if (pending.rows() > 0) {
      const std::size_t take =
          std::min(rows, rows_per_block - pending.rows());
      for (std::size_t i = 0; i < schema.size(); ++i) {
        Column& dst = pending.columns[i];
        const Column& src = table.columns[i];
        if (is_float_column(schema[i].type))
          dst.f64.insert(dst.f64.end(), src.f64.begin() + static_cast<std::ptrdiff_t>(pos),
                         src.f64.begin() + static_cast<std::ptrdiff_t>(pos + take));
        else
          dst.i64.insert(dst.i64.end(), src.i64.begin() + static_cast<std::ptrdiff_t>(pos),
                         src.i64.begin() + static_cast<std::ptrdiff_t>(pos + take));
      }
      pos += take;
      if (pending.rows() == rows_per_block) {
        flush_block(pending, 0, rows_per_block);
        for (Column& c : pending.columns) {
          c.i64.clear();
          c.f64.clear();
        }
      }
    }
    // Full blocks encode straight from the caller's table — no copy.
    while (rows - pos >= rows_per_block) {
      flush_block(table, pos, pos + rows_per_block);
      pos += rows_per_block;
    }
    if (pos < rows) {
      for (std::size_t i = 0; i < schema.size(); ++i) {
        Column& dst = pending.columns[i];
        const Column& src = table.columns[i];
        if (is_float_column(schema[i].type))
          dst.f64.insert(dst.f64.end(), src.f64.begin() + static_cast<std::ptrdiff_t>(pos),
                         src.f64.end());
        else
          dst.i64.insert(dst.i64.end(), src.i64.begin() + static_cast<std::ptrdiff_t>(pos),
                         src.i64.end());
      }
    }
  }

  void finish() {
    if (finished) return;
    finished = true;
    if (pending.rows() > 0) {
      flush_block(pending, 0, pending.rows());
      for (Column& c : pending.columns) {
        c.i64.clear();
        c.f64.clear();
      }
    }
    std::uint64_t zonemap_offset = 0;
    std::string buf;
    if (version >= 2) {
      zonemap_offset = offset;
      std::string zpayload;
      append_u32(zpayload, static_cast<std::uint32_t>(index.size()));
      append_u16(zpayload, static_cast<std::uint16_t>(schema.size()));
      for (const ZoneEntry& z : zones) {
        append_u32(zpayload, z.null_count);
        zpayload.push_back(static_cast<char>(z.has_range ? 1 : 0));
        std::uint64_t min_bits = 0, max_bits = 0;
        if (z.has_range) {
          // Integer ranges store the i64 bits, float ranges the f64 bits;
          // the reader picks by column type.
          const std::size_t col = (&z - zones.data()) % schema.size();
          if (is_float_column(schema[col].type)) {
            min_bits = std::bit_cast<std::uint64_t>(z.min_d);
            max_bits = std::bit_cast<std::uint64_t>(z.max_d);
          } else {
            min_bits = static_cast<std::uint64_t>(z.min_i);
            max_bits = static_cast<std::uint64_t>(z.max_i);
          }
        }
        append_u64(zpayload, min_bits);
        append_u64(zpayload, max_bits);
      }
      append_u32(buf, kZoneMapMagic);
      append_u32(buf, static_cast<std::uint32_t>(zpayload.size()));
      buf.append(zpayload);
      append_u32(buf, crc32(zpayload));
    }

    std::string footer;
    append_u64(footer, total_rows);
    append_u32(footer, static_cast<std::uint32_t>(index.size()));
    for (const BlockTask& t : index) {
      append_u64(footer, t.offset);
      append_u32(footer, t.rows);
    }
    if (version >= 2) append_u64(footer, zonemap_offset);
    const std::uint64_t footer_offset = offset + buf.size();
    append_u32(buf, kFooterMagic);
    append_u32(buf, static_cast<std::uint32_t>(footer.size()));
    buf.append(footer);
    append_u32(buf, crc32(footer));
    append_u64(buf, footer_offset);
    buf.append(reinterpret_cast<const char*>(kHpcbTailMagic.data()),
               kHpcbTailMagic.size());
    emit(buf);
  }
};

HpcbChunkWriter::HpcbChunkWriter(std::ostream& out,
                                 std::vector<ColumnSpec> schema,
                                 std::size_t rows_per_block,
                                 std::uint16_t version)
    : impl_(std::make_unique<Impl>(out, std::move(schema), rows_per_block,
                                   version)) {}

HpcbChunkWriter::~HpcbChunkWriter() {
  // Best-effort safety net; callers should finish() and check the stream.
  try {
    impl_->finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void HpcbChunkWriter::append(const Table& table) { impl_->append(table); }

void HpcbChunkWriter::finish() { impl_->finish(); }

std::uint64_t HpcbChunkWriter::rows_written() const noexcept {
  return impl_->total_rows + impl_->pending.rows();
}

// ---- writer ---------------------------------------------------------------

void write_hpcb(std::ostream& out, const Table& table,
                std::size_t rows_per_block, std::uint16_t version) {
  HPCPOWER_SPAN("storage.write");
  table.validate();
  HpcbChunkWriter writer(out, table.schema, rows_per_block, version);
  writer.append(table);
  writer.finish();
}

// ---- reader ---------------------------------------------------------------

Table read_hpcb_buffer(std::string_view buf, const ReadOptions& options,
                       ReadStats* stats) {
  HPCPOWER_SPAN("storage.read");
  const detail::Header header = detail::parse_header(buf);
  const std::vector<char> keep = detail::make_keep(header.schema, options.columns);

  ReadStats local;
  ReadStats& st = stats != nullptr ? *stats : local;
  st = ReadStats{};

  std::vector<BlockTask> tasks;
  std::uint64_t footer_rows = 0;
  if (auto footer = detail::parse_footer(buf, header.end)) {
    st.footer_valid = true;
    tasks = std::move(footer->blocks);
    footer_rows = footer->total_rows;
    if (footer->zonemap_offset != 0)
      st.zone_maps = detail::parse_zone_maps(buf, footer->zonemap_offset,
                                             header.end, tasks.size(),
                                             header.schema)
                         .has_value();
  } else if (!options.lenient) {
    throw std::invalid_argument(
        "hpcb: missing or corrupt footer (truncated file?)");
  } else {
    st.rescanned = true;
    util::counters().add("storage.footer_rescans");
    std::size_t corrupt = 0;
    tasks = detail::scan_blocks(buf, header.end, corrupt);
    st.blocks_skipped += corrupt;
    if (corrupt > 0) util::counters().add("storage.blocks_skipped", corrupt);
    util::log_warn(util::format(
        "hpcb: footer damaged; block scan recovered %zu block(s), "
        "%zu corrupt region(s) skipped",
        tasks.size(), corrupt));
  }

  Table out;
  std::size_t projected = 0;
  for (std::size_t i = 0; i < header.schema.size(); ++i)
    if (keep[i] != 0) {
      out.schema.push_back(header.schema[i]);
      ++projected;
    }
  out.columns.resize(projected);

  std::vector<detail::DecodedBlock> slots(tasks.size());
  {
    HPCPOWER_SPAN("storage.decode");
    const auto work = [&](std::size_t i) {
      slots[i] = detail::decode_block(buf, tasks[i].offset, i, header.schema,
                                      keep, projected);
    };
    if (options.parallel) {
      util::parallel_for(tasks.size(), work);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) work(i);
    }
  }

  for (Column& c : out.columns) {
    c.i64.reserve(static_cast<std::size_t>(footer_rows));
    c.f64.reserve(static_cast<std::size_t>(footer_rows));
  }
  // Merge in block order: the output is byte-identical at any thread count.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    detail::DecodedBlock& slot = slots[i];
    BlockInfo info{tasks[i].offset, slot.ok ? slot.rows : tasks[i].rows, slot.ok};
    if (!slot.ok) {
      if (!options.lenient) throw std::invalid_argument(slot.error);
      ++st.blocks_skipped;
      st.rows_skipped += tasks[i].rows;
      util::counters().add("storage.blocks_skipped");
      util::counters().add("storage.rows_skipped", tasks[i].rows);
      util::log_warn(slot.error + " (block skipped)");
    } else {
      if (!options.lenient && slot.rows != tasks[i].rows)
        throw std::invalid_argument(util::format(
            "hpcb: block %zu row count disagrees with the footer index", i));
      for (std::size_t c = 0; c < projected; ++c) {
        Column& dst = out.columns[c];
        Column& src = slot.cols[c];
        dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
        dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
      }
      st.rows_read += slot.rows;
    }
    st.blocks.push_back(info);
  }
  if (!options.lenient && st.footer_valid && st.rows_read != footer_rows)
    throw std::invalid_argument("hpcb: decoded rows disagree with the footer");
  return out;
}

Table read_hpcb(std::istream& in, const ReadOptions& options, ReadStats* stats) {
  const std::string buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return read_hpcb_buffer(buf, options, stats);
}

std::vector<ColumnSpec> read_hpcb_schema(std::istream& in) {
  // The header is small and sits at the front; read it incrementally so the
  // caller does not pay for the data blocks.
  std::string head;
  char chunk[256];
  while (head.size() < (1u << 20) && in.read(chunk, sizeof chunk).gcount() > 0) {
    head.append(chunk, static_cast<std::size_t>(in.gcount()));
    try {
      return detail::parse_header(head).schema;
    } catch (const std::invalid_argument& e) {
      if (!util::starts_with(e.what(), "hpcb: truncated")) throw;
      if (in.eof()) throw;
    }
  }
  throw std::invalid_argument("hpcb: truncated header");
}

bool sniff_hpcb(std::istream& in) {
  const auto pos = in.tellg();
  std::array<char, 8> head{};
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  const bool full = in.gcount() == static_cast<std::streamsize>(head.size());
  in.clear();
  in.seekg(pos);
  return full &&
         std::memcmp(head.data(), kHpcbMagic.data(), kHpcbMagic.size()) == 0;
}

// ---- file wrappers --------------------------------------------------------

void save_hpcb(const std::string& path, const Table& table,
               std::size_t rows_per_block) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_hpcb(out, table, rows_per_block);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Table load_hpcb(const std::string& path, const ReadOptions& options,
                ReadStats* stats) {
  const FileBytes file = FileBytes::open(path, options.mmap);
  return read_hpcb_buffer(file.view(), options, stats);
}

}  // namespace hpcpower::storage

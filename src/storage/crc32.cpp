#include "storage/crc32.hpp"

#include <array>

namespace hpcpower::storage {

namespace {
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
constexpr auto kTable = make_table();
}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data)
    c = kTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace hpcpower::storage

#pragma once
// Shared .hpcb parsing internals. hpcb.cpp (full reads) and scan.cpp
// (zone-map-pruned queries) both drive the same header/footer/block
// machinery; this header is private to src/storage and tests — the public
// surface is hpcb.hpp and scan.hpp.

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "storage/hpcb.hpp"
#include "util/strings.hpp"

namespace hpcpower::storage::detail {

// ---- little-endian scalar coding -------------------------------------------

inline void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

[[nodiscard]] inline std::uint64_t load_u64_le(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(p[static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

/// Bounds-checked forward reader over a byte buffer. Every read throws
/// std::invalid_argument on truncation, so corrupt input can never walk past
/// the end of the mapped data.
struct Cursor {
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  [[nodiscard]] bool has(std::size_t n) const noexcept {
    return pos <= size && n <= size - pos;
  }
  void need(std::size_t n, const char* what) const {
    if (!has(n))
      throw std::invalid_argument(util::format("hpcb: truncated %s", what));
  }
  [[nodiscard]] std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  [[nodiscard]] std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
                  << (8 * i));
    pos += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 8;
    return v;
  }
  [[nodiscard]] std::string_view bytes(std::size_t n, const char* what) {
    need(n, what);
    const std::string_view v(data + pos, n);
    pos += n;
    return v;
  }
};

// ---- header / footer / zone maps -------------------------------------------

struct Header {
  std::vector<ColumnSpec> schema;
  std::uint16_t version = 0;
  std::size_t end = 0;  ///< buffer offset of the first block
};

[[nodiscard]] Header parse_header(std::string_view buf);

struct BlockTask {
  std::size_t offset = 0;
  std::uint32_t rows = 0;  ///< from the footer index (or the scanned payload)
};

struct FooterIndex {
  std::vector<BlockTask> blocks;
  std::uint64_t total_rows = 0;
  std::uint64_t zonemap_offset = 0;  ///< 0 = no zone-map section (v1)
};

/// Validates and parses the footer; nullopt on any inconsistency (the caller
/// decides between throwing and rescanning).
[[nodiscard]] std::optional<FooterIndex> parse_footer(
    std::string_view buf, std::size_t header_end) noexcept;

/// Lenient recovery: walk the block stream from the header, resynchronizing
/// on the block magic, and keep every block whose CRC verifies. Used when
/// the footer is damaged or the file is truncated.
[[nodiscard]] std::vector<BlockTask> scan_blocks(std::string_view buf,
                                                 std::size_t header_end,
                                                 std::size_t& corrupt_blocks);

/// Parses and CRC-verifies the zone-map section at `offset`; nullopt on any
/// inconsistency (wrong magic, bad CRC, shape mismatch with the footer's
/// block count or the header's schema). Callers treat nullopt as "no zone
/// maps": pruning degrades to a full scan, never to a wrong answer.
[[nodiscard]] std::optional<ZoneMaps> parse_zone_maps(
    std::string_view buf, std::uint64_t offset, std::size_t header_end,
    std::size_t block_count, const std::vector<ColumnSpec>& schema) noexcept;

// ---- block decoding --------------------------------------------------------

struct DecodedBlock {
  bool ok = false;
  std::string error;
  std::uint32_t rows = 0;
  std::vector<Column> cols;  ///< projected columns, in file schema order
};

[[nodiscard]] DecodedBlock decode_block(std::string_view buf, std::size_t offset,
                                        std::size_t block_no,
                                        const std::vector<ColumnSpec>& schema,
                                        const std::vector<char>& keep,
                                        std::size_t projected_count);

/// CRC-checks a block's framing without decoding any column. Used by the
/// scan fast path when zone maps prove every row matches but no column needs
/// decoding (e.g. a pure count) — the per-block integrity guarantee holds
/// even when the payload is never touched.
[[nodiscard]] bool verify_block(std::string_view buf, std::size_t offset,
                                std::uint32_t* rows_out) noexcept;

/// Column projection mask over the file schema (empty names = keep all).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] std::vector<char> make_keep(
    const std::vector<ColumnSpec>& schema,
    const std::vector<std::string>& columns);

}  // namespace hpcpower::storage::detail

#pragma once
// The .hpcb query engine: predicate pushdown over per-block zone maps.
//
// A ScanQuery is a conjunction of Predicates plus a projection and an
// optional aggregate. Before any block is decoded its zone maps (v2 files)
// are tested against every predicate:
//
//   prune       no row can match — the block is never read or CRC'd; both
//               the pruned and the unpruned path exclude its rows, so
//               results stay identical even if the block is corrupt.
//   full match  every row matches — only projected/aggregated columns are
//               decoded; a pure count verifies the block CRC without
//               decoding anything.
//   partial     the block is decoded (projection ∪ predicate columns) and
//               rows are filtered individually.
//
// Semantics:
//  - NaN is null: a NaN row never matches any predicate, including "!=",
//    and never contributes to min/max/sum/mean (it does count toward a
//    plain row count when it matches all predicates — i.e. when there are
//    none on that row's NaN columns).
//  - Comparisons against integer columns are exact when the predicate value
//    is an integer; fractional values compare via double (monotonic
//    conversion, so pruning stays conservative).
//  - Matched rows keep file order; aggregates are merged from per-block
//    partials in block order — results are bit-identical at any thread
//    count and identical with pruning on or off (DESIGN.md §5 contract).
//  - Lenient scans skip corrupt blocks with counted warnings exactly like
//    read_hpcb; a damaged footer triggers the block-magic rescan, which
//    carries no zone maps, so pruning degrades to a full scan. A corrupt
//    zone-map section is ignored ("storage.zonemap_ignored") in lenient
//    mode and throws in strict mode.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/hpcb.hpp"

namespace hpcpower::storage {

enum class PredicateOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] const char* predicate_op_name(PredicateOp op) noexcept;

/// One comparison against a column. Built via the factories (which keep the
/// exact-integer flag coherent) or parsed from "col<=42" text.
struct Predicate {
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  double value = 0.0;          ///< comparison value as a double
  bool integral = false;       ///< value is an exact integer
  std::int64_t value_i = 0;    ///< exact value when `integral`
};

[[nodiscard]] Predicate make_predicate(std::string_view column, PredicateOp op,
                                       std::int64_t value);
[[nodiscard]] Predicate make_predicate(std::string_view column, PredicateOp op,
                                       double value);

/// Parses "column OP value" with OP one of <= < >= > == != = (longest
/// match first); nullopt on malformed text. Whitespace around the pieces
/// is tolerated.
[[nodiscard]] std::optional<Predicate> parse_predicate(std::string_view text);

enum class AggregateOp : std::uint8_t { kNone, kCount, kMin, kMax, kSum, kMean };

/// Parses "count" | "min:col" | "max:col" | "sum:col" | "mean:col"; nullopt
/// on malformed text. Returns the op plus the column (empty for count).
[[nodiscard]] std::optional<std::pair<AggregateOp, std::string>> parse_aggregate(
    std::string_view text);

struct ScanQuery {
  /// Output projection (empty = all columns, file schema order preserved).
  std::vector<std::string> select;
  /// Conjunction: a row matches when every predicate holds.
  std::vector<Predicate> where;
  /// kNone materializes matching rows; anything else returns only the
  /// aggregate (kCount needs no column, the rest aggregate `agg_column`).
  AggregateOp agg = AggregateOp::kNone;
  std::string agg_column;
};

struct ScanOptions {
  bool lenient = false;       ///< see ReadOptions::lenient
  bool parallel = true;       ///< block-parallel, merged in block order
  bool use_zone_maps = true;  ///< false = decode every block (baseline)
  bool mmap = true;           ///< scan_hpcb_file maps the file when it can
};

struct ScanStats {
  std::size_t blocks_total = 0;
  std::size_t blocks_pruned = 0;      ///< zone maps proved no match; not read
  std::size_t blocks_full_match = 0;  ///< zone maps proved every row matches
  std::size_t blocks_decoded = 0;
  std::size_t blocks_skipped = 0;     ///< corrupt, skipped (lenient)
  std::uint64_t rows_scanned = 0;     ///< rows in decoded + counted blocks
  std::uint64_t rows_matched = 0;
  std::uint64_t rows_skipped = 0;     ///< rows lost to skipped blocks
  bool zone_maps = false;             ///< zone-map section parsed and used
  bool footer_valid = false;
  bool rescanned = false;
  bool mapped = false;                ///< file scan read via mmap
};

struct ScanResult {
  Table table;                 ///< matched rows (empty when agg != kNone)
  std::uint64_t count = 0;     ///< matched row count (all queries)
  double value = 0.0;          ///< aggregate value (min/max/sum/mean)
  std::uint64_t value_count = 0;  ///< non-NaN values behind `value`
  ScanStats stats;
};

/// Runs `query` over an in-memory .hpcb image. Throws std::invalid_argument
/// on malformed files (strict), unknown columns, or aggregate misuse.
[[nodiscard]] ScanResult scan_hpcb_buffer(std::string_view buf,
                                          const ScanQuery& query,
                                          const ScanOptions& options = {});

/// File wrapper: mmap when available (ScanOptions::mmap), buffered fallback.
[[nodiscard]] ScanResult scan_hpcb_file(const std::string& path,
                                        const ScanQuery& query,
                                        const ScanOptions& options = {});

/// Zone maps of a .hpcb file for tooling (trace_explorer --inspect):
/// nullopt when the file predates v2, the section is corrupt, or the footer
/// is unreadable.
[[nodiscard]] std::optional<ZoneMaps> load_hpcb_zone_maps(
    const std::string& path);

}  // namespace hpcpower::storage

#pragma once
// FileBytes — a read-only byte view of a file, mmap'd when the platform
// supports it so .hpcb block decoding reads straight from the page cache
// (zero copy), with a buffered-ifstream fallback everywhere else. The view
// is stable for the object's lifetime; readers treat it exactly like an
// in-memory buffer, so the mapped and buffered paths share every byte of
// parsing code (and the bit-identical parallel-decode guarantee).

#include <cstddef>
#include <string>
#include <string_view>

namespace hpcpower::storage {

class FileBytes {
 public:
  /// Opens `path` and maps or reads it. `prefer_mmap` false forces the
  /// buffered path (used by benchmarks to compare the two). Throws
  /// std::runtime_error when the file cannot be opened or read.
  [[nodiscard]] static FileBytes open(const std::string& path,
                                      bool prefer_mmap = true);

  FileBytes() = default;
  ~FileBytes();
  FileBytes(FileBytes&& other) noexcept;
  FileBytes& operator=(FileBytes&& other) noexcept;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  [[nodiscard]] std::string_view view() const noexcept {
    return map_ != nullptr
               ? std::string_view(static_cast<const char*>(map_), map_size_)
               : std::string_view(buffer_);
  }
  /// True when the bytes come from an mmap'd region (not a heap copy).
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }

  /// True when this build/platform can mmap at all.
  [[nodiscard]] static bool mmap_supported() noexcept;

 private:
  std::string buffer_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
};

}  // namespace hpcpower::storage

#pragma once
// Zigzag + LEB128 variable-length integer coding, the integer-column
// primitive of the .hpcb container (hpcb.hpp).
//
// Integer columns are stored as deltas between consecutive values; zigzag
// folds the sign into the low bit so small negative deltas stay small, and
// LEB128 then spends one byte per 7 significant bits. Sorted id/timestamp
// columns collapse to ~1 byte per value. Decoding is bounds-checked and
// rejects over-long (> 10 byte) encodings so corrupt blocks fail loudly
// instead of reading past the buffer.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace hpcpower::storage {

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends the LEB128 encoding of `v` (1..10 bytes) to `out`.
inline void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Cursor-style decoder: reads one varint from data[pos...], advancing `pos`.
/// Returns nullopt on truncation or an over-long encoding.
[[nodiscard]] inline std::optional<std::uint64_t> read_varint(
    const char* data, std::size_t size, std::size_t& pos) noexcept {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= size) return std::nullopt;
    const auto byte = static_cast<std::uint8_t>(data[pos++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only carry the top bit of a 64-bit value.
      if (shift == 63 && byte > 1) return std::nullopt;
      return value;
    }
  }
  return std::nullopt;  // 10 continuation bytes: over-long encoding
}

}  // namespace hpcpower::storage

#include "storage/filebytes.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HPCPOWER_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HPCPOWER_HAS_MMAP 0
#endif

namespace hpcpower::storage {

namespace {

void read_buffered(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read failed: " + path);
}

}  // namespace

FileBytes FileBytes::open(const std::string& path, bool prefer_mmap) {
  FileBytes fb;
#if HPCPOWER_HAS_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(*-vararg)
    if (fd < 0) throw std::runtime_error("cannot open for reading: " + path);
    struct stat st{};
    const bool ok = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    // Empty files map to a zero-length view without calling mmap (which
    // rejects length 0); irregular files fall back to buffered reads.
    if (ok && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        fb.map_ = map;
        fb.map_size_ = static_cast<std::size_t>(st.st_size);
      }
    }
    ::close(fd);
    if (fb.map_ != nullptr || (ok && st.st_size == 0)) return fb;
  }
#endif
  read_buffered(path, fb.buffer_);
  return fb;
}

FileBytes::~FileBytes() {
#if HPCPOWER_HAS_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
}

FileBytes::FileBytes(FileBytes&& other) noexcept
    : buffer_(std::move(other.buffer_)),
      map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)) {}

FileBytes& FileBytes::operator=(FileBytes&& other) noexcept {
  if (this != &other) {
#if HPCPOWER_HAS_MMAP
    if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
    buffer_ = std::move(other.buffer_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
  }
  return *this;
}

bool FileBytes::mmap_supported() noexcept { return HPCPOWER_HAS_MMAP != 0; }

}  // namespace hpcpower::storage

#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the per-block and footer
// checksum of the .hpcb container. Table-driven, one table shared process
// wide; matches zlib's crc32() so files can be cross-checked externally.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpcpower::storage {

/// CRC of `data` continuing from `seed` (0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace hpcpower::storage

#include "storage/scan.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "storage/filebytes.hpp"
#include "storage/hpcb_internal.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace hpcpower::storage {

namespace {

// ---- predicate parsing -----------------------------------------------------

struct OpToken {
  std::string_view text;
  PredicateOp op;
};

// Two-character operators first so "<=" never parses as "<" + "=...".
constexpr OpToken kOpTokens[] = {
    {"<=", PredicateOp::kLe}, {">=", PredicateOp::kGe},
    {"==", PredicateOp::kEq}, {"!=", PredicateOp::kNe},
    {"<", PredicateOp::kLt},  {">", PredicateOp::kGt},
    {"=", PredicateOp::kEq},
};

std::optional<std::pair<double, std::int64_t>> parse_integer(
    std::string_view text) {
  std::string s(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s.empty())
    return std::nullopt;
  return std::make_pair(static_cast<double>(v), static_cast<std::int64_t>(v));
}

std::optional<double> parse_double(std::string_view text) {
  std::string s(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) return std::nullopt;
  return v;
}

// ---- comparison / zone-map evaluation --------------------------------------

template <typename T>
bool compare(T lhs, PredicateOp op, T rhs) {
  switch (op) {
    case PredicateOp::kLt: return lhs < rhs;
    case PredicateOp::kLe: return lhs <= rhs;
    case PredicateOp::kGt: return lhs > rhs;
    case PredicateOp::kGe: return lhs >= rhs;
    case PredicateOp::kEq: return lhs == rhs;
    case PredicateOp::kNe: return lhs != rhs;
  }
  return false;
}

enum class ZoneMatch : std::uint8_t {
  kNone,  ///< no row in the block can match
  kAll,   ///< every row in the block matches
  kSome,  ///< undecided: decode and filter
};

/// Conservative range test: [lo, hi] covers every non-null value in the
/// block. Returns kAll only when the whole range satisfies the predicate
/// (the caller still requires null_count == 0 for that).
template <typename T>
ZoneMatch zone_range_match(T lo, T hi, PredicateOp op, T v) {
  switch (op) {
    case PredicateOp::kLt:
      if (lo >= v) return ZoneMatch::kNone;
      if (hi < v) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case PredicateOp::kLe:
      if (lo > v) return ZoneMatch::kNone;
      if (hi <= v) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case PredicateOp::kGt:
      if (hi <= v) return ZoneMatch::kNone;
      if (lo > v) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case PredicateOp::kGe:
      if (hi < v) return ZoneMatch::kNone;
      if (lo >= v) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case PredicateOp::kEq:
      if (v < lo || v > hi) return ZoneMatch::kNone;
      if (lo == hi && lo == v) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case PredicateOp::kNe:
      if (lo == hi && lo == v) return ZoneMatch::kNone;
      if (v < lo || v > hi) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

/// A predicate resolved against the file schema plus its slot in the decode
/// projection.
struct BoundPredicate {
  std::size_t col = 0;   ///< file schema index
  std::size_t slot = 0;  ///< column slot within the decode projection
  bool is_float = false;
  PredicateOp op = PredicateOp::kEq;
  double value = 0.0;
  bool integral = false;
  std::int64_t value_i = 0;
};

ZoneMatch zone_match(const BoundPredicate& p, const ZoneEntry& z) {
  // No range means no non-null rows (all-NaN or empty block): nothing can
  // match any predicate — NaN is null.
  if (!z.has_range) return ZoneMatch::kNone;
  ZoneMatch m;
  if (p.is_float) {
    m = zone_range_match(z.min_d, z.max_d, p.op, p.value);
  } else if (p.integral) {
    m = zone_range_match(z.min_i, z.max_i, p.op, p.value_i);
  } else {
    // int64 -> double is monotonic, so the cast range stays conservative.
    m = zone_range_match(static_cast<double>(z.min_i),
                         static_cast<double>(z.max_i), p.op, p.value);
  }
  // NaN rows never match, so a block with nulls can never be "all match".
  if (m == ZoneMatch::kAll && z.null_count != 0) return ZoneMatch::kSome;
  return m;
}

bool row_matches(const BoundPredicate& p, const std::vector<Column>& cols,
                 std::size_t r) {
  if (p.is_float) {
    const double x = cols[p.slot].f64[r];
    if (std::isnan(x)) return false;
    return compare(x, p.op, p.value);
  }
  const std::int64_t x = cols[p.slot].i64[r];
  if (p.integral) return compare(x, p.op, p.value_i);
  return compare(static_cast<double>(x), p.op, p.value);
}

// ---- per-block outcomes ----------------------------------------------------

/// Deterministic per-block aggregate partial (merged in block order).
struct AggPartial {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t values = 0;  ///< non-NaN contributors
};

struct BlockOutcome {
  enum class Kind : std::uint8_t { kPruned, kCounted, kDecoded, kCorrupt };
  Kind kind = Kind::kPruned;
  std::string error;
  std::uint32_t rows = 0;       ///< rows seen (decoded or CRC-counted)
  std::uint64_t matched = 0;
  std::vector<Column> out;      ///< projected matching rows (row queries)
  AggPartial agg;
};

void accumulate(AggPartial& a, double x) {
  if (std::isnan(x)) return;
  if (a.values == 0) {
    a.min = a.max = x;
  } else {
    if (x < a.min) a.min = x;
    if (x > a.max) a.max = x;
  }
  a.sum += x;
  ++a.values;
}

}  // namespace

// ---- public helpers --------------------------------------------------------

const char* predicate_op_name(PredicateOp op) noexcept {
  switch (op) {
    case PredicateOp::kLt: return "<";
    case PredicateOp::kLe: return "<=";
    case PredicateOp::kGt: return ">";
    case PredicateOp::kGe: return ">=";
    case PredicateOp::kEq: return "==";
    case PredicateOp::kNe: return "!=";
  }
  return "?";
}

Predicate make_predicate(std::string_view column, PredicateOp op,
                         std::int64_t value) {
  Predicate p;
  p.column = std::string(column);
  p.op = op;
  p.value = static_cast<double>(value);
  p.integral = true;
  p.value_i = value;
  return p;
}

Predicate make_predicate(std::string_view column, PredicateOp op, double value) {
  Predicate p;
  p.column = std::string(column);
  p.op = op;
  p.value = value;
  return p;
}

std::optional<Predicate> parse_predicate(std::string_view text) {
  for (const OpToken& tok : kOpTokens) {
    const std::size_t at = text.find(tok.text);
    if (at == std::string_view::npos) continue;
    const std::string_view column = util::trim(text.substr(0, at));
    const std::string_view value = util::trim(text.substr(at + tok.text.size()));
    if (column.empty() || value.empty()) return std::nullopt;
    if (const auto iv = parse_integer(value)) {
      Predicate p = make_predicate(column, tok.op, iv->second);
      return p;
    }
    if (const auto dv = parse_double(value)) {
      Predicate p = make_predicate(column, tok.op, *dv);
      return p;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::pair<AggregateOp, std::string>> parse_aggregate(
    std::string_view text) {
  const std::string_view t = util::trim(text);
  if (t == "count") return std::make_pair(AggregateOp::kCount, std::string());
  const std::size_t colon = t.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string op = util::to_lower(util::trim(t.substr(0, colon)));
  const std::string_view column = util::trim(t.substr(colon + 1));
  if (column.empty()) return std::nullopt;
  AggregateOp agg;
  if (op == "min") {
    agg = AggregateOp::kMin;
  } else if (op == "max") {
    agg = AggregateOp::kMax;
  } else if (op == "sum") {
    agg = AggregateOp::kSum;
  } else if (op == "mean") {
    agg = AggregateOp::kMean;
  } else {
    return std::nullopt;
  }
  return std::make_pair(agg, std::string(column));
}

// ---- scan ------------------------------------------------------------------

ScanResult scan_hpcb_buffer(std::string_view buf, const ScanQuery& query,
                            const ScanOptions& options) {
  HPCPOWER_SPAN("storage.scan");
  const detail::Header header = detail::parse_header(buf);
  const std::vector<ColumnSpec>& schema = header.schema;

  const bool aggregate = query.agg != AggregateOp::kNone;
  const bool agg_has_column =
      aggregate && query.agg != AggregateOp::kCount;
  if (agg_has_column && query.agg_column.empty())
    throw std::invalid_argument("hpcb: aggregate requires a column");

  // Resolve the output projection (row queries) against the file schema.
  const std::vector<char> out_keep =
      aggregate ? std::vector<char>(schema.size(), 0)
                : detail::make_keep(schema, query.select);

  const auto col_index = [&schema](const std::string& name) {
    for (std::size_t i = 0; i < schema.size(); ++i)
      if (schema[i].name == name) return i;
    throw std::invalid_argument("hpcb: no such column: " + name);
  };

  // Decode projection for partially-matching blocks: output columns plus
  // every predicate column plus the aggregated column.
  std::vector<char> part_keep = out_keep;
  std::size_t agg_col = 0;
  if (agg_has_column) {
    agg_col = col_index(query.agg_column);
    part_keep[agg_col] = 1;
  }
  std::vector<BoundPredicate> preds;
  preds.reserve(query.where.size());
  for (const Predicate& p : query.where) {
    BoundPredicate b;
    b.col = col_index(p.column);
    b.is_float = is_float_column(schema[b.col].type);
    b.op = p.op;
    b.value = p.value;
    b.integral = p.integral && !b.is_float;
    b.value_i = p.value_i;
    part_keep[b.col] = 1;
    preds.push_back(b);
  }

  // Full-match projection: only the columns the result needs.
  std::vector<char> full_keep(schema.size(), 0);
  if (aggregate) {
    if (agg_has_column) full_keep[agg_col] = 1;
  } else {
    full_keep = out_keep;
  }

  const auto rank_of = [](const std::vector<char>& keep, std::size_t col) {
    std::size_t rank = 0;
    for (std::size_t i = 0; i < col; ++i) rank += keep[i] != 0 ? 1 : 0;
    return rank;
  };
  for (BoundPredicate& b : preds) b.slot = rank_of(part_keep, b.col);
  const std::size_t part_agg_slot = agg_has_column ? rank_of(part_keep, agg_col) : 0;
  const std::size_t part_count =
      static_cast<std::size_t>(std::count(part_keep.begin(), part_keep.end(), 1));
  const std::size_t full_count =
      static_cast<std::size_t>(std::count(full_keep.begin(), full_keep.end(), 1));
  // Row queries: slots of the output columns within the partial projection.
  std::vector<std::size_t> out_slots;
  Table out_table;
  for (std::size_t i = 0; i < schema.size(); ++i)
    if (out_keep[i] != 0) {
      out_table.schema.push_back(schema[i]);
      out_slots.push_back(rank_of(part_keep, i));
    }
  out_table.columns.resize(out_table.schema.size());

  ScanResult result;
  ScanStats& st = result.stats;

  // Index: footer, or (lenient) block-magic rescan.
  std::vector<detail::BlockTask> tasks;
  std::uint64_t zonemap_offset = 0;
  if (auto footer = detail::parse_footer(buf, header.end)) {
    st.footer_valid = true;
    tasks = std::move(footer->blocks);
    zonemap_offset = footer->zonemap_offset;
  } else if (!options.lenient) {
    throw std::invalid_argument(
        "hpcb: missing or corrupt footer (truncated file?)");
  } else {
    st.rescanned = true;
    util::counters().add("storage.footer_rescans");
    std::size_t corrupt = 0;
    tasks = detail::scan_blocks(buf, header.end, corrupt);
    st.blocks_skipped += corrupt;
    if (corrupt > 0) util::counters().add("storage.blocks_skipped", corrupt);
    util::log_warn(util::format(
        "hpcb: footer damaged; block scan recovered %zu block(s), "
        "%zu corrupt region(s) skipped",
        tasks.size(), corrupt));
  }
  st.blocks_total = tasks.size();

  // Zone maps: used only when the CRC-framed section verifies against the
  // trusted footer. A rescued index never prunes (zonemap_offset stays 0).
  std::optional<ZoneMaps> zones;
  if (options.use_zone_maps && zonemap_offset != 0) {
    zones = detail::parse_zone_maps(buf, zonemap_offset, header.end,
                                    tasks.size(), schema);
    if (!zones) {
      if (!options.lenient)
        throw std::invalid_argument("hpcb: corrupt zone-map section");
      util::counters().add("storage.zonemap_ignored");
      util::log_warn(
          "hpcb: corrupt zone-map section ignored; scanning every block");
    }
  }
  st.zone_maps = zones.has_value();

  // Classify each block from its zone maps before touching any block bytes.
  std::vector<ZoneMatch> klass(tasks.size(), ZoneMatch::kSome);
  if (zones)
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      ZoneMatch m = ZoneMatch::kAll;  // an empty conjunction matches all rows
      for (const BoundPredicate& p : preds) {
        const ZoneMatch pm = zone_match(p, zones->at(i, p.col));
        if (pm == ZoneMatch::kNone) {
          m = ZoneMatch::kNone;
          break;
        }
        if (pm == ZoneMatch::kSome) m = ZoneMatch::kSome;
      }
      klass[i] = m;
    }

  std::vector<BlockOutcome> outcomes(tasks.size());
  {
    HPCPOWER_SPAN("storage.scan_decode");
    const auto work = [&](std::size_t i) {
      BlockOutcome& o = outcomes[i];
      if (klass[i] == ZoneMatch::kNone) {
        o.kind = BlockOutcome::Kind::kPruned;
        return;
      }
      const bool full = klass[i] == ZoneMatch::kAll;
      const std::vector<char>& keep = full ? full_keep : part_keep;
      const std::size_t keep_count = full ? full_count : part_count;
      if (full && keep_count == 0) {
        // Pure count over a fully-matching block: CRC-verify the framing
        // without decoding a single column.
        std::uint32_t rows = 0;
        if (!detail::verify_block(buf, tasks[i].offset, &rows)) {
          o.kind = BlockOutcome::Kind::kCorrupt;
          o.error = util::format(
              "hpcb: block %zu at offset %zu: block checksum mismatch", i,
              tasks[i].offset);
          return;
        }
        o.kind = BlockOutcome::Kind::kCounted;
        o.rows = rows;
        o.matched = rows;
        return;
      }
      detail::DecodedBlock d =
          detail::decode_block(buf, tasks[i].offset, i, schema, keep, keep_count);
      if (!d.ok) {
        o.kind = BlockOutcome::Kind::kCorrupt;
        o.error = std::move(d.error);
        return;
      }
      o.kind = BlockOutcome::Kind::kDecoded;
      o.rows = d.rows;
      if (full) {
        o.matched = d.rows;
        if (aggregate) {
          if (agg_has_column) {
            const Column& c = d.cols[0];
            if (is_float_column(schema[agg_col].type)) {
              for (double x : c.f64) accumulate(o.agg, x);
            } else {
              for (std::int64_t x : c.i64)
                accumulate(o.agg, static_cast<double>(x));
            }
          }
        } else {
          o.out = std::move(d.cols);
        }
        return;
      }
      // Partial block: filter row by row.
      if (!aggregate) o.out.resize(out_slots.size());
      const bool agg_float =
          agg_has_column && is_float_column(schema[agg_col].type);
      for (std::uint32_t r = 0; r < d.rows; ++r) {
        bool match = true;
        for (const BoundPredicate& p : preds)
          if (!row_matches(p, d.cols, r)) {
            match = false;
            break;
          }
        if (!match) continue;
        ++o.matched;
        if (aggregate) {
          if (agg_has_column)
            accumulate(o.agg,
                       agg_float
                           ? d.cols[part_agg_slot].f64[r]
                           : static_cast<double>(d.cols[part_agg_slot].i64[r]));
        } else {
          for (std::size_t j = 0; j < out_slots.size(); ++j) {
            const Column& src = d.cols[out_slots[j]];
            if (is_float_column(out_table.schema[j].type))
              o.out[j].f64.push_back(src.f64[r]);
            else
              o.out[j].i64.push_back(src.i64[r]);
          }
        }
      }
    };
    if (options.parallel) {
      util::parallel_for(tasks.size(), work);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) work(i);
    }
  }

  // Merge in block order — deterministic at any thread count, and identical
  // with pruning on or off because pruned/unmatched blocks contribute
  // nothing on either path.
  AggPartial total;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    BlockOutcome& o = outcomes[i];
    switch (o.kind) {
      case BlockOutcome::Kind::kPruned:
        ++st.blocks_pruned;
        util::counters().add("storage.blocks_pruned");
        break;
      case BlockOutcome::Kind::kCorrupt:
        if (!options.lenient) throw std::invalid_argument(o.error);
        ++st.blocks_skipped;
        st.rows_skipped += tasks[i].rows;
        util::counters().add("storage.blocks_skipped");
        util::counters().add("storage.rows_skipped", tasks[i].rows);
        util::log_warn(o.error + " (block skipped)");
        break;
      case BlockOutcome::Kind::kCounted:
      case BlockOutcome::Kind::kDecoded: {
        if (!options.lenient && o.rows != tasks[i].rows)
          throw std::invalid_argument(util::format(
              "hpcb: block %zu row count disagrees with the footer index", i));
        if (klass[i] == ZoneMatch::kAll) ++st.blocks_full_match;
        if (o.kind == BlockOutcome::Kind::kDecoded) ++st.blocks_decoded;
        st.rows_scanned += o.rows;
        st.rows_matched += o.matched;
        result.count += o.matched;
        if (o.agg.values > 0) {
          if (total.values == 0) {
            total.min = o.agg.min;
            total.max = o.agg.max;
          } else {
            if (o.agg.min < total.min) total.min = o.agg.min;
            if (o.agg.max > total.max) total.max = o.agg.max;
          }
          total.sum += o.agg.sum;
          total.values += o.agg.values;
        }
        if (!aggregate && !o.out.empty())
          for (std::size_t j = 0; j < out_table.columns.size(); ++j) {
            Column& dst = out_table.columns[j];
            Column& src = o.out[j];
            dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
            dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
          }
        break;
      }
    }
  }

  switch (query.agg) {
    case AggregateOp::kNone:
      result.table = std::move(out_table);
      break;
    case AggregateOp::kCount:
      result.value = static_cast<double>(result.count);
      result.value_count = result.count;
      break;
    case AggregateOp::kMin:
      result.value = total.values > 0 ? total.min
                                      : std::numeric_limits<double>::quiet_NaN();
      result.value_count = total.values;
      break;
    case AggregateOp::kMax:
      result.value = total.values > 0 ? total.max
                                      : std::numeric_limits<double>::quiet_NaN();
      result.value_count = total.values;
      break;
    case AggregateOp::kSum:
      result.value = total.sum;
      result.value_count = total.values;
      break;
    case AggregateOp::kMean:
      result.value = total.values > 0
                         ? total.sum / static_cast<double>(total.values)
                         : std::numeric_limits<double>::quiet_NaN();
      result.value_count = total.values;
      break;
  }
  return result;
}

ScanResult scan_hpcb_file(const std::string& path, const ScanQuery& query,
                          const ScanOptions& options) {
  const FileBytes file = FileBytes::open(path, options.mmap);
  ScanResult result = scan_hpcb_buffer(file.view(), query, options);
  result.stats.mapped = file.mapped();
  return result;
}

std::optional<ZoneMaps> load_hpcb_zone_maps(const std::string& path) {
  try {
    const FileBytes file = FileBytes::open(path);
    const std::string_view buf = file.view();
    const detail::Header header = detail::parse_header(buf);
    const auto footer = detail::parse_footer(buf, header.end);
    if (!footer || footer->zonemap_offset == 0) return std::nullopt;
    return detail::parse_zone_maps(buf, footer->zonemap_offset, header.end,
                                   footer->blocks.size(), header.schema);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace hpcpower::storage

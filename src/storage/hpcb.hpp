#pragma once
// .hpcb — the hpcpower binary columnar container for telemetry tables.
//
// CSV round-trips months of per-minute RAPL samples through text parsing and
// loses double precision at %.10g; .hpcb stores the same tables column-wise
// in binary, bit-exact and several times smaller and faster to scan
// (DESIGN.md §7). The layout:
//
//   header   magic(8) version(u16) column_count(u16) rows_per_block(u32)
//            column_count x { type(u8) name_len(u16) name }
//   blocks   repeated { magic(u32) payload_len(u32) payload crc32(u32) }
//            payload = rows(u32), then per column: enc_len(u32) + bytes
//   zonemap  (v2+) magic(u32) payload_len(u32) payload crc32(u32)
//            payload = block_count(u32) column_count(u16), then per block
//            per column: { null_count(u32) has_range(u8) min(u64) max(u64) }
//   footer   magic(u32) payload_len(u32) payload crc32(u32)
//            payload = total_rows(u64) block_count(u32)
//                      block_count x { offset(u64) rows(u32) }
//                      (v2+) zonemap_offset(u64; 0 = absent)
//            footer_offset(u64) tail_magic(8)
//
// All fixed-width integers are little-endian. Integer columns are encoded
// per block as zigzag-varint deltas (the delta restarts at every block, so
// blocks decode independently); double columns are either raw IEEE-754 bits
// or varint-coded XORs with the previous value (neighbouring power samples
// share sign/exponent/top-mantissa bits, so the XOR drops the high bytes;
// repeated values collapse to one byte). Both float codecs round-trip
// bit-identically, including NaN payloads. Each block is
// covered by a CRC32; the footer index lets readers stream, project single
// columns, and decode blocks in parallel (merged in block order, so results
// are identical at any thread count — the DESIGN.md §5 contract). Lenient
// readers skip corrupt blocks with counted warnings ("storage.*" counters)
// and rebuild the index by scanning for block magics when the footer itself
// is damaged; the dropped rows then surface as gap slots in the existing
// telemetry cleaning/DataQualityReport machinery.
//
// Version 2 adds per-block zone maps (min/max/null-count per column, in a
// CRC-framed section before the footer) that feed the predicate-pushdown
// query engine in scan.hpp: blocks a predicate conjunction cannot match are
// never decoded. Version-1 files (no zone maps) read back unchanged —
// queries simply decode every block. A rescued index (lenient footer rescan)
// carries no zone maps either, so pruning silently degrades to a full scan
// rather than ever pruning from untrusted metadata.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::storage {

/// File magic, PNG-style: a non-ASCII lead byte so text tools do not
/// mistake the file for CSV, and CRLF to catch line-ending mangling.
inline constexpr std::array<unsigned char, 8> kHpcbMagic = {
    0x89, 'H', 'P', 'C', 'B', 0x0D, 0x0A, 0x1A};
inline constexpr std::array<unsigned char, 8> kHpcbTailMagic = {
    0x1A, 0x0A, 0x0D, 'B', 'C', 'P', 'H', 0x89};
inline constexpr std::uint16_t kHpcbVersion = 2;
inline constexpr std::uint32_t kBlockMagic = 0xB10C89E1u;
inline constexpr std::uint32_t kFooterMagic = 0xF007E989u;
inline constexpr std::uint32_t kZoneMapMagic = 0x5A4E4D89u;  // "ZNM" + 0x89
inline constexpr std::size_t kDefaultRowsPerBlock = 4096;

enum class ColumnType : std::uint8_t {
  kInt64Delta = 0,  ///< zigzag-varint deltas, restart per block
  kFloat64 = 1,     ///< raw little-endian IEEE-754 bits
  kFloat64Xor = 2,  ///< varint of bits XOR previous bits, restart per block
};

[[nodiscard]] constexpr bool is_float_column(ColumnType type) noexcept {
  return type == ColumnType::kFloat64 || type == ColumnType::kFloat64Xor;
}

[[nodiscard]] const char* column_type_name(ColumnType type) noexcept;

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64Delta;

  friend bool operator==(const ColumnSpec&, const ColumnSpec&) = default;
};

/// One column's values; only the vector matching the spec's type is used.
struct Column {
  std::vector<std::int64_t> i64;
  std::vector<double> f64;

  [[nodiscard]] std::size_t size(ColumnType type) const noexcept {
    return is_float_column(type) ? f64.size() : i64.size();
  }
};

/// An in-memory columnar table: schema plus one Column per spec.
struct Table {
  std::vector<ColumnSpec> schema;
  std::vector<Column> columns;

  [[nodiscard]] std::size_t rows() const noexcept {
    return schema.empty() ? 0 : columns.front().size(schema.front().type);
  }
  /// Index of the named column; throws std::out_of_range when absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;
  [[nodiscard]] const Column& column(std::string_view name) const {
    return columns[column_index(name)];
  }
  /// Schema mismatch / ragged columns raise std::invalid_argument.
  void validate() const;
};

struct ReadOptions {
  /// Strict (default): any corruption — bad magic, bad CRC, truncation,
  /// malformed encodings — throws std::invalid_argument naming the block.
  /// Lenient: corrupt blocks are skipped with a counted warning
  /// ("storage.blocks_skipped" / "storage.rows_skipped") and a damaged
  /// footer is replaced by a block-magic scan ("storage.footer_rescans").
  bool lenient = false;
  /// Column projection: decode only these columns (empty = all). The
  /// returned table keeps file schema order. Unknown names always throw.
  std::vector<std::string> columns;
  /// Decode blocks on the global thread pool (merged in block order; the
  /// result is bit-identical at any thread count). false = serial decode.
  bool parallel = true;
  /// File wrappers (load_hpcb) read via mmap when the platform supports it,
  /// decoding straight from the page cache; false forces buffered reads.
  /// Streams (read_hpcb) ignore this.
  bool mmap = true;
};

/// Per-block accounting of one read, for tooling and tests.
struct BlockInfo {
  std::size_t offset = 0;   ///< file offset of the block magic
  std::uint32_t rows = 0;   ///< rows the block claims to hold
  bool ok = false;          ///< decoded and merged into the result
};

struct ReadStats {
  std::vector<BlockInfo> blocks;
  std::uint64_t rows_read = 0;
  std::uint64_t rows_skipped = 0;    ///< rows lost to skipped blocks
  std::size_t blocks_skipped = 0;
  bool footer_valid = false;         ///< footer index parsed and CRC-clean
  bool rescanned = false;            ///< index rebuilt by block-magic scan
  bool zone_maps = false;            ///< zone-map section parsed and CRC-clean
};

/// One column's zone-map entry for one block: the range of finite values
/// plus a null (NaN) count. Integer columns never hold nulls; float columns
/// count NaN rows in `null_count` and exclude them from min/max. A block
/// of all-NaN values (or an empty block) has `has_range == false`.
struct ZoneEntry {
  std::uint32_t null_count = 0;
  bool has_range = false;
  std::int64_t min_i = 0;  ///< valid for integer columns when has_range
  std::int64_t max_i = 0;
  double min_d = 0.0;      ///< valid for float columns when has_range
  double max_d = 0.0;
};

/// Zone maps for a whole file: `entries[block * column_count + column]`.
struct ZoneMaps {
  std::size_t column_count = 0;
  std::vector<ZoneEntry> entries;

  [[nodiscard]] std::size_t block_count() const noexcept {
    return column_count == 0 ? 0 : entries.size() / column_count;
  }
  [[nodiscard]] const ZoneEntry& at(std::size_t block,
                                    std::size_t column) const {
    return entries[block * column_count + column];
  }
};

/// Serializes `table` (validated first). `rows_per_block` bounds the row
/// group size; smaller blocks mean finer corruption granularity and more
/// parallelism at a few bytes of overhead per block. `version` selects the
/// on-disk format: 2 (default) writes zone maps, 1 writes the legacy layout
/// (kept writable so compatibility tests can exercise the v1 read path).
void write_hpcb(std::ostream& out, const Table& table,
                std::size_t rows_per_block = kDefaultRowsPerBlock,
                std::uint16_t version = kHpcbVersion);

/// Incremental .hpcb writer: the header is emitted at construction, blocks
/// are flushed as appended rows fill `rows_per_block`, and finish() writes
/// the zone-map section plus footer. The byte stream is identical to
/// write_hpcb() of the concatenated appends. Used by the streaming daemon
/// to spill samples as they arrive without holding the whole table.
class HpcbChunkWriter {
 public:
  HpcbChunkWriter(std::ostream& out, std::vector<ColumnSpec> schema,
                  std::size_t rows_per_block = kDefaultRowsPerBlock,
                  std::uint16_t version = kHpcbVersion);
  ~HpcbChunkWriter();
  HpcbChunkWriter(const HpcbChunkWriter&) = delete;
  HpcbChunkWriter& operator=(const HpcbChunkWriter&) = delete;

  /// Appends rows; `table.schema` must equal the writer's schema. Complete
  /// blocks are encoded and written immediately.
  void append(const Table& table);
  /// Flushes the tail block and writes zone maps + footer. Idempotent;
  /// append() after finish() throws std::logic_error.
  void finish();
  [[nodiscard]] std::uint64_t rows_written() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Parses a .hpcb stream. Throws std::invalid_argument on malformed input
/// (see ReadOptions::lenient for the recovery mode).
[[nodiscard]] Table read_hpcb(std::istream& in, const ReadOptions& options = {},
                              ReadStats* stats = nullptr);

/// Same parse over an in-memory buffer (the istream overload slurps into a
/// buffer and forwards here; scan.hpp reads mmap'd files through it).
[[nodiscard]] Table read_hpcb_buffer(std::string_view buf,
                                     const ReadOptions& options = {},
                                     ReadStats* stats = nullptr);

/// Reads only the header schema (cheap: no block decoding).
[[nodiscard]] std::vector<ColumnSpec> read_hpcb_schema(std::istream& in);

/// True when the stream starts with the .hpcb magic; the stream position is
/// restored. The cheap format sniff behind the trace loaders' auto-detection.
[[nodiscard]] bool sniff_hpcb(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_hpcb(const std::string& path, const Table& table,
               std::size_t rows_per_block = kDefaultRowsPerBlock);
[[nodiscard]] Table load_hpcb(const std::string& path,
                              const ReadOptions& options = {},
                              ReadStats* stats = nullptr);

}  // namespace hpcpower::storage

#include "telemetry/cleaning.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace hpcpower::telemetry {

const char* sample_class_name(SampleClass c) noexcept {
  switch (c) {
    case SampleClass::kOk: return "ok";
    case SampleClass::kGlitch: return "glitch";
    case SampleClass::kGap: return "gap";
    case SampleClass::kDuplicate: return "duplicate";
  }
  return "?";
}

void DataQualityReport::count(SampleClass c) noexcept {
  switch (c) {
    case SampleClass::kOk: ++samples_ok; break;
    case SampleClass::kGlitch: ++samples_glitch; break;
    case SampleClass::kGap: ++samples_gap; break;
    case SampleClass::kDuplicate: ++samples_duplicate; break;
  }
}

std::string describe(const DataQualityReport& q) {
  const double pct = q.samples_expected > 0
                         ? 100.0 / static_cast<double>(q.samples_expected)
                         : 0.0;
  std::string out = util::format(
      "%llu slots: %.2f%% ok, %.2f%% glitch, %.2f%% gap, %.2f%% duplicate; "
      "%llu interpolated, %llu glitches repaired; %llu/%llu jobs quarantined "
      "(%llu accounting, %llu low-quality), %llu crash-truncated; worst node "
      "dropout %.1f%%",
      static_cast<unsigned long long>(q.samples_expected),
      pct * static_cast<double>(q.samples_ok),
      pct * static_cast<double>(q.samples_glitch),
      pct * static_cast<double>(q.samples_gap),
      pct * static_cast<double>(q.samples_duplicate),
      static_cast<unsigned long long>(q.samples_interpolated),
      static_cast<unsigned long long>(q.glitches_repaired),
      static_cast<unsigned long long>(q.jobs_quarantined()),
      static_cast<unsigned long long>(q.jobs_seen),
      static_cast<unsigned long long>(q.jobs_quarantined_accounting),
      static_cast<unsigned long long>(q.jobs_quarantined_low_quality),
      static_cast<unsigned long long>(q.jobs_truncated_by_crash),
      100.0 * q.max_node_dropout_rate);
  if (q.rows_shed > 0)
    out += util::format("; %llu detail rows shed",
                        static_cast<unsigned long long>(q.rows_shed));
  return out;
}

SampleClass classify_watts(double watts, double node_tdp_watts,
                           const CleaningConfig& config) noexcept {
  if (!std::isfinite(watts)) return SampleClass::kGlitch;
  if (watts <= config.glitch_low_watts) return SampleClass::kGlitch;
  if (node_tdp_watts > 0.0 && watts > config.glitch_high_tdp_multiple * node_tdp_watts)
    return SampleClass::kGlitch;
  return SampleClass::kOk;
}

NodeStreamScrubber::Outcome NodeStreamScrubber::observe(
    std::uint32_t minute, double watts, bool duplicated,
    const CleaningConfig& config, double node_tdp_watts,
    std::vector<Backfill>& backfill) {
  Outcome out;
  const bool glitchy = classify_watts(watts, node_tdp_watts, config) ==
                       SampleClass::kGlitch;
  out.cls = glitchy ? SampleClass::kGlitch
                    : (duplicated ? SampleClass::kDuplicate : SampleClass::kOk);

  if (glitchy) {
    if (has_good_) {
      // Hold-last-good: the paper clamps implausible readings back into the
      // plausible envelope; the nearest in-envelope estimate is the previous
      // valid sample of the same node.
      out.accepted = last_good_;
      out.repaired_glitch = true;
      last_accept_minute_ = minute;
    }
    return out;
  }

  if (has_good_ && static_cast<std::int64_t>(minute) > last_accept_minute_ + 1) {
    const auto gap = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(minute) - last_accept_minute_ - 1);
    if (gap <= config.max_interpolate_gap_min) {
      const double step = (watts - last_good_) / static_cast<double>(gap + 1);
      for (std::uint32_t k = 1; k <= gap; ++k)
        backfill.push_back({static_cast<std::uint32_t>(last_accept_minute_ +
                                                       static_cast<std::int64_t>(k)),
                            last_good_ + step * static_cast<double>(k)});
    }
  }
  out.accepted = watts;
  last_good_ = watts;
  has_good_ = true;
  last_accept_minute_ = minute;
  return out;
}

SampleClass NodeStreamScrubber::missing(std::uint32_t minute) noexcept {
  (void)minute;  // gaps are measured from last_accept_minute_ when they close
  return SampleClass::kGap;
}

}  // namespace hpcpower::telemetry

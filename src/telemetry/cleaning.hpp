#pragma once
// Robust telemetry ingest: validation, repair, and quarantine.
//
// Mirrors the paper's Sec 2.2 cleaning of five months of production RAPL
// telemetry: invalid samples are detected by plausibility bounds and
// repaired or discarded, short monitoring gaps are linearly interpolated,
// duplicated collector records are dropped, and jobs whose telemetry is too
// incomplete (or whose accounting record is missing) are quarantined rather
// than silently skewing every downstream figure. Everything observable is
// counted into a DataQualityReport so ingest quality is a first-class output
// of a campaign, reconciled exactly against injected faults in tests.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hpcpower::telemetry {

/// Ingest-side classification of one nominal (job, minute, node) sample slot.
/// Exactly one class per slot, so the four counts sum to the expected total.
enum class SampleClass : std::uint8_t { kOk = 0, kGlitch, kGap, kDuplicate };

[[nodiscard]] const char* sample_class_name(SampleClass c) noexcept;

struct CleaningConfig {
  /// Master switch: when false, observations flow into aggregates raw
  /// (the "trust the collector" mode that dirty data visibly breaks).
  bool enabled = true;
  /// A reading above this multiple of node TDP is physically implausible.
  double glitch_high_tdp_multiple = 1.5;
  /// A reading at or below this many watts is implausible (RAPL never reads
  /// zero on a powered node); negatives and NaN are always glitches.
  double glitch_low_watts = 1.0;
  /// Gaps up to this many minutes are repaired by linear interpolation;
  /// longer gaps stay missing (aggregates use the valid subset).
  std::uint32_t max_interpolate_gap_min = 10;
  /// Jobs with fewer than this fraction of valid (accepted) samples are
  /// quarantined from the dataset.
  double min_valid_fraction = 0.6;
};

/// Ingest quality accounting for one campaign (or one cleaned trace).
struct DataQualityReport {
  /// Nominal sample slots presented to ingest (jobs x minutes x nodes).
  std::uint64_t samples_expected = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_glitch = 0;
  std::uint64_t samples_gap = 0;
  std::uint64_t samples_duplicate = 0;
  /// Repairs (subsets of the classes above, not additional slots).
  std::uint64_t samples_interpolated = 0;  ///< gap slots filled by interpolation
  std::uint64_t glitches_repaired = 0;     ///< glitch slots replaced by hold-last-good
  /// Extra physical rows beyond the nominal slots (batch/trace ingest only).
  std::uint64_t rows_out_of_order = 0;
  /// Per-sample detail rows dropped by streaming degraded mode (SHEDDING):
  /// the rows still reached the shed summary sketches, but never a table.
  /// Zero everywhere outside the streaming ingest daemon.
  std::uint64_t rows_shed = 0;

  std::uint64_t jobs_seen = 0;
  std::uint64_t jobs_quarantined_accounting = 0;
  std::uint64_t jobs_quarantined_low_quality = 0;
  std::uint64_t jobs_truncated_by_crash = 0;

  /// Per-node sensor dropout summary (gap slots / expected slots per node).
  double mean_node_dropout_rate = 0.0;
  double max_node_dropout_rate = 0.0;
  std::uint32_t worst_node = 0;
  std::uint32_t nodes_with_gaps = 0;

  [[nodiscard]] std::uint64_t samples_classified() const noexcept {
    return samples_ok + samples_glitch + samples_gap + samples_duplicate;
  }
  /// Every slot classified exactly once: the ingest ledger balances.
  [[nodiscard]] bool reconciles() const noexcept {
    return samples_classified() == samples_expected;
  }
  [[nodiscard]] std::uint64_t jobs_quarantined() const noexcept {
    return jobs_quarantined_accounting + jobs_quarantined_low_quality;
  }

  void count(SampleClass c) noexcept;

  friend bool operator==(const DataQualityReport&, const DataQualityReport&) = default;
};

/// One-line human summary for logs and reports.
[[nodiscard]] std::string describe(const DataQualityReport& q);

/// Value-based plausibility check: kOk or kGlitch.
[[nodiscard]] SampleClass classify_watts(double watts, double node_tdp_watts,
                                         const CleaningConfig& config) noexcept;

/// Streaming per-(job, node) scrubber. Feed it one observation (or absence)
/// per run-minute, in order; it classifies, repairs glitches by holding the
/// last good value, and backfills short gaps by linear interpolation once
/// the gap closes. O(1) state per node stream.
class NodeStreamScrubber {
 public:
  /// A value accepted into the aggregates for a past minute (gap backfill).
  struct Backfill {
    std::uint32_t minute = 0;
    double watts = 0.0;
  };

  struct Outcome {
    SampleClass cls = SampleClass::kOk;
    /// Value accepted for *this* minute after repair (absent for gaps and
    /// unrepairable glitches).
    std::optional<double> accepted;
    bool repaired_glitch = false;
  };

  /// Observation present at `minute`; `duplicated` marks a slot whose sample
  /// arrived twice (the copy is discarded). Appends interpolated values for
  /// any just-closed gap to `backfill` (not cleared).
  Outcome observe(std::uint32_t minute, double watts, bool duplicated,
                  const CleaningConfig& config, double node_tdp_watts,
                  std::vector<Backfill>& backfill);

  /// No observation arrived for `minute`.
  [[nodiscard]] SampleClass missing(std::uint32_t minute) noexcept;

 private:
  double last_good_ = 0.0;
  std::int64_t last_accept_minute_ = -1;
  bool has_good_ = false;
};

}  // namespace hpcpower::telemetry

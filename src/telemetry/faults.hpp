#pragma once
// Deterministic telemetry fault injection.
//
// Production RAPL/accounting stacks do not produce clean data (paper Sec 2.2;
// Sirbu & Babaoglu report missing/noisy samples dominating CINECA logs). This
// models the failure modes a real collector exhibits, as a pure function of
// (seed, job, minute, node) so a campaign with faults enabled is just as
// bit-reproducible as a clean one:
//
//   * per-sample sensor dropouts (isolated missing minutes),
//   * per-node sensor outages (bursty multi-minute gaps, daemon restarts),
//   * RAPL counter wraparound/SMI glitches (NaN, negative, or >>TDP spikes),
//   * duplicated sample records (collector retry after a timeout),
//   * node crashes that truncate a job's telemetry mid-run,
//   * jobs whose accounting record is lost entirely.
//
// The injector knows the ground truth of every decision, which is what lets
// the ingest layer's DataQualityReport be reconciled exactly in tests.

#include <cstdint>
#include <optional>

#include "cluster/node.hpp"

namespace hpcpower::telemetry {

/// What happened to one nominal (job, minute, node) observation slot.
enum class SampleFault : std::uint8_t {
  kNone = 0,       ///< sample observed faithfully
  kDropout,        ///< sample never arrived (isolated loss or node outage)
  kGlitchNan,      ///< sensor read back NaN
  kGlitchNegative, ///< counter wraparound: negative energy delta
  kGlitchSpike,    ///< bogus huge reading (way above TDP)
  kDuplicate,      ///< sample logged twice (identical value, same timestamp)
};

[[nodiscard]] const char* sample_fault_name(SampleFault f) noexcept;

/// Injection rates. Defaults are paper-plausible for a production cluster:
/// O(1%) missing minutes, O(0.1%) garbage readings, rare whole-job losses.
struct FaultConfig {
  bool enabled = false;
  /// Probability an isolated (job, minute, node) sample is simply missing.
  double dropout_rate = 0.01;
  /// Probability a sample carries a garbage value (split by the mix below).
  double glitch_rate = 0.004;
  /// Probability a sample is recorded twice by the collector.
  double duplicate_rate = 0.003;
  /// Probability an exported trace row is swapped with its successor
  /// (out-of-order timestamps; batch/trace ingest only).
  double reorder_rate = 0.002;
  /// Glitch value mix (remainder of the mass is kGlitchSpike).
  double glitch_nan_fraction = 0.25;
  double glitch_negative_fraction = 0.25;
  /// Spike magnitude: uniform in [2, spike_tdp_multiple] x node TDP.
  double spike_tdp_multiple = 10.0;
  /// Per-(node, day) probability that the node's monitoring daemon goes down
  /// for a contiguous window that day (all samples in the window lost).
  double node_outage_per_day = 0.02;
  double node_outage_mean_min = 30.0;
  /// Probability a job is truncated mid-run by a node crash: its telemetry
  /// stops at a deterministic fraction of the runtime (accounting survives).
  double node_crash_rate = 0.01;
  /// Probability a job's accounting record is lost: its telemetry can never
  /// be joined and the job must be quarantined by ingest.
  double accounting_loss_rate = 0.02;
};

/// Deterministic fault oracle for one campaign. Copyable and cheap; all
/// queries are pure functions of the construction parameters.
class FaultModel {
 public:
  FaultModel() = default;  ///< disabled model: every query says "no fault"
  FaultModel(const FaultConfig& config, std::uint64_t seed, double node_tdp_watts);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Fault class of the (job, minute, node) observation slot. `minute` is the
  /// campaign minute, `node` the global node id (outages follow the node's
  /// daemon, not the job).
  [[nodiscard]] SampleFault classify(std::uint64_t job_id, std::int64_t minute,
                                     cluster::NodeId node) const;

  /// Value the collector logs for a glitched sample (deterministic per slot).
  [[nodiscard]] double glitch_value(SampleFault fault, std::uint64_t job_id,
                                    std::int64_t minute, cluster::NodeId node) const;

  /// True while `node`'s monitoring daemon is down at `minute`.
  [[nodiscard]] bool node_outage(cluster::NodeId node, std::int64_t minute) const;

  /// Run-relative minute at which a node crash truncates the job's telemetry
  /// (always >= 1), or nullopt if the job runs to completion.
  [[nodiscard]] std::optional<std::uint32_t> crash_minute(
      std::uint64_t job_id, std::uint32_t runtime_min) const;

  /// True if the job's accounting record is lost.
  [[nodiscard]] bool accounting_lost(std::uint64_t job_id) const;

  /// True if exported trace row `row_index` should swap with its successor.
  [[nodiscard]] bool reorder_row(std::uint64_t row_index) const;

 private:
  FaultConfig config_{};
  double node_tdp_watts_ = 0.0;
  // Independent sub-streams so enabling one fault class never shifts another.
  std::uint64_t sample_seed_ = 0;
  std::uint64_t value_seed_ = 0;
  std::uint64_t outage_seed_ = 0;
  std::uint64_t crash_seed_ = 0;
  std::uint64_t accounting_seed_ = 0;
  std::uint64_t reorder_seed_ = 0;
};

}  // namespace hpcpower::telemetry

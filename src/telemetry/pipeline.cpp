#include "telemetry/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hpcpower::telemetry {

MonitoringPipeline::MonitoringPipeline(const cluster::SystemSpec& spec,
                                       PipelineConfig config)
    : spec_(spec),
      config_(config),
      node_rng_(util::derive_stream(config.seed, "node-population")),
      nodes_(spec, node_rng_),
      fault_model_(config.faults, config.seed, spec.node_tdp_watts) {
  if (fault_model_.enabled()) {
    node_slots_.assign(spec_.node_count, 0);
    node_gap_slots_.assign(spec_.node_count, 0);
  }
}

sched::SimulationHooks MonitoringPipeline::hooks() {
  sched::SimulationHooks h;
  h.on_start = [this](const sched::RunningJob& job) { on_start(job); };
  h.on_end = [this](const sched::RunningJob& job, const sched::JobAccountingRecord& rec) {
    on_end(job, rec);
  };
  h.per_minute = [this](util::MinuteTime now,
                        const std::vector<const sched::RunningJob*>& running,
                        std::uint32_t down_nodes) {
    if (fault_model_.enabled()) {
      per_minute_faulty(now, running, down_nodes);
    } else {
      per_minute(now, running, down_nodes);
    }
  };
  return h;
}

void MonitoringPipeline::on_start(const sched::RunningJob& job) {
  std::vector<double> mfg;
  mfg.reserve(job.nodes.size());
  for (const cluster::NodeId id : job.nodes) mfg.push_back(nodes_.node(id).power_factor);

  workload::PowerProfile profile(job.request.behavior, job.request.runtime_min, mfg);
  ActiveJob active(std::move(profile), job);
  active.node_energy_wmin.assign(job.nodes.size(), 0.0);
  active.instrumented = job.start >= config_.instrument_begin &&
                        job.start < config_.instrument_end;
  if (active.instrumented) {
    active.mean_series.reserve(job.request.runtime_min);
    active.spread_series.reserve(job.request.runtime_min);
  }
  if (fault_model_.enabled()) {
    active.scrub.resize(job.nodes.size());
    active.node_valid.assign(job.nodes.size(), 0);
    active.crash_at =
        fault_model_.crash_minute(job.request.job_id, job.request.runtime_min);
  }
  active_.emplace(job.request.job_id, std::move(active));
}

namespace {
/// Cap clamp shared by the clean and faulty sampling paths. The throttle
/// counter is per-job scratch so concurrent job tasks never share a counter.
double capped_power(double watts, double cap_w, std::uint64_t& throttled) noexcept {
  if (cap_w > 0.0 && watts > cap_w) {
    ++throttled;
    return cap_w;
  }
  return watts;
}
}  // namespace

namespace {
/// Distribution of concurrently running jobs per monitoring tick. Bucket
/// counts are commutative integer sums, so the manifest histogram stays
/// deterministic at any thread count.
void observe_running_jobs(std::size_t running) {
  static constexpr double kEdges[] = {0.0, 1.0, 2.0, 4.0, 8.0,
                                      16.0, 32.0, 64.0, 128.0, 256.0};
  static obs::Histogram& hist =
      obs::metrics().histogram("telemetry.tick.running_jobs", kEdges);
  hist.observe(static_cast<double>(running));
}
}  // namespace

void MonitoringPipeline::per_minute(
    util::MinuteTime now, const std::vector<const sched::RunningJob*>& running,
    std::uint32_t down_nodes) {
  HPCPOWER_SPAN("telemetry.tick");
  observe_running_jobs(running.size());
  const bool tapped = static_cast<bool>(config_.tap.on_tick);
  // One task per running job: each touches only its own ActiveJob state and
  // writes its facility-meter contribution into a dedicated slot. The slots
  // are then reduced in running-set order, so the sum has the exact same
  // association as the historical serial loop at every thread count.
  tick_scratch_.assign(running.size(), TickPartial{});
  util::parallel_for(running.size(), [&](std::size_t j) {
    const sched::RunningJob* job = running[j];
    const auto it = active_.find(job->request.job_id);
    assert(it != active_.end());
    ActiveJob& a = it->second;
    TickPartial& out = tick_scratch_[j];
    const auto minute = static_cast<std::uint32_t>((now - a.placement.start).minutes());
    const double cap_w = config_.job_node_cap_w
                             ? config_.job_node_cap_w(job->request.job_id)
                             : config_.node_power_cap_w;

    double sum = 0.0;
    double lo = 0.0, hi = 0.0;
    const std::uint32_t n = static_cast<std::uint32_t>(a.placement.nodes.size());
    if (tapped) out.rows.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const double p = capped_power(a.profile.node_power(minute, i), cap_w,
                                    out.throttled);
      a.all_samples.add(p);
      a.node_energy_wmin[i] += p;
      if (tapped) out.rows.push_back({job->request.job_id, a.placement.nodes[i], p});
      sum += p;
      if (i == 0) {
        lo = hi = p;
      } else {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    }
    const double mean = sum / static_cast<double>(n);
    a.minute_means.add(mean);
    if (a.instrumented) {
      a.mean_series.push_back(static_cast<float>(mean));
      a.spread_series.push_back(static_cast<float>(hi - lo));
    }
    out.power_w = sum;
    out.busy = n;
  });

  double total_power = 0.0;
  std::uint32_t busy = 0;
  std::uint64_t tick_throttled = 0;
  for (const TickPartial& t : tick_scratch_) {
    total_power += t.power_w;
    busy += t.busy;
    tick_throttled += t.throttled;
  }
  throttled_samples_ += tick_throttled;

  // Idle nodes still draw their floor power (RAPL PKG+DRAM never reads zero);
  // the facility pays for it all the same. Down (failed, draining) nodes are
  // powered off for repair: no telemetry, no idle floor.
  const double idle_watts = spec_.idle_power_fraction * spec_.node_tdp_watts;
  const auto idle_nodes = static_cast<double>(spec_.node_count - busy - down_nodes);
  total_power += idle_nodes * idle_watts;

  series_.total_power_w.push_back(total_power);
  series_.busy_nodes.push_back(busy);

  if (tapped) {
    TapTick tick;
    tick.minute = now.minutes();
    tick.total_power_w = total_power;
    tick.busy_nodes = busy;
    tick.throttled = tick_throttled;
    std::size_t total_rows = 0;
    for (const TickPartial& t : tick_scratch_) total_rows += t.rows.size();
    tick.rows.reserve(total_rows);
    for (TickPartial& t : tick_scratch_)
      tick.rows.insert(tick.rows.end(), t.rows.begin(), t.rows.end());
    config_.tap.on_tick(std::move(tick));
  }
}

void MonitoringPipeline::per_minute_faulty(
    util::MinuteTime now, const std::vector<const sched::RunningJob*>& running,
    std::uint32_t down_nodes) {
  HPCPOWER_SPAN("telemetry.tick.faulty");
  observe_running_jobs(running.size());
  const bool clean = config_.cleaning.enabled;
  const bool tapped = static_cast<bool>(config_.tap.on_tick);

  // Sharded like per_minute: one task per job, with the job's data-quality
  // ledger delta accumulated in its own slot and merged in running-set order.
  // Per-node dropout ledgers (node_slots_/node_gap_slots_) are written
  // directly: nodes are exclusively allocated, so no two concurrent job tasks
  // ever touch the same global node id.
  faulty_scratch_.assign(running.size(), FaultyTickPartial{});
  util::parallel_for(running.size(), [&](std::size_t j) {
    const sched::RunningJob* job = running[j];
    const auto it = active_.find(job->request.job_id);
    assert(it != active_.end());
    ActiveJob& a = it->second;
    FaultyTickPartial& slot = faulty_scratch_[j];
    DataQualityReport& q = slot.quality;
    const std::uint64_t job_id = job->request.job_id;
    const auto minute = static_cast<std::uint32_t>((now - a.placement.start).minutes());
    const double cap_w = config_.job_node_cap_w
                             ? config_.job_node_cap_w(job_id)
                             : config_.node_power_cap_w;
    ++a.ticks;

    const bool crashed = a.crash_at && minute >= *a.crash_at;
    if (crashed && !a.crash_counted) {
      a.crash_counted = true;
      ++q.jobs_truncated_by_crash;
    }

    // Accepted values for *this* minute (for the across-node mean/spread).
    double acc_sum = 0.0, acc_lo = 0.0, acc_hi = 0.0;
    std::uint32_t acc_n = 0;
    const auto accept_now = [&](double v) {
      if (acc_n == 0) {
        acc_lo = acc_hi = v;
      } else {
        acc_lo = std::min(acc_lo, v);
        acc_hi = std::max(acc_hi, v);
      }
      acc_sum += v;
      ++acc_n;
    };

    // Summed per job then added, in the same association order as the clean
    // path: the facility meter must stay bit-identical across fault configs.
    double true_sum = 0.0;
    const std::uint32_t n = static_cast<std::uint32_t>(a.placement.nodes.size());
    if (tapped) {
      slot.tick.rows.reserve(n);
      slot.slots.reserve(n);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      // The facility meter sees the true draw regardless of telemetry faults.
      const double p = capped_power(a.profile.node_power(minute, i), cap_w,
                                    slot.tick.throttled);
      true_sum += p;
      const cluster::NodeId gid = a.placement.nodes[i];
      ++q.samples_expected;
      ++node_slots_[gid];

      if (crashed) {
        q.count(SampleClass::kGap);
        ++node_gap_slots_[gid];
        if (tapped) slot.slots.push_back({gid, 1, 1});
        continue;
      }
      const SampleFault fault = fault_model_.classify(job_id, now.minutes(), gid);
      if (fault == SampleFault::kDropout) {
        q.count(clean ? a.scrub[i].missing(minute) : SampleClass::kGap);
        ++node_gap_slots_[gid];
        if (tapped) slot.slots.push_back({gid, 1, 1});
        continue;
      }
      if (tapped) slot.slots.push_back({gid, 1, 0});
      const bool glitchy = fault == SampleFault::kGlitchNan ||
                           fault == SampleFault::kGlitchNegative ||
                           fault == SampleFault::kGlitchSpike;
      const double observed =
          glitchy ? fault_model_.glitch_value(fault, job_id, now.minutes(), gid) : p;
      const bool duplicated = fault == SampleFault::kDuplicate;

      if (clean) {
        a.backfill_scratch.clear();
        const auto out = a.scrub[i].observe(minute, observed, duplicated,
                                            config_.cleaning, spec_.node_tdp_watts,
                                            a.backfill_scratch);
        q.count(out.cls);
        if (out.repaired_glitch) ++q.glitches_repaired;
        if (out.accepted) {
          a.all_samples.add(*out.accepted);
          a.node_energy_wmin[i] += *out.accepted;
          ++a.node_valid[i];
          accept_now(*out.accepted);
          if (tapped) slot.tick.rows.push_back({job_id, gid, *out.accepted});
        }
        for (const auto& b : a.backfill_scratch) {
          a.all_samples.add(b.watts);
          a.node_energy_wmin[i] += b.watts;
          ++a.node_valid[i];
          ++q.samples_interpolated;
          if (tapped) slot.tick.rows.push_back({job_id, gid, b.watts});
        }
      } else {
        // Trust-the-collector mode: every observation lands in the
        // aggregates verbatim, duplicates twice. This is what the paper's
        // cleaning step exists to prevent.
        q.count(glitchy ? SampleClass::kGlitch
                        : (duplicated ? SampleClass::kDuplicate
                                      : SampleClass::kOk));
        const int copies = duplicated ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          a.all_samples.add(observed);
          a.node_energy_wmin[i] += observed;
          ++a.node_valid[i];
          accept_now(observed);
          if (tapped) slot.tick.rows.push_back({job_id, gid, observed});
        }
      }
    }

    if (acc_n > 0) {
      const double mean = acc_sum / static_cast<double>(acc_n);
      a.minute_means.add(mean);
      if (a.instrumented) {
        a.mean_series.push_back(static_cast<float>(mean));
        a.spread_series.push_back(static_cast<float>(acc_hi - acc_lo));
      }
    }
    slot.tick.power_w = true_sum;
    slot.tick.busy = n;
  });

  double total_power = 0.0;
  std::uint32_t busy = 0;
  std::uint64_t tick_throttled = 0;
  // Minute-level ledger delta, merged in running-set order (integer sums, so
  // the split through `delta` leaves quality_ bit-identical to the historical
  // direct accumulation) and shared verbatim with the tap.
  DataQualityReport delta;
  for (const FaultyTickPartial& f : faulty_scratch_) {
    total_power += f.tick.power_w;
    busy += f.tick.busy;
    tick_throttled += f.tick.throttled;
    const DataQualityReport& q = f.quality;
    delta.samples_expected += q.samples_expected;
    delta.samples_ok += q.samples_ok;
    delta.samples_glitch += q.samples_glitch;
    delta.samples_gap += q.samples_gap;
    delta.samples_duplicate += q.samples_duplicate;
    delta.samples_interpolated += q.samples_interpolated;
    delta.glitches_repaired += q.glitches_repaired;
    delta.jobs_truncated_by_crash += q.jobs_truncated_by_crash;
  }
  throttled_samples_ += tick_throttled;
  quality_.samples_expected += delta.samples_expected;
  quality_.samples_ok += delta.samples_ok;
  quality_.samples_glitch += delta.samples_glitch;
  quality_.samples_gap += delta.samples_gap;
  quality_.samples_duplicate += delta.samples_duplicate;
  quality_.samples_interpolated += delta.samples_interpolated;
  quality_.glitches_repaired += delta.glitches_repaired;
  quality_.jobs_truncated_by_crash += delta.jobs_truncated_by_crash;

  const double idle_watts = spec_.idle_power_fraction * spec_.node_tdp_watts;
  const auto idle_nodes = static_cast<double>(spec_.node_count - busy - down_nodes);
  total_power += idle_nodes * idle_watts;

  series_.total_power_w.push_back(total_power);
  series_.busy_nodes.push_back(busy);

  if (tapped) {
    TapTick tick;
    tick.minute = now.minutes();
    tick.total_power_w = total_power;
    tick.busy_nodes = busy;
    tick.throttled = tick_throttled;
    tick.quality_delta = delta;
    std::size_t total_rows = 0, total_slots = 0;
    for (const FaultyTickPartial& f : faulty_scratch_) {
      total_rows += f.tick.rows.size();
      total_slots += f.slots.size();
    }
    tick.rows.reserve(total_rows);
    tick.node_slots.reserve(total_slots);
    for (FaultyTickPartial& f : faulty_scratch_) {
      tick.rows.insert(tick.rows.end(), f.tick.rows.begin(), f.tick.rows.end());
      tick.node_slots.insert(tick.node_slots.end(), f.slots.begin(),
                             f.slots.end());
    }
    config_.tap.on_tick(std::move(tick));
  }
}

void MonitoringPipeline::on_end(const sched::RunningJob& job,
                                const sched::JobAccountingRecord& rec) {
  HPCPOWER_SPAN("telemetry.ingest.job");
  const auto it = active_.find(job.request.job_id);
  assert(it != active_.end());
  ActiveJob& a = it->second;
  const bool tap_end = static_cast<bool>(config_.tap.on_job_end);
  // Job-level ledger delta: mirrors exactly what this call adds to quality_,
  // so a tap consumer summing deltas reproduces the batch ledger.
  DataQualityReport delta;

  if (fault_model_.enabled()) {
    ++quality_.jobs_seen;
    ++delta.jobs_seen;
    if (fault_model_.accounting_lost(job.request.job_id)) {
      // No accounting record: the telemetry can never be joined to a job.
      ++quality_.jobs_quarantined_accounting;
      ++delta.jobs_quarantined_accounting;
      active_.erase(it);
      if (tap_end) config_.tap.on_job_end({false, JobRecord{}, delta});
      return;
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(a.ticks) * a.placement.nodes.size();
    if (config_.cleaning.enabled && expected > 0) {
      std::uint64_t valid = 0;
      for (const std::uint32_t v : a.node_valid) valid += v;
      if (static_cast<double>(valid) <
          config_.cleaning.min_valid_fraction * static_cast<double>(expected)) {
        ++quality_.jobs_quarantined_low_quality;
        ++delta.jobs_quarantined_low_quality;
        active_.erase(it);
        if (tap_end) config_.tap.on_job_end({false, JobRecord{}, delta});
        return;
      }
    }
    // Rescale per-node energies for unrepaired gaps: the best estimate of a
    // node's energy is its mean observed power times the full runtime.
    for (std::size_t i = 0; i < a.node_energy_wmin.size(); ++i) {
      const std::uint32_t valid = a.node_valid[i];
      if (valid > 0 && valid < a.ticks)
        a.node_energy_wmin[i] *=
            static_cast<double>(a.ticks) / static_cast<double>(valid);
    }
  }

  JobRecord out;
  out.job_id = rec.job_id;
  out.user_id = rec.user_id;
  out.app = rec.app;
  out.system = spec_.id;
  out.submit = rec.submit;
  out.start = rec.start;
  out.end = rec.end;
  out.nnodes = rec.nnodes;
  out.walltime_req_min = rec.walltime_req_min;
  out.backfilled = rec.backfilled;
  out.truncated_by_horizon = rec.truncated_by_horizon;
  out.exit = rec.exit;
  out.attempt = rec.attempt;

  out.mean_node_power_w = a.all_samples.mean();
  out.temporal_std_w = a.minute_means.stddev();
  out.peak_node_power_w = a.minute_means.count() > 0 ? a.minute_means.max() : 0.0;

  const cluster::RaplSample split = cluster::split_domains(
      out.mean_node_power_w, job.request.behavior.memory_intensity);
  out.mean_pkg_w = split.pkg_watts;
  out.mean_dram_w = split.dram_watts;

  double total_wmin = 0.0, lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < a.node_energy_wmin.size(); ++i) {
    const double e = a.node_energy_wmin[i];
    total_wmin += e;
    if (i == 0) {
      lo = hi = e;
    } else {
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
  }
  constexpr double kWminToKwh = 1.0 / 60.0 / 1000.0;
  out.energy_kwh = total_wmin * kWminToKwh;
  out.node_energy_min_kwh = lo * kWminToKwh;
  out.node_energy_max_kwh = hi * kWminToKwh;

  if (a.instrumented && !a.mean_series.empty()) {
    DetailMetrics d;
    const double mean = out.mean_node_power_w;
    if (mean > 0.0) {
      double peak = 0.0;
      std::size_t above = 0;
      for (const float m : a.mean_series) {
        peak = std::max(peak, static_cast<double>(m));
        if (static_cast<double>(m) > 1.1 * mean) ++above;
      }
      d.peak_overshoot = peak / mean - 1.0;
      d.frac_time_above_10pct =
          static_cast<double>(above) / static_cast<double>(a.mean_series.size());
    }
    if (!a.spread_series.empty() && out.nnodes > 1) {
      double spread_sum = 0.0;
      for (const float s : a.spread_series) spread_sum += static_cast<double>(s);
      d.avg_spatial_spread_w =
          spread_sum / static_cast<double>(a.spread_series.size());
      d.spread_fraction_of_power =
          mean > 0.0 ? d.avg_spatial_spread_w / mean : 0.0;
      std::size_t above = 0;
      for (const float s : a.spread_series)
        if (static_cast<double>(s) > d.avg_spatial_spread_w) ++above;
      d.frac_time_above_avg_spread =
          static_cast<double>(above) / static_cast<double>(a.spread_series.size());
    }
    out.detail = d;
  }

  records_.push_back(out);
  active_.erase(it);
  if (tap_end) config_.tap.on_job_end({true, std::move(out), delta});
}

const DataQualityReport& MonitoringPipeline::quality_report() {
  double sum = 0.0, max = 0.0;
  std::uint32_t worst = 0, with_gaps = 0;
  std::size_t counted = 0;
  for (std::size_t id = 0; id < node_slots_.size(); ++id) {
    if (node_slots_[id] == 0) continue;
    const double rate = static_cast<double>(node_gap_slots_[id]) /
                        static_cast<double>(node_slots_[id]);
    sum += rate;
    ++counted;
    if (node_gap_slots_[id] > 0) ++with_gaps;
    if (rate > max) {
      max = rate;
      worst = static_cast<std::uint32_t>(id);
    }
  }
  quality_.mean_node_dropout_rate = counted ? sum / static_cast<double>(counted) : 0.0;
  quality_.max_node_dropout_rate = max;
  quality_.worst_node = worst;
  quality_.nodes_with_gaps = with_gaps;
  return quality_;
}

}  // namespace hpcpower::telemetry

#include "telemetry/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcpower::telemetry {

MonitoringPipeline::MonitoringPipeline(const cluster::SystemSpec& spec,
                                       PipelineConfig config)
    : spec_(spec),
      config_(config),
      node_rng_(util::derive_stream(config.seed, "node-population")),
      nodes_(spec, node_rng_) {}

sched::SimulationHooks MonitoringPipeline::hooks() {
  sched::SimulationHooks h;
  h.on_start = [this](const sched::RunningJob& job) { on_start(job); };
  h.on_end = [this](const sched::RunningJob& job, const sched::JobAccountingRecord& rec) {
    on_end(job, rec);
  };
  h.per_minute = [this](util::MinuteTime now,
                        const std::vector<const sched::RunningJob*>& running) {
    per_minute(now, running);
  };
  return h;
}

void MonitoringPipeline::on_start(const sched::RunningJob& job) {
  std::vector<double> mfg;
  mfg.reserve(job.nodes.size());
  for (const cluster::NodeId id : job.nodes) mfg.push_back(nodes_.node(id).power_factor);

  workload::PowerProfile profile(job.request.behavior, job.request.runtime_min, mfg);
  ActiveJob active(std::move(profile), job);
  active.node_energy_wmin.assign(job.nodes.size(), 0.0);
  active.instrumented = job.start >= config_.instrument_begin &&
                        job.start < config_.instrument_end;
  if (active.instrumented) {
    active.mean_series.reserve(job.request.runtime_min);
    active.spread_series.reserve(job.request.runtime_min);
  }
  active_.emplace(job.request.job_id, std::move(active));
}

void MonitoringPipeline::per_minute(
    util::MinuteTime now, const std::vector<const sched::RunningJob*>& running) {
  double total_power = 0.0;
  std::uint32_t busy = 0;

  for (const sched::RunningJob* job : running) {
    const auto it = active_.find(job->request.job_id);
    assert(it != active_.end());
    ActiveJob& a = it->second;
    const auto minute = static_cast<std::uint32_t>((now - a.placement.start).minutes());

    double sum = 0.0;
    double lo = 0.0, hi = 0.0;
    const std::uint32_t n = static_cast<std::uint32_t>(a.placement.nodes.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      double p = a.profile.node_power(minute, i);
      if (config_.node_power_cap_w > 0.0 && p > config_.node_power_cap_w) {
        p = config_.node_power_cap_w;
        ++throttled_samples_;
      }
      a.all_samples.add(p);
      a.node_energy_wmin[i] += p;
      sum += p;
      if (i == 0) {
        lo = hi = p;
      } else {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    }
    const double mean = sum / static_cast<double>(n);
    a.minute_means.add(mean);
    if (a.instrumented) {
      a.mean_series.push_back(static_cast<float>(mean));
      a.spread_series.push_back(static_cast<float>(hi - lo));
    }
    total_power += sum;
    busy += n;
  }

  // Idle nodes still draw their floor power (RAPL PKG+DRAM never reads zero);
  // the facility pays for it all the same.
  const double idle_watts = spec_.idle_power_fraction * spec_.node_tdp_watts;
  const auto idle_nodes = static_cast<double>(spec_.node_count - busy);
  total_power += idle_nodes * idle_watts;

  series_.total_power_w.push_back(total_power);
  series_.busy_nodes.push_back(busy);
}

void MonitoringPipeline::on_end(const sched::RunningJob& job,
                                const sched::JobAccountingRecord& rec) {
  const auto it = active_.find(job.request.job_id);
  assert(it != active_.end());
  ActiveJob& a = it->second;

  JobRecord out;
  out.job_id = rec.job_id;
  out.user_id = rec.user_id;
  out.app = rec.app;
  out.system = spec_.id;
  out.submit = rec.submit;
  out.start = rec.start;
  out.end = rec.end;
  out.nnodes = rec.nnodes;
  out.walltime_req_min = rec.walltime_req_min;
  out.backfilled = rec.backfilled;
  out.truncated_by_horizon = rec.truncated_by_horizon;

  out.mean_node_power_w = a.all_samples.mean();
  out.temporal_std_w = a.minute_means.stddev();
  out.peak_node_power_w = a.minute_means.count() > 0 ? a.minute_means.max() : 0.0;

  const cluster::RaplSample split = cluster::split_domains(
      out.mean_node_power_w, job.request.behavior.memory_intensity);
  out.mean_pkg_w = split.pkg_watts;
  out.mean_dram_w = split.dram_watts;

  double total_wmin = 0.0, lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < a.node_energy_wmin.size(); ++i) {
    const double e = a.node_energy_wmin[i];
    total_wmin += e;
    if (i == 0) {
      lo = hi = e;
    } else {
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
  }
  constexpr double kWminToKwh = 1.0 / 60.0 / 1000.0;
  out.energy_kwh = total_wmin * kWminToKwh;
  out.node_energy_min_kwh = lo * kWminToKwh;
  out.node_energy_max_kwh = hi * kWminToKwh;

  if (a.instrumented && !a.mean_series.empty()) {
    DetailMetrics d;
    const double mean = out.mean_node_power_w;
    if (mean > 0.0) {
      double peak = 0.0;
      std::size_t above = 0;
      for (const float m : a.mean_series) {
        peak = std::max(peak, static_cast<double>(m));
        if (static_cast<double>(m) > 1.1 * mean) ++above;
      }
      d.peak_overshoot = peak / mean - 1.0;
      d.frac_time_above_10pct =
          static_cast<double>(above) / static_cast<double>(a.mean_series.size());
    }
    if (!a.spread_series.empty() && out.nnodes > 1) {
      double spread_sum = 0.0;
      for (const float s : a.spread_series) spread_sum += static_cast<double>(s);
      d.avg_spatial_spread_w =
          spread_sum / static_cast<double>(a.spread_series.size());
      d.spread_fraction_of_power =
          mean > 0.0 ? d.avg_spatial_spread_w / mean : 0.0;
      std::size_t above = 0;
      for (const float s : a.spread_series)
        if (static_cast<double>(s) > d.avg_spatial_spread_w) ++above;
      d.frac_time_above_avg_spread =
          static_cast<double>(above) / static_cast<double>(a.spread_series.size());
    }
    out.detail = d;
  }

  records_.push_back(out);
  active_.erase(it);
}

}  // namespace hpcpower::telemetry

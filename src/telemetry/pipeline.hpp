#pragma once
// Monitoring pipeline: realizes job power profiles on the node population,
// samples them at one-minute cadence during the scheduler simulation, and
// reduces everything to JobRecords plus system-level power series.
//
// Two tiers of retention, as in the paper (Sec 2.2):
//   * every job: streaming execution-wide aggregates (no sample storage),
//   * jobs starting inside the instrumented window: per-minute mean/min/max
//     retained so temporal overshoot and spatial-spread metrics can be
//     computed exactly (they need the run mean, i.e. a second pass).
//
// Production telemetry is dirty (Sec 2.2 cleans it before any figure): an
// optional FaultModel injects the collector's failure modes, and the robust
// ingest layer (cleaning.hpp) classifies/repairs/quarantines so the derived
// dataset stays faithful. With faults disabled the pipeline is bit-identical
// to the clean simulation.
//
// Each per-minute sweep shards across the running jobs on the global thread
// pool: a job's samples derive from stateless hashing and land only in that
// job's ActiveJob state (nodes are exclusively allocated, so per-node ledgers
// are disjoint too), and the cross-job facility-meter sum is reduced in the
// running-set order afterwards. Results are therefore bit-identical at any
// thread count, including the serial reference (DESIGN.md §5).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/rapl.hpp"
#include "cluster/system_spec.hpp"
#include "sched/simulator.hpp"
#include "stats/descriptive.hpp"
#include "telemetry/cleaning.hpp"
#include "telemetry/faults.hpp"
#include "telemetry/job_record.hpp"
#include "telemetry/stream_tap.hpp"
#include "workload/power_profile.hpp"

namespace hpcpower::telemetry {

struct PipelineConfig {
  std::uint64_t seed = 42;
  /// Jobs starting in [instrument_begin, instrument_end) get DetailMetrics.
  util::MinuteTime instrument_begin{0};
  util::MinuteTime instrument_end{0};
  /// Optional static per-node power cap (W); <= 0 disables. Used by the
  /// power-capping example/ablation, not by the baseline reproduction.
  double node_power_cap_w = 0.0;
  /// Optional dynamic per-job node cap provider (W; <= 0 means uncapped for
  /// that job). Takes precedence over node_power_cap_w. The closed-loop power
  /// manager installs its current cap table here; it is resolved once per job
  /// per tick (before the node loop) and must be safe to call concurrently
  /// with itself (the manager only mutates caps between ticks).
  std::function<double(workload::JobId)> job_node_cap_w;
  /// Telemetry fault injection (disabled by default: perfect collector).
  FaultConfig faults;
  /// Robust-ingest behaviour; only consulted when faults are enabled.
  CleaningConfig cleaning;
  /// Live export tap (streaming ingest). Empty callbacks cost nothing; when
  /// set, every minute and job end is published in deterministic order
  /// (stream_tap.hpp).
  StreamTap tap;
};

/// Per-minute system-level monitoring output.
struct SystemSeries {
  /// Sum of node power over all nodes (busy + idle floor), watts.
  std::vector<double> total_power_w;
  /// Busy node count (copied from the scheduler result for convenience).
  std::vector<std::uint32_t> busy_nodes;
};

class MonitoringPipeline {
 public:
  MonitoringPipeline(const cluster::SystemSpec& spec, PipelineConfig config);

  /// Hooks to pass to sched::CampaignSimulator::run. The pipeline must
  /// outlive the simulation.
  [[nodiscard]] sched::SimulationHooks hooks();

  /// Finalized job dataset (valid after the simulation completes).
  [[nodiscard]] std::vector<JobRecord>& records() noexcept { return records_; }
  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept { return records_; }
  [[nodiscard]] const SystemSeries& system_series() const noexcept { return series_; }
  [[nodiscard]] const cluster::NodePopulation& node_population() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const cluster::SystemSpec& spec() const noexcept { return spec_; }
  /// Count of samples where the (optional) node power cap clamped the draw.
  [[nodiscard]] std::uint64_t throttled_samples() const noexcept {
    return throttled_samples_;
  }
  /// The fault oracle in use (disabled model when faults are off).
  [[nodiscard]] const FaultModel& fault_model() const noexcept { return fault_model_; }
  /// Ingest quality ledger; all-zero when faults are disabled. Derived
  /// per-node summaries are refreshed on each call.
  [[nodiscard]] const DataQualityReport& quality_report();

 private:
  struct ActiveJob {
    workload::PowerProfile profile;
    sched::RunningJob placement;
    stats::RunningStats all_samples;    // every (minute, node) power value
    stats::RunningStats minute_means;   // per-minute across-node mean
    std::vector<double> node_energy_wmin;
    bool instrumented = false;
    std::vector<float> mean_series;     // per-minute mean (instrumented only)
    std::vector<float> spread_series;   // per-minute max-min (instrumented only)
    // Robust-ingest state (allocated only when faults are enabled):
    std::vector<NodeStreamScrubber> scrub;
    std::vector<std::uint32_t> node_valid;  // accepted samples per node
    std::uint32_t ticks = 0;                // monitored minutes so far
    std::optional<std::uint32_t> crash_at;  // run-relative telemetry cutoff
    bool crash_counted = false;
    // Per-job interpolation scratch: per-minute sweeps run one task per job,
    // so the buffer must not be shared across jobs.
    std::vector<NodeStreamScrubber::Backfill> backfill_scratch;

    ActiveJob(workload::PowerProfile p, sched::RunningJob r)
        : profile(std::move(p)), placement(std::move(r)) {}
  };

  /// Per-job contribution of one minute, reduced in running-set order.
  struct TickPartial {
    double power_w = 0.0;
    std::uint32_t busy = 0;
    std::uint64_t throttled = 0;
    std::vector<TapSampleRow> rows;  ///< filled only when the tap is installed
  };
  /// TickPartial plus the job's data-quality ledger delta (faulty path).
  struct FaultyTickPartial {
    TickPartial tick;
    DataQualityReport quality;
    std::vector<TapNodeSlotDelta> slots;  ///< filled only when tapped
  };

  void on_start(const sched::RunningJob& job);
  void on_end(const sched::RunningJob& job, const sched::JobAccountingRecord& rec);
  void per_minute(util::MinuteTime now,
                  const std::vector<const sched::RunningJob*>& running,
                  std::uint32_t down_nodes);
  void per_minute_faulty(util::MinuteTime now,
                         const std::vector<const sched::RunningJob*>& running,
                         std::uint32_t down_nodes);

  cluster::SystemSpec spec_;
  PipelineConfig config_;
  util::Rng node_rng_;
  cluster::NodePopulation nodes_;
  FaultModel fault_model_;
  std::unordered_map<workload::JobId, ActiveJob> active_;
  std::vector<JobRecord> records_;
  SystemSeries series_;
  std::uint64_t throttled_samples_ = 0;
  DataQualityReport quality_;
  std::vector<std::uint64_t> node_slots_;      // per global node: expected samples
  std::vector<std::uint64_t> node_gap_slots_;  // per global node: missing samples
  std::vector<TickPartial> tick_scratch_;            // reused per-minute slots
  std::vector<FaultyTickPartial> faulty_scratch_;    // reused per-minute slots
};

}  // namespace hpcpower::telemetry

#pragma once
// Stream tap: the monitoring pipeline's live export surface.
//
// A production collector does not materialize a campaign and then analyze
// it; it emits what it saw this minute and moves on. The tap is exactly that
// boundary: when installed in PipelineConfig, the pipeline publishes one
// TapTick per simulated minute (post-cleaning accepted samples, the facility
// meter point, and the minute's data-quality ledger delta) plus one
// TapJobEnd per finished attempt (the finalized JobRecord, or a quarantine
// verdict). The streaming ingest daemon (src/stream) packages these into
// durable batches; summing the deltas in arrival order reproduces the batch
// pipeline's ledgers bit-identically, which is what makes "streamed report
// == batch report" a testable property rather than an aspiration.
//
// Emission order is deterministic: rows appear in running-set order (the
// same order the per-minute reduction uses), nodes within a job in placement
// order. The tap adds per-minute allocations, so it costs nothing unless
// installed.

#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/cleaning.hpp"
#include "telemetry/job_record.hpp"

namespace hpcpower::telemetry {

/// One accepted power sample: global node id, owning job, watts after
/// cleaning (the value that entered the aggregates).
struct TapSampleRow {
  std::uint64_t job_id = 0;
  std::uint32_t node = 0;  ///< global node id
  double watts = 0.0;
};

/// Per-node dropout-ledger delta for one minute (sparse: only touched nodes).
struct TapNodeSlotDelta {
  std::uint32_t node = 0;
  std::uint32_t slots = 0;  ///< expected sample slots added this minute
  std::uint32_t gaps = 0;   ///< of which went missing
};

/// Everything the telemetry layer observed in one minute.
struct TapTick {
  std::int64_t minute = 0;        ///< absolute campaign minute
  double total_power_w = 0.0;     ///< facility meter (busy + idle floor)
  std::uint32_t busy_nodes = 0;
  std::uint64_t throttled = 0;    ///< cap-clamped samples this minute
  std::vector<TapSampleRow> rows;
  std::vector<TapNodeSlotDelta> node_slots;
  /// Per-slot ledger delta for this minute (slot-class fields and repairs
  /// only; job-level fields arrive with TapJobEnd).
  DataQualityReport quality_delta;
};

/// One finished job attempt, after ingest finalization.
struct TapJobEnd {
  /// False when the job was quarantined (record is default-constructed).
  bool kept = false;
  JobRecord record;
  /// Job-level ledger delta (jobs_seen / quarantine counters).
  DataQualityReport quality_delta;
};

/// Callbacks; either may be empty. Invoked on the simulation driver thread,
/// strictly in simulated-time order.
struct StreamTap {
  std::function<void(TapTick&&)> on_tick;
  std::function<void(TapJobEnd&&)> on_job_end;
};

}  // namespace hpcpower::telemetry

#include "telemetry/faults.hpp"

#include <cmath>
#include <limits>

#include "util/prng.hpp"

namespace hpcpower::telemetry {

namespace {
/// Packs (minute, node) into one 64-bit counter for the stateless streams.
std::uint64_t slot_key(std::int64_t minute, cluster::NodeId node) noexcept {
  return (static_cast<std::uint64_t>(minute) << 24) ^ static_cast<std::uint64_t>(node);
}
}  // namespace

const char* sample_fault_name(SampleFault f) noexcept {
  switch (f) {
    case SampleFault::kNone: return "none";
    case SampleFault::kDropout: return "dropout";
    case SampleFault::kGlitchNan: return "glitch-nan";
    case SampleFault::kGlitchNegative: return "glitch-negative";
    case SampleFault::kGlitchSpike: return "glitch-spike";
    case SampleFault::kDuplicate: return "duplicate";
  }
  return "?";
}

FaultModel::FaultModel(const FaultConfig& config, std::uint64_t seed,
                       double node_tdp_watts)
    : config_(config),
      node_tdp_watts_(node_tdp_watts),
      sample_seed_(util::derive_stream(seed, "faults/sample")),
      value_seed_(util::derive_stream(seed, "faults/value")),
      outage_seed_(util::derive_stream(seed, "faults/outage")),
      crash_seed_(util::derive_stream(seed, "faults/crash")),
      accounting_seed_(util::derive_stream(seed, "faults/accounting")),
      reorder_seed_(util::derive_stream(seed, "faults/reorder")) {}

SampleFault FaultModel::classify(std::uint64_t job_id, std::int64_t minute,
                                 cluster::NodeId node) const {
  if (!config_.enabled) return SampleFault::kNone;
  if (node_outage(node, minute)) return SampleFault::kDropout;
  // One uniform decides the slot's class so the classes are mutually
  // exclusive and their injected counts reconcile exactly.
  const double u = util::stateless_uniform(sample_seed_, job_id, slot_key(minute, node));
  double edge = config_.dropout_rate;
  if (u < edge) return SampleFault::kDropout;
  edge += config_.glitch_rate;
  if (u < edge) {
    const double g = (u - (edge - config_.glitch_rate)) / config_.glitch_rate;
    if (g < config_.glitch_nan_fraction) return SampleFault::kGlitchNan;
    if (g < config_.glitch_nan_fraction + config_.glitch_negative_fraction)
      return SampleFault::kGlitchNegative;
    return SampleFault::kGlitchSpike;
  }
  edge += config_.duplicate_rate;
  if (u < edge) return SampleFault::kDuplicate;
  return SampleFault::kNone;
}

double FaultModel::glitch_value(SampleFault fault, std::uint64_t job_id,
                                std::int64_t minute, cluster::NodeId node) const {
  switch (fault) {
    case SampleFault::kGlitchNan:
      return std::numeric_limits<double>::quiet_NaN();
    case SampleFault::kGlitchNegative: {
      // Counter wraparound yields a large negative power delta.
      const double u = util::stateless_uniform(value_seed_, job_id, slot_key(minute, node));
      return -(1.0 + u * config_.spike_tdp_multiple) * node_tdp_watts_;
    }
    case SampleFault::kGlitchSpike: {
      const double u = util::stateless_uniform(value_seed_, job_id, slot_key(minute, node));
      return (2.0 + u * (config_.spike_tdp_multiple - 2.0)) * node_tdp_watts_;
    }
    default:
      return 0.0;
  }
}

bool FaultModel::node_outage(cluster::NodeId node, std::int64_t minute) const {
  if (!config_.enabled || config_.node_outage_per_day <= 0.0 || minute < 0)
    return false;
  constexpr std::int64_t kMinutesPerDay = 24 * 60;
  // An outage window may spill into the next day, so check today and
  // yesterday for a window covering `minute`.
  for (std::int64_t day = minute / kMinutesPerDay;
       day >= 0 && day >= minute / kMinutesPerDay - 1; --day) {
    const auto key = static_cast<std::uint64_t>(day);
    if (util::stateless_uniform(outage_seed_, node, key * 3 + 0) >=
        config_.node_outage_per_day)
      continue;
    const auto start =
        day * kMinutesPerDay +
        static_cast<std::int64_t>(util::stateless_index(outage_seed_, node, key * 3 + 1,
                                                        kMinutesPerDay));
    // Exponential-ish duration: mean node_outage_mean_min, at least 1 minute.
    const double u = util::stateless_uniform(outage_seed_, node, key * 3 + 2);
    const auto duration = static_cast<std::int64_t>(
        1.0 - config_.node_outage_mean_min * std::log(1.0 - u * (1.0 - 1e-12)));
    if (minute >= start && minute < start + duration) return true;
  }
  return false;
}

std::optional<std::uint32_t> FaultModel::crash_minute(std::uint64_t job_id,
                                                      std::uint32_t runtime_min) const {
  if (!config_.enabled || runtime_min < 2) return std::nullopt;
  if (util::stateless_uniform(crash_seed_, job_id, 0) >= config_.node_crash_rate)
    return std::nullopt;
  // Crash somewhere in [1, runtime): at least one observed minute remains.
  const auto m = 1 + util::stateless_index(crash_seed_, job_id, 1, runtime_min - 1);
  return static_cast<std::uint32_t>(m);
}

bool FaultModel::accounting_lost(std::uint64_t job_id) const {
  if (!config_.enabled) return false;
  return util::stateless_uniform(accounting_seed_, job_id, 0) <
         config_.accounting_loss_rate;
}

bool FaultModel::reorder_row(std::uint64_t row_index) const {
  if (!config_.enabled) return false;
  return util::stateless_uniform(reorder_seed_, row_index, 0) < config_.reorder_rate;
}

}  // namespace hpcpower::telemetry

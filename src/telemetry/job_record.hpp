#pragma once
// The joined job-level dataset row: accounting record + monitoring aggregates.
//
// This mirrors the paper's released traces: per-job execution-wide averages
// for every job of the campaign, plus time/space-resolved metrics for jobs
// that ran inside the instrumented window (the paper instrumented one month).

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "cluster/system_spec.hpp"
#include "sched/exit_status.hpp"
#include "workload/application.hpp"
#include "workload/generator.hpp"
#include "workload/users.hpp"
#include "util/sim_time.hpp"

namespace hpcpower::telemetry {

/// Time/space-resolved metrics, only available for instrumented jobs.
struct DetailMetrics {
  /// (peak minute-mean power - mean) / mean over the run (Fig 6 left).
  double peak_overshoot = 0.0;
  /// Fraction of runtime with minute-mean power > 1.1x run mean (Fig 6 right).
  double frac_time_above_10pct = 0.0;
  /// Mean over runtime of (max node power - min node power) (Fig 8).
  double avg_spatial_spread_w = 0.0;
  /// avg_spatial_spread_w / mean per-node power.
  double spread_fraction_of_power = 0.0;
  /// Fraction of runtime with spatial spread above its run average (Fig 8).
  double frac_time_above_avg_spread = 0.0;
};

struct JobRecord {
  workload::JobId job_id = 0;
  workload::UserId user_id = 0;
  workload::AppId app = 0;
  cluster::SystemId system = cluster::SystemId::kCustom;

  util::MinuteTime submit{};
  util::MinuteTime start{};
  util::MinuteTime end{};
  std::uint32_t nnodes = 1;
  std::uint32_t walltime_req_min = 0;
  bool backfilled = false;
  bool truncated_by_horizon = false;
  /// How this attempt ended; records are per attempt, so a failure-killed
  /// job contributes one KILLED_NODE_FAIL record per killed attempt plus
  /// (possibly) its retry's record.
  sched::ExitStatus exit = sched::ExitStatus::kCompleted;
  std::uint32_t attempt = 1;

  /// The paper's central metric P: power averaged over runtime and nodes (W).
  double mean_node_power_w = 0.0;
  /// Std-dev of the per-minute across-node mean power (temporal variation, W).
  double temporal_std_w = 0.0;
  /// Max per-minute across-node mean power (W).
  double peak_node_power_w = 0.0;
  /// Mean RAPL domain split of the node power (W).
  double mean_pkg_w = 0.0;
  double mean_dram_w = 0.0;
  /// Total energy over all nodes and runtime (kWh).
  double energy_kwh = 0.0;
  /// Min/max per-node energy over the run (kWh) - Fig 10's raw ingredients.
  double node_energy_min_kwh = 0.0;
  double node_energy_max_kwh = 0.0;

  std::optional<DetailMetrics> detail;

  [[nodiscard]] std::uint32_t runtime_min() const noexcept {
    const std::int64_t m = (end - start).minutes();
    assert(m >= 0 && "job record ends before it starts");
    return m > 0 ? static_cast<std::uint32_t>(m) : 0u;
  }
  [[nodiscard]] double node_hours() const noexcept {
    return static_cast<double>(nnodes) * static_cast<double>(runtime_min()) / 60.0;
  }
  /// (max node energy - min node energy) / min node energy (Fig 10 metric).
  [[nodiscard]] double node_energy_spread_fraction() const noexcept;
  /// mean power / node TDP.
  [[nodiscard]] double tdp_fraction(double node_tdp_watts) const noexcept {
    return node_tdp_watts > 0.0 ? mean_node_power_w / node_tdp_watts : 0.0;
  }
};

}  // namespace hpcpower::telemetry

#include "telemetry/job_record.hpp"

namespace hpcpower::telemetry {

double JobRecord::node_energy_spread_fraction() const noexcept {
  if (node_energy_min_kwh <= 0.0) return 0.0;
  return (node_energy_max_kwh - node_energy_min_kwh) / node_energy_min_kwh;
}

}  // namespace hpcpower::telemetry

#include "core/system_analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hpcpower::core {

SystemUtilizationReport analyze_system_utilization(const CampaignData& data,
                                                   std::size_t series_points) {
  HPCPOWER_SPAN("analyze.system_utilization");
  const auto& power = data.series.total_power_w;
  const auto& busy = data.series.busy_nodes;
  if (power.empty() || power.size() != busy.size())
    throw std::invalid_argument("analyze_system_utilization: empty or ragged series");

  SystemUtilizationReport report;
  report.system = data.spec.name;
  const double provisioned = data.spec.provisioned_power_watts();
  const double total_nodes = data.spec.node_count;

  // Minute-level streaming aggregates fold blockwise (fixed reduction tree,
  // thread-count invariant; DESIGN.md §5).
  struct SeriesAcc {
    stats::RunningStats util_stats, power_stats;
  };
  const auto acc = util::blocked_accumulate<SeriesAcc>(
      power.size(),
      [&](SeriesAcc& a, std::size_t begin, std::size_t end) {
        for (std::size_t m = begin; m < end; ++m) {
          a.util_stats.add(static_cast<double>(busy[m]) / total_nodes);
          a.power_stats.add(power[m] / provisioned);
        }
      },
      [](SeriesAcc& a, const SeriesAcc& b) {
        a.util_stats.merge(b.util_stats);
        a.power_stats.merge(b.power_stats);
      });
  const stats::RunningStats& util_stats = acc.util_stats;
  const stats::RunningStats& power_stats = acc.power_stats;
  report.mean_system_utilization = util_stats.mean();
  report.mean_power_utilization = power_stats.mean();
  report.peak_power_utilization = power_stats.max();
  report.min_power_utilization = power_stats.min();
  report.stranded_power_fraction = 1.0 - report.mean_power_utilization;
  report.stranded_power_kw =
      report.stranded_power_fraction * provisioned / 1000.0;

  if (series_points > 0) {
    const std::size_t n = power.size();
    const std::size_t bucket = std::max<std::size_t>(1, n / series_points);
    const std::size_t buckets = (n + bucket - 1) / bucket;
    report.series.resize(buckets);
    util::parallel_for(buckets, [&](std::size_t b) {
      const std::size_t begin = b * bucket;
      const std::size_t end = std::min(n, begin + bucket);
      double u = 0.0, p = 0.0;
      for (std::size_t m = begin; m < end; ++m) {
        u += static_cast<double>(busy[m]) / total_nodes;
        p += power[m] / provisioned;
      }
      const auto count = static_cast<double>(end - begin);
      UtilizationPoint pt;
      pt.day = static_cast<double>(begin + (end - begin) / 2) / (24.0 * 60.0);
      pt.system_utilization = u / count;
      pt.power_utilization = p / count;
      report.series[b] = pt;
    });
  }
  return report;
}

double fraction_minutes_above_cap(const CampaignData& data, double cap_fraction) {
  const auto& power = data.series.total_power_w;
  if (power.empty())
    throw std::invalid_argument("fraction_minutes_above_cap: empty series");
  if (cap_fraction <= 0.0)
    throw std::invalid_argument("fraction_minutes_above_cap: cap must be positive");
  const double cap_watts = cap_fraction * data.spec.provisioned_power_watts();
  std::size_t above = 0;
  for (const double p : power) above += (p > cap_watts);
  return static_cast<double>(above) / static_cast<double>(power.size());
}

}  // namespace hpcpower::core

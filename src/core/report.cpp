#include "core/report.hpp"

#include <fstream>
#include <sstream>

#include "core/job_analysis.hpp"
#include "core/prediction.hpp"
#include "core/system_analysis.hpp"
#include "core/user_analysis.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

namespace hpcpower::core {

namespace {
void section_system(std::ostringstream& out, const CampaignData& data,
                    std::size_t points) {
  HPCPOWER_SPAN("report.section.system");
  const auto r = analyze_system_utilization(data, points);
  out << "### System-level utilization (Figs 1-2)\n\n";
  out << "| metric | value |\n|---|---|\n";
  out << util::format("| mean system utilization | %.1f%% |\n",
                      100.0 * r.mean_system_utilization);
  out << util::format("| mean power utilization | %.1f%% |\n",
                      100.0 * r.mean_power_utilization);
  out << util::format("| peak power utilization | %.1f%% |\n",
                      100.0 * r.peak_power_utilization);
  out << util::format("| stranded power | %.1f%% (%.0f kW) |\n\n",
                      100.0 * r.stranded_power_fraction, r.stranded_power_kw);
}

void section_jobs(std::ostringstream& out, const CampaignData& data) {
  HPCPOWER_SPAN("report.section.jobs");
  const auto power = analyze_per_node_power(data);
  const auto corr = analyze_correlations(data);
  const auto split = analyze_median_splits(data);
  out << "### Job-level power (Fig 3, Table 2, Fig 5)\n\n";
  out << util::format(
      "%zu completed jobs. Per-node power: mean **%.1f W** (%.0f%% of the "
      "%.0f W node TDP), std %.1f W (%.0f%% of mean), median %.1f W, "
      "p5/p95 %.0f/%.0f W.\n\n",
      power.watts.count, power.watts.mean, 100.0 * power.mean_tdp_fraction,
      data.spec.node_tdp_watts, power.watts.stddev,
      100.0 * power.std_fraction_of_mean, power.watts.median, power.watts.p05,
      power.watts.p95);
  out << "| correlation (Spearman) | rho | p |\n|---|---|---|\n";
  out << util::format("| runtime vs per-node power | %.2f | %.2g |\n",
                      corr.length_vs_power.coefficient, corr.length_vs_power.p_value);
  out << util::format("| nnodes vs per-node power | %.2f | %.2g |\n\n",
                      corr.size_vs_power.coefficient, corr.size_vs_power.p_value);
  out << "| split | mean %TDP | std %TDP | jobs |\n|---|---|---|---|\n";
  for (const auto* g : {&split.short_jobs, &split.long_jobs, &split.small_jobs,
                        &split.large_jobs})
    out << util::format("| %s | %.1f%% | %.1f%% | %zu |\n", g->label.c_str(),
                        100.0 * g->mean_tdp_fraction, 100.0 * g->std_tdp_fraction,
                        g->jobs);
  out << "\n";
}

void section_dynamics(std::ostringstream& out, const CampaignData& data) {
  HPCPOWER_SPAN("report.section.dynamics");
  const auto t = analyze_temporal(data);
  const auto s = analyze_spatial(data);
  const auto e = analyze_energy_spread(data);
  out << "### Temporal and spatial behaviour (Figs 6-10)\n\n";
  if (t.instrumented_jobs == 0) {
    out << "_No instrumented jobs in this campaign._\n\n";
    return;
  }
  out << util::format(
      "%zu instrumented jobs. Temporal: mean std/mean %.1f%%, mean peak "
      "overshoot %.1f%%, %.0f%% of jobs never exceed +10%% of their mean, "
      "average time above +10%% is %.1f%% of runtime.\n\n",
      t.instrumented_jobs, 100.0 * t.mean_temporal_cv, 100.0 * t.mean_peak_overshoot,
      100.0 * t.fraction_jobs_never_above, 100.0 * t.mean_time_above_10pct);
  out << util::format(
      "Spatial (%zu multi-node jobs): mean average spread %.1f W (max %.1f W), "
      "%.1f%% of per-node power, above own average %.0f%% of runtime. Node "
      "energy: %.0f%% of jobs exceed 15%% max-min difference (Spearman vs "
      "node count: %.2f).\n\n",
      s.instrumented_multinode_jobs, s.mean_avg_spread_w, s.max_avg_spread_w,
      100.0 * s.mean_spread_fraction, 100.0 * s.mean_time_above_avg_spread,
      100.0 * e.fraction_above_15pct, e.spread_vs_nnodes.coefficient);
}

void section_users(std::ostringstream& out, const CampaignData& data,
                   std::size_t points) {
  HPCPOWER_SPAN("report.section.users");
  const auto c = analyze_concentration(data, {}, points);
  const auto v = analyze_user_variability(data);
  const auto cn = analyze_cluster_variability(data, ClusterKey::kUserNodes);
  const auto cw = analyze_cluster_variability(data, ClusterKey::kUserWalltime);
  out << "### User-level behaviour (Figs 11-13)\n\n";
  out << util::format(
      "%zu active users. Top 20%% consume %.0f%% of node-hours and %.0f%% of "
      "energy (top-set overlap %.0f%%; Gini %.2f / %.2f).\n\n",
      c.users, 100.0 * c.top20_node_hours_share, 100.0 * c.top20_energy_share,
      100.0 * c.top20_overlap, c.node_hours_gini, c.energy_gini);
  out << util::format(
      "Per-user variability (>=5 jobs, %zu users): power CV %.0f%%, nnodes CV "
      "%.0f%%, runtime CV %.0f%%. Clustered by (user, nnodes): %.0f%% of %zu "
      "clusters below 10%% power std; by (user, walltime): %.0f%% of %zu.\n\n",
      v.eligible_users, 100.0 * v.mean_power_cv, 100.0 * v.mean_nnodes_cv,
      100.0 * v.mean_runtime_cv, 100.0 * cn.share_below_10, cn.clusters,
      100.0 * cw.share_below_10, cw.clusters);
}

void section_quality(std::ostringstream& out, const CampaignData& data) {
  HPCPOWER_SPAN("report.section.quality");
  const auto& q = data.quality;
  out << "### Telemetry data quality (Sec 2.2)\n\n";
  const double n = q.samples_expected ? static_cast<double>(q.samples_expected) : 1.0;
  out << "| samples | count | share |\n|---|---|---|\n";
  out << util::format("| expected | %llu | 100%% |\n",
                      static_cast<unsigned long long>(q.samples_expected));
  out << util::format("| ok | %llu | %.2f%% |\n",
                      static_cast<unsigned long long>(q.samples_ok),
                      100.0 * static_cast<double>(q.samples_ok) / n);
  out << util::format("| glitch (repaired %llu) | %llu | %.2f%% |\n",
                      static_cast<unsigned long long>(q.glitches_repaired),
                      static_cast<unsigned long long>(q.samples_glitch),
                      100.0 * static_cast<double>(q.samples_glitch) / n);
  out << util::format("| gap (interpolated %llu) | %llu | %.2f%% |\n",
                      static_cast<unsigned long long>(q.samples_interpolated),
                      static_cast<unsigned long long>(q.samples_gap),
                      100.0 * static_cast<double>(q.samples_gap) / n);
  out << util::format("| duplicate | %llu | %.2f%% |\n\n",
                      static_cast<unsigned long long>(q.samples_duplicate),
                      100.0 * static_cast<double>(q.samples_duplicate) / n);
  out << util::format(
      "%llu jobs ingested; %llu quarantined (%llu missing accounting, %llu "
      "with too little valid telemetry), %llu truncated by node crashes. Node "
      "dropout rate: mean %.2f%%, worst node %u at %.2f%% (%u nodes with "
      "gaps). Ledger %s.\n\n",
      static_cast<unsigned long long>(q.jobs_seen),
      static_cast<unsigned long long>(q.jobs_quarantined()),
      static_cast<unsigned long long>(q.jobs_quarantined_accounting),
      static_cast<unsigned long long>(q.jobs_quarantined_low_quality),
      static_cast<unsigned long long>(q.jobs_truncated_by_crash),
      100.0 * q.mean_node_dropout_rate, q.worst_node,
      100.0 * q.max_node_dropout_rate, q.nodes_with_gaps,
      q.reconciles() ? "reconciles" : "**does not reconcile**");
  if (q.rows_shed > 0) {
    // Streaming ingest only: emitted after the ledger line so batch-mode
    // reports (rows_shed == 0) stay byte-identical to earlier releases.
    out << util::format(
        "Degraded-mode ingest shed %llu per-sample detail rows into summary "
        "sketches.\n\n",
        static_cast<unsigned long long>(q.rows_shed));
  }
}

void section_availability(std::ostringstream& out, const CampaignData& data) {
  HPCPOWER_SPAN("report.section.availability");
  const auto& a = data.availability;
  out << "### Availability & failure impact\n\n";
  const double total_nh = static_cast<double>(a.node_minutes_total) / 60.0;
  const double lost_nh = static_cast<double>(a.node_minutes_down) / 60.0;
  const double delivered_nh = static_cast<double>(a.node_minutes_delivered()) / 60.0;
  // Energy the killed attempts burned before dying: compute that produced no
  // completed result (the retry redoes the work from scratch).
  double wasted_kwh = 0.0;
  std::uint64_t killed_records = 0;
  for (const auto& r : data.records) {
    if (r.exit == sched::ExitStatus::kKilledNodeFail) {
      wasted_kwh += r.energy_kwh;
      ++killed_records;
    }
  }
  out << "| metric | value |\n|---|---|\n";
  out << util::format("| campaign node-hours | %.1f |\n", total_nh);
  out << util::format("| delivered node-hours | %.1f (%.2f%%) |\n", delivered_nh,
                      a.node_minutes_total
                          ? 100.0 * delivered_nh / total_nh
                          : 0.0);
  out << util::format("| node-hours lost to failures | %.1f (%.2f%%) |\n", lost_nh,
                      a.node_minutes_total ? 100.0 * lost_nh / total_nh : 0.0);
  out << util::format("| node failures | %llu |\n",
                      static_cast<unsigned long long>(a.node_failures));
  out << util::format("| job attempts killed | %llu |\n",
                      static_cast<unsigned long long>(a.attempts_killed));
  out << util::format("| attempts requeued / budget exhausted | %llu / %llu |\n",
                      static_cast<unsigned long long>(a.requeues),
                      static_cast<unsigned long long>(a.requeues_exhausted));
  out << util::format(
      "| energy wasted by killed attempts | %.1f kWh (%llu records) |\n",
      wasted_kwh, static_cast<unsigned long long>(killed_records));
  out << util::format("| requeue-induced wait | %.0f min total |\n\n",
                      a.requeue_wait_minutes);
  out << util::format(
      "Ledger %s: delivered + lost = %.1f + %.1f = %.1f node-hours.\n\n",
      a.node_minutes_delivered() + a.node_minutes_down == a.node_minutes_total
          ? "reconciles"
          : "**does not reconcile**",
      delivered_nh, lost_nh, total_nh);
}

void section_power(std::ostringstream& out, const CampaignData& data) {
  HPCPOWER_SPAN("report.section.power");
  const auto& p = *data.power;
  out << "### Closed-loop power management\n\n";
  out << util::format(
      "Site cap %.0f W (admission pool %.0f W after the idle floor), guard "
      "band %.0f%%, predictor `%s`.\n\n",
      p.site_cap_w, p.pool_w, 100.0 * p.guard_band, p.predictor.c_str());
  out << "| metric | value |\n|---|---|\n";
  out << util::format("| jobs granted | %llu |\n",
                      static_cast<unsigned long long>(p.jobs_granted));
  out << util::format("| granted / released | %.3f / %.3f kW-grants |\n",
                      static_cast<double>(p.granted_mw) / 1e6,
                      static_cast<double>(p.released_mw) / 1e6);
  out << util::format("| still held / throttled at end | %.3f / %.3f kW |\n",
                      static_cast<double>(p.held_mw) / 1e6,
                      static_cast<double>(p.throttled_mw) / 1e6);
  out << util::format("| peak committed grant | %.1f kW |\n",
                      static_cast<double>(p.peak_held_mw) / 1e6);
  out << util::format(
      "| minutes NORMAL / THROTTLE / DEGRADED | %llu / %llu / %llu |\n",
      static_cast<unsigned long long>(p.minutes_normal),
      static_cast<unsigned long long>(p.minutes_throttle),
      static_cast<unsigned long long>(p.minutes_degraded));
  out << util::format("| throttle / degraded events | %llu / %llu |\n",
                      static_cast<unsigned long long>(p.throttle_events),
                      static_cast<unsigned long long>(p.degraded_events));
  out << util::format(
      "| meter samples (faulty / rejected) | %llu (%llu / %llu) |\n",
      static_cast<unsigned long long>(p.meter_samples),
      static_cast<unsigned long long>(p.meter_faults_injected),
      static_cast<unsigned long long>(p.meter_samples_rejected));
  out << util::format("| max true site power | %.1f W (headroom %.1f W) |\n",
                      p.max_true_site_w, p.headroom_w());
  out << util::format("| cap-violation minutes | %llu |\n",
                      static_cast<unsigned long long>(p.cap_violation_minutes));
  out << util::format(
      "| stranded power recovered | %.1f W mean (committed %.1f W vs %.1f W "
      "at TDP) |\n\n",
      p.mean_stranded_recovered_w(), p.mean_committed_w,
      p.mean_tdp_committed_w);
  out << util::format(
      "Power-budget ledger %s: granted = released + held + throttled "
      "(%lld = %lld + %lld + %lld mW).\n\n",
      p.ledger_reconciles ? "reconciles" : "**does not reconcile**",
      static_cast<long long>(p.granted_mw), static_cast<long long>(p.released_mw),
      static_cast<long long>(p.held_mw), static_cast<long long>(p.throttled_mw));
}

void section_prediction(std::ostringstream& out, const CampaignData& data,
                        const ml::EvaluationConfig& cfg) {
  HPCPOWER_SPAN("report.section.prediction");
  const auto p = analyze_prediction(data, {}, cfg);
  out << "### Pre-execution power prediction (Figs 14-15)\n\n";
  out << util::format("%zu jobs, %.0f/%.0f split x %zu repeats.\n\n", p.jobs,
                      100.0 * cfg.train_fraction, 100.0 * (1.0 - cfg.train_fraction),
                      cfg.repeats);
  out << "| model | <5% err | <10% err | mean err | users <5% |\n"
         "|---|---|---|---|---|\n";
  for (const auto& m : p.models)
    out << util::format("| %s | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
                        m.model.c_str(), 100.0 * m.fraction_below(0.05),
                        100.0 * m.fraction_below(0.10), 100.0 * m.mean_error(),
                        100.0 * m.user_fraction_below(0.05));
  out << "\n";
}
}  // namespace

std::string render_markdown_report(const std::vector<CampaignData>& campaigns,
                                   const ReportOptions& options) {
  HPCPOWER_SPAN("report.render");
  std::ostringstream out;
  out << "# HPC power consumption study report\n\n";
  out << "Generated by hpcpower; reproduces the analyses of Patel et al., "
         "\"What does Power Consumption Behavior of HPC Jobs Reveal?\".\n\n";
  for (const CampaignData& data : campaigns) {
    out << util::format("## %s (%u nodes, %.0f W node TDP)\n\n",
                        data.spec.name.c_str(), data.spec.node_count,
                        data.spec.node_tdp_watts);
    out << util::format(
        "Campaign: %zu job records over %.1f days; scheduler started %llu "
        "jobs, %.1f%% via backfill, mean queue wait %.0f min.\n\n",
        data.records.size(),
        static_cast<double>(data.series.total_power_w.size()) / (24.0 * 60.0),
        static_cast<unsigned long long>(data.scheduler.started),
        data.scheduler.started
            ? 100.0 * static_cast<double>(data.scheduler.backfilled) /
                  static_cast<double>(data.scheduler.started)
            : 0.0,
        data.scheduler.mean_wait_minutes());
    section_system(out, data, options.curve_points);
    if (data.availability.node_minutes_total > 0) section_availability(out, data);
    // rows_shed alone also triggers the section: a streamed campaign that
    // shed detail must say so even when no telemetry faults were injected.
    if (data.quality.samples_expected > 0 || data.quality.rows_shed > 0)
      section_quality(out, data);
    if (data.power) section_power(out, data);
    section_jobs(out, data);
    section_dynamics(out, data);
    section_users(out, data, options.curve_points);
    if (options.include_prediction)
      section_prediction(out, data, options.prediction_config);
  }
  return out.str();
}

void write_markdown_report(const std::string& path,
                           const std::vector<CampaignData>& campaigns,
                           const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << render_markdown_report(campaigns, options);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace hpcpower::core

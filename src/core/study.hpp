#pragma once
// Study orchestration: run the full measurement campaign for one or both
// systems and hand the resulting dataset to the analyzers.
//
// This is the top-level entry point of the library: benches, examples, and
// integration tests all start from StudyConfig + run_campaign().

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/system_spec.hpp"
#include "power/manager.hpp"
#include "power/predictor.hpp"
#include "sched/simulator.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/generator.hpp"

namespace hpcpower::obs {
class SelfMonitor;
}

namespace hpcpower::core {

struct StudyConfig {
  std::uint64_t seed = 42;
  /// Campaign length. The paper's campaign is 151 days (Oct'18-Feb'19);
  /// the default benches use a shorter window for wall-clock reasons -
  /// all reproduced quantities are distributional and scale-invariant.
  double days = 14.0;
  /// Warm-up simulated before the measurement campaign starts, so the
  /// machine is in queue-pressure steady state at t=0 (production systems
  /// do not start empty). Warm-up telemetry is discarded.
  double warmup_days = 3.0;
  /// Detailed (time/space-resolved) instrumentation window, like the paper's
  /// one instrumented month. Relative to campaign start (after warm-up).
  double instrument_begin_day = 1.0;
  double instrument_end_day = 8.0;
  /// Extra arrival-rate multiplier (1.0 = calibrated offered load).
  double load_scale = 1.0;
  /// Optional static per-node power cap in watts (<= 0: uncapped).
  double node_power_cap_w = 0.0;
  /// Queueing discipline (EASY backfill in production; FCFS for ablation).
  sched::SchedulerPolicy scheduler_policy = sched::SchedulerPolicy::kFcfsBackfill;
  /// Optional power-aware admission budget (the over-provisioning studies);
  /// watts <= 0 disables it.
  sched::PowerBudget power_budget;
  /// Telemetry fault injection (off by default: clean campaigns stay
  /// bit-identical to earlier releases) and the ingest cleaning policy
  /// applied when faults are on.
  telemetry::FaultConfig faults;
  telemetry::CleaningConfig cleaning;
  /// Node failure / repair / requeue model (off by default: the scheduler
  /// runs a perfect machine and every campaign stays bit-identical).
  sched::FailureConfig node_failures;
  /// Closed-loop hierarchical power manager (off by default). When enabled it
  /// owns the power story end to end: admission estimates are rewritten to
  /// predictor * (1 + guard band), the scheduler budget is set to the
  /// manager's pool, and per-node caps follow the NORMAL/THROTTLE/DEGRADED
  /// state machine instead of node_power_cap_w / power_budget above.
  power::PowerManagerConfig power_manager;
  /// Live telemetry export tap for the streaming ingest daemon (src/stream).
  /// Forwarded verbatim to the monitoring pipeline; empty callbacks are free
  /// and leave the campaign bit-identical to earlier releases.
  telemetry::StreamTap tap;
  /// Continuous self-monitoring (obs/monitor.hpp): when non-null, every
  /// simulated minute reaches SelfMonitor::on_minute() after the
  /// telemetry/power hooks ran, sampling the metric registry on its
  /// deterministic cadence and evaluating the SLO burn-rate rules. The
  /// monitor only observes — campaigns and deterministic report sections
  /// stay byte-identical with monitoring on or off (DESIGN.md §6). Not
  /// owned; must outlive the campaign.
  obs::SelfMonitor* monitor = nullptr;

  [[nodiscard]] static StudyConfig paper_scale(std::uint64_t seed = 42) {
    StudyConfig c;
    c.seed = seed;
    c.days = 151.0;
    c.instrument_begin_day = 61.0;   // "December"
    c.instrument_end_day = 92.0;
    return c;
  }
};

/// Everything the analyzers consume for one system.
struct CampaignData {
  cluster::SystemSpec spec;
  std::vector<telemetry::JobRecord> records;
  telemetry::SystemSeries series;
  sched::SchedulerStats scheduler;
  /// Availability ledger (node-hours lost, kills, requeues); all-zero when
  /// the node-failure model was disabled. Covers the full simulated horizon
  /// including warm-up.
  sched::AvailabilityStats availability;
  std::uint64_t throttled_samples = 0;
  /// Ingest ledger; all-zero when fault injection was disabled.
  telemetry::DataQualityReport quality;
  /// Closed-loop power accounting; present only when the power manager ran.
  std::optional<power::PowerReport> power;
};

/// Simulates the full campaign for `spec` (workload generation, scheduling,
/// telemetry) and returns the joined dataset. Deterministic per config.
[[nodiscard]] CampaignData run_campaign(const cluster::SystemSpec& spec,
                                        const StudyConfig& config);

/// Same, with an explicit admission predictor for the power manager (e.g. a
/// tree trained on a pilot campaign). Null falls back to the configured
/// default (submission estimates, optionally noise-wrapped). Ignored unless
/// config.power_manager.enabled.
[[nodiscard]] CampaignData run_campaign(
    const cluster::SystemSpec& spec, const StudyConfig& config,
    std::shared_ptr<const power::NodePowerPredictor> predictor);

/// Runs both studied systems (Emmy, then Meggie) with the same config.
[[nodiscard]] std::vector<CampaignData> run_both_systems(const StudyConfig& config);

}  // namespace hpcpower::core

#include "core/power_study.hpp"

#include <sstream>

#include "obs/span.hpp"
#include "util/strings.hpp"

namespace hpcpower::core {

PowerMatrixReport run_power_scenario_matrix(const cluster::SystemSpec& spec,
                                            const StudyConfig& base,
                                            const PowerScenarioAxes& axes) {
  HPCPOWER_SPAN("power.scenario_matrix");
  PowerMatrixReport matrix;
  matrix.axes = axes;
  for (const double cap : axes.cap_fractions) {
    for (const double sigma : axes.predictor_sigmas) {
      for (const double mtbf : axes.failure_mtbf_days) {
        StudyConfig config = base;
        config.power_manager.enabled = true;
        config.power_manager.site_cap_fraction = cap;
        config.power_manager.site_cap_w = 0.0;
        config.power_manager.predictor_error_sigma = sigma;
        config.power_manager.meter_fault_rate = axes.meter_fault_rate;
        config.node_failures.enabled = mtbf > 0.0;
        if (mtbf > 0.0) config.node_failures.mtbf_days = mtbf;

        const CampaignData data = run_campaign(spec, config);
        PowerScenarioRow row;
        row.cap_fraction = cap;
        row.predictor_sigma = sigma;
        row.failure_mtbf_days = mtbf > 0.0 ? mtbf : 0.0;
        row.report = *data.power;
        row.cap_violated = row.report.cap_violation_minutes > 0;
        row.ledger_reconciles = row.report.ledger_reconciles;
        matrix.any_cap_violated |= row.cap_violated;
        matrix.all_ledgers_reconcile &= row.ledger_reconciles;
        matrix.rows.push_back(std::move(row));
      }
    }
  }
  return matrix;
}

std::string render_power_matrix_markdown(const PowerMatrixReport& matrix) {
  std::ostringstream out;
  out << "### Closed-loop robustness matrix (cap x predictor x failures)\n\n";
  out << "| cap | sigma | MTBF (d) | max site W / cap W | headroom W | "
         "recovered W | thr/deg min | meter rej | cap ok | ledger |\n"
         "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& row : matrix.rows) {
    const auto& p = row.report;
    out << util::format(
        "| %.0f%% | %.2f | %s | %.0f / %.0f | %.0f | %.1f | %llu/%llu | %llu "
        "| %s | %s |\n",
        100.0 * row.cap_fraction, row.predictor_sigma,
        row.failure_mtbf_days > 0.0
            ? util::format("%.1f", row.failure_mtbf_days).c_str()
            : "off",
        p.max_true_site_w, p.site_cap_w, p.headroom_w(),
        p.mean_stranded_recovered_w(),
        static_cast<unsigned long long>(p.minutes_throttle),
        static_cast<unsigned long long>(p.minutes_degraded),
        static_cast<unsigned long long>(p.meter_samples_rejected),
        row.cap_violated ? "**VIOLATED**" : "yes",
        row.ledger_reconciles ? "exact" : "**broken**");
  }
  out << util::format(
      "\nSafety: site cap %s across %zu scenarios; power ledger %s.\n",
      matrix.any_cap_violated ? "**VIOLATED**" : "never exceeded",
      matrix.rows.size(),
      matrix.all_ledgers_reconcile ? "reconciles exactly in every cell"
                                   : "**fails to reconcile**");
  return out.str();
}

}  // namespace hpcpower::core

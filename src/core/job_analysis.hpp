#pragma once
// Job-level power characterization (Sec 4, RQ3-RQ5):
// per-node power distributions (Fig 3), per-application cross-system
// comparison (Fig 4), length/size correlations (Table 2, Fig 5), temporal
// metrics (Figs 6-7), spatial metrics (Figs 8-9), node-energy spread (Fig 10).

#include <string>
#include <vector>

#include "core/study.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace hpcpower::core {

/// Which job records enter an analysis. The paper analyzes completed jobs;
/// horizon-truncated records are excluded by default, as are zero-length ones.
struct JobFilter {
  bool include_truncated = false;
  std::uint32_t min_runtime_min = 1;
  std::uint32_t min_nnodes = 1;

  [[nodiscard]] bool accepts(const telemetry::JobRecord& r) const noexcept {
    if (!include_truncated && r.truncated_by_horizon) return false;
    if (r.runtime_min() < min_runtime_min) return false;
    if (r.nnodes < min_nnodes) return false;
    return true;
  }
};

// ---------- Fig 3: per-node power PDF -------------------------------------

struct PerNodePowerReport {
  std::string system;
  stats::Summary watts;           // mean ~149 W / 114 W
  double mean_tdp_fraction = 0.0; // ~0.71 / ~0.59
  double std_fraction_of_mean = 0.0;  // ~0.26 / ~0.18
  stats::Histogram histogram;     // the PDF of Fig 3
};

[[nodiscard]] PerNodePowerReport analyze_per_node_power(const CampaignData& data,
                                                        const JobFilter& filter = {},
                                                        std::size_t bins = 40);

// ---------- Fig 4: key applications across systems -------------------------

struct AppPowerEntry {
  std::string app_name;
  double mean_power_w = 0.0;
  double std_power_w = 0.0;
  std::size_t jobs = 0;
};

/// Mean per-node power of the five key applications on one system, in
/// catalog order (compare across systems to see the ranking swap).
[[nodiscard]] std::vector<AppPowerEntry> analyze_app_power(
    const CampaignData& data, const workload::ApplicationCatalog& catalog,
    const JobFilter& filter = {});

// ---------- Table 2: correlations ------------------------------------------

struct CorrelationReport {
  std::string system;
  stats::CorrelationResult length_vs_power;  // Emmy 0.42, Meggie 0.12
  stats::CorrelationResult size_vs_power;    // Emmy 0.21, Meggie 0.42
};

[[nodiscard]] CorrelationReport analyze_correlations(const CampaignData& data,
                                                     const JobFilter& filter = {});

// ---------- Fig 5: median splits --------------------------------------------

struct MedianSplitGroup {
  std::string label;               // "short", "long", "small", "large"
  double mean_tdp_fraction = 0.0;
  double std_tdp_fraction = 0.0;
  std::size_t jobs = 0;
};

struct MedianSplitReport {
  std::string system;
  double median_runtime_min = 0.0;
  double median_nnodes = 0.0;
  MedianSplitGroup short_jobs, long_jobs, small_jobs, large_jobs;
};

[[nodiscard]] MedianSplitReport analyze_median_splits(const CampaignData& data,
                                                      const JobFilter& filter = {});

// ---------- Figs 6-7: temporal metrics --------------------------------------

struct TemporalReport {
  std::string system;
  std::size_t instrumented_jobs = 0;
  /// Mean over jobs of temporal std / mean (~0.11 in the paper).
  double mean_temporal_cv = 0.0;
  stats::Ecdf peak_overshoot_cdf;         // Fig 7(a); mean ~0.10-0.12
  stats::Ecdf time_above_10pct_cdf;       // Fig 7(b); >70% of jobs ~0
  double mean_peak_overshoot = 0.0;
  double mean_time_above_10pct = 0.0;
  double fraction_jobs_never_above = 0.0; // jobs with ~0 time above +10%
};

[[nodiscard]] TemporalReport analyze_temporal(const CampaignData& data,
                                              const JobFilter& filter = {});

// ---------- Figs 8-9: spatial metrics ----------------------------------------

struct SpatialReport {
  std::string system;
  std::size_t instrumented_multinode_jobs = 0;
  stats::Ecdf avg_spread_w_cdf;            // Fig 9(a); mean ~20 W
  stats::Ecdf spread_fraction_cdf;         // Fig 9(b); mean ~0.15
  stats::Ecdf time_above_avg_spread_cdf;   // Fig 9(c); mean ~0.30
  double mean_avg_spread_w = 0.0;
  double max_avg_spread_w = 0.0;
  double mean_spread_fraction = 0.0;
  double mean_time_above_avg_spread = 0.0;
};

[[nodiscard]] SpatialReport analyze_spatial(const CampaignData& data,
                                            const JobFilter& filter = {});

// ---------- Fig 10: node-energy spread ---------------------------------------

struct EnergySpreadReport {
  std::string system;
  std::size_t multinode_jobs = 0;
  stats::Histogram histogram;              // PDF of (max-min)/min node energy
  /// Fraction of jobs with > 15% node-energy difference (~0.20 in the paper).
  double fraction_above_15pct = 0.0;
  double mean_spread_fraction = 0.0;
  /// Spearman of spread vs node count (paper: positively correlated).
  stats::CorrelationResult spread_vs_nnodes;
};

[[nodiscard]] EnergySpreadReport analyze_energy_spread(const CampaignData& data,
                                                       const JobFilter& filter = {},
                                                       std::size_t bins = 30);

// ---------- Consistency over time --------------------------------------------

/// Per-window per-node power moments. The paper states it "verified that the
/// characteristics observed in Fig 3 remain consistent throughout the months
/// and are not a result of a particularly atypical phase"; this is that
/// check, with windows of `window_days` over the campaign.
struct ConsistencyWindow {
  double begin_day = 0.0;
  std::size_t jobs = 0;
  double mean_power_w = 0.0;
  double std_power_w = 0.0;
};

struct ConsistencyReport {
  std::string system;
  std::vector<ConsistencyWindow> windows;
  /// Max absolute deviation of a window mean from the overall mean, relative.
  double max_mean_deviation = 0.0;
};

[[nodiscard]] ConsistencyReport analyze_monthly_consistency(const CampaignData& data,
                                                            double window_days = 30.0,
                                                            const JobFilter& filter = {});

}  // namespace hpcpower::core

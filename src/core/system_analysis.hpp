#pragma once
// System-level utilization and power analysis (Sec 3, RQ1-RQ2, Figs 1-2).

#include <vector>

#include "core/study.hpp"

namespace hpcpower::core {

/// One downsampled point of the Fig 1 / Fig 2 time series.
struct UtilizationPoint {
  double day = 0.0;
  double system_utilization = 0.0;  ///< busy nodes / total nodes
  double power_utilization = 0.0;   ///< consumed power / provisioned power
};

struct SystemUtilizationReport {
  std::string system;
  double mean_system_utilization = 0.0;   // paper: Emmy 0.87, Meggie 0.80
  double mean_power_utilization = 0.0;    // paper: Emmy 0.69, Meggie 0.51
  double peak_power_utilization = 0.0;    // paper: Emmy <= 0.85, Meggie <= 0.70
  double min_power_utilization = 0.0;
  /// 1 - mean power utilization: the paper's "stranded power" fraction.
  double stranded_power_fraction = 0.0;
  /// Mean stranded kilowatts (provisioned minus consumed).
  double stranded_power_kw = 0.0;
  std::vector<UtilizationPoint> series;   // downsampled for display
};

/// Computes Fig 1 + Fig 2 quantities. `series_points` controls downsampling
/// of the displayed time series (0 = omit the series).
[[nodiscard]] SystemUtilizationReport analyze_system_utilization(
    const CampaignData& data, std::size_t series_points = 48);

/// What-if: power utilization if the whole system were capped at
/// `cap_fraction` of provisioned power, with demand above the cap clipped.
/// Returns the fraction of minutes in which clipping would have occurred.
[[nodiscard]] double fraction_minutes_above_cap(const CampaignData& data,
                                                double cap_fraction);

}  // namespace hpcpower::core

#pragma once
// What-if policy evaluation on recorded campaigns (Sec 5-6 use cases).
//
// These analyses work from JobRecords alone - simulated or loaded from trace
// files - so policies can be assessed against recorded workloads without
// re-running anything.

#include <vector>

#include "core/job_analysis.hpp"
#include "core/study.hpp"

namespace hpcpower::core {

/// Outcome of applying one static per-node power cap to a recorded campaign.
struct StaticCapOutcome {
  double cap_w = 0.0;
  /// Fraction of jobs whose *mean* demand exceeds the cap (hard-throttled:
  /// they run power-limited for their whole life).
  double jobs_mean_over_cap = 0.0;
  /// Fraction of jobs whose *peak* exceeds the cap (at least briefly limited).
  double jobs_peak_over_cap = 0.0;
  /// Node-hour-weighted mean slowdown estimate from the RAPL throttling
  /// model (1.0 = no slowdown).
  double mean_slowdown = 1.0;
  /// Worst per-job slowdown estimate.
  double max_slowdown = 1.0;
  /// Energy the cap sheds, as a fraction of the campaign's compute energy
  /// (clipping the mean demand above the cap; peaks excluded).
  double energy_clipped_fraction = 0.0;
  /// Provisioned-power headroom the cap releases vs TDP provisioning.
  double provisioned_power_released_fraction = 0.0;
};

/// Evaluates one static per-node cap against recorded jobs.
[[nodiscard]] StaticCapOutcome evaluate_static_cap(const CampaignData& data,
                                                   double cap_w,
                                                   const JobFilter& filter = {});

/// Sweeps caps between `lo_fraction` and `hi_fraction` of the node TDP.
[[nodiscard]] std::vector<StaticCapOutcome> sweep_static_caps(
    const CampaignData& data, double lo_fraction, double hi_fraction,
    std::size_t steps, const JobFilter& filter = {});

}  // namespace hpcpower::core

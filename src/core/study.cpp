#include "core/study.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "obs/monitor.hpp"
#include "obs/span.hpp"
#include "power/hooks.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace hpcpower::core {

CampaignData run_campaign(const cluster::SystemSpec& spec, const StudyConfig& config) {
  return run_campaign(spec, config, nullptr);
}

CampaignData run_campaign(const cluster::SystemSpec& spec, const StudyConfig& config,
                          std::shared_ptr<const power::NodePowerPredictor> predictor) {
  HPCPOWER_SPAN("campaign.run");
  const util::MinuteTime warmup = util::MinuteTime::from_days(config.warmup_days);
  const bool managed = config.power_manager.enabled;

  workload::GeneratorConfig gcfg;
  gcfg.seed = config.seed;
  gcfg.duration = warmup + util::MinuteTime::from_days(config.days);
  gcfg.load_scale = config.load_scale;
  workload::WorkloadGenerator generator(spec, workload::calibration_for(spec.id), gcfg);
  auto jobs = [&] {
    HPCPOWER_SPAN("campaign.workload");
    return generator.generate();
  }();

  std::optional<power::ClusterPowerManager> manager;
  if (managed) {
    if (!predictor) predictor = std::make_shared<power::EstimatePredictor>(spec.node_tdp_watts);
    if (config.power_manager.predictor_error_sigma > 0.0) {
      predictor = std::make_shared<power::NoisyPredictor>(
          std::move(predictor), config.power_manager.predictor_error_sigma,
          config.seed);
    }
    manager.emplace(spec, config.power_manager, predictor, config.seed);
    // Admission control: every submission is budgeted at the predicted
    // per-node power plus the guard band; the scheduler's power budget is
    // the manager's pool, so jobs whose summed admission estimates would
    // exceed it wait (or are cancelled when they can never fit).
    for (auto& job : jobs)
      job.estimated_node_power_w = manager->admission_estimate_w(job);
  }

  telemetry::PipelineConfig pcfg;
  pcfg.seed = config.seed;
  pcfg.instrument_begin = warmup + util::MinuteTime::from_days(config.instrument_begin_day);
  pcfg.instrument_end = warmup + util::MinuteTime::from_days(config.instrument_end_day);
  pcfg.node_power_cap_w = config.node_power_cap_w;
  pcfg.faults = config.faults;
  pcfg.cleaning = config.cleaning;
  pcfg.tap = config.tap;
  if (managed) {
    pcfg.job_node_cap_w = [&m = *manager](workload::JobId id) {
      return m.node_cap_w(id);
    };
  }
  telemetry::MonitoringPipeline pipeline(spec, pcfg);

  sched::PowerBudget budget = config.power_budget;
  if (managed) {
    budget.watts = manager->pool_w();
    budget.fallback_node_power_w = spec.node_tdp_watts;
  }
  if (budget.enabled() && budget.fallback_node_power_w <= 0.0)
    budget.fallback_node_power_w = spec.node_tdp_watts;
  sched::CampaignSimulator simulator(spec.node_count, gcfg.duration,
                                     config.scheduler_policy, budget,
                                     config.node_failures, config.seed);
  sched::SimulationHooks hooks = pipeline.hooks();
  if (managed) {
    // The site meter reads the facility draw the pipeline just metered for
    // this minute (true value; the manager injects its own meter faults).
    hooks = power::managed_hooks(*manager, std::move(hooks), [&pipeline]() {
      return pipeline.system_series().total_power_w.back();
    });
  }
  if (config.monitor) {
    // Same composition idiom as power::managed_hooks: the monitor samples
    // *after* the telemetry/power hooks so the minute's gauges are final.
    // It only reads, so the campaign stays bit-identical with or without it.
    hooks.per_minute = [monitor = config.monitor,
                        per_minute = std::move(hooks.per_minute)](
                           util::MinuteTime now,
                           const std::vector<const sched::RunningJob*>& running,
                           std::uint32_t down_nodes) {
      if (per_minute) per_minute(now, running, down_nodes);
      monitor->on_minute(now.minutes());
    };
  }
  const auto sim_result = [&] {
    HPCPOWER_SPAN("campaign.simulate");
    return simulator.run(jobs, hooks);
  }();

  CampaignData data;
  data.spec = spec;
  data.records = std::move(pipeline.records());
  data.series = pipeline.system_series();
  data.scheduler = sim_result.scheduler;
  data.availability = sim_result.availability;
  data.throttled_samples = pipeline.throttled_samples();
  data.quality = pipeline.quality_report();
  if (managed) data.power = manager->report();

  // Discard warm-up telemetry: the campaign "begins" with the machine busy.
  if (warmup.minutes() > 0) {
    const auto w = static_cast<std::size_t>(
        std::min<std::int64_t>(warmup.minutes(),
                               static_cast<std::int64_t>(data.series.total_power_w.size())));
    data.series.total_power_w.erase(data.series.total_power_w.begin(),
                                    data.series.total_power_w.begin() +
                                        static_cast<std::ptrdiff_t>(w));
    data.series.busy_nodes.erase(data.series.busy_nodes.begin(),
                                 data.series.busy_nodes.begin() +
                                     static_cast<std::ptrdiff_t>(w));
    std::erase_if(data.records, [&](const telemetry::JobRecord& r) {
      return r.end <= warmup;
    });
  }

  util::log_info(util::format(
      "%s campaign: %zu jobs recorded, %.0f days, mean queue wait %.0f min",
      spec.name.c_str(), data.records.size(), config.days,
      data.scheduler.mean_wait_minutes()));
  if (config.node_failures.enabled) {
    // One bulk update per campaign so counter totals reconcile exactly with
    // the report's availability section at any thread count.
    const auto& a = data.availability;
    util::counters().add("sched.node_failures", a.node_failures);
    util::counters().add("sched.attempts_killed", a.attempts_killed);
    util::counters().add("sched.requeues", a.requeues);
    util::counters().add("sched.requeues_exhausted", a.requeues_exhausted);
    util::counters().add("sched.node_minutes_down", a.node_minutes_down);
    util::counters().add("sched.node_minutes_total", a.node_minutes_total);
    util::log_info(util::format(
        "availability: %llu node failures, %llu attempts killed, %llu requeued "
        "(%llu exhausted), %.1f node-hours lost",
        static_cast<unsigned long long>(a.node_failures),
        static_cast<unsigned long long>(a.attempts_killed),
        static_cast<unsigned long long>(a.requeues),
        static_cast<unsigned long long>(a.requeues_exhausted),
        static_cast<double>(a.node_minutes_down) / 60.0));
  }
  if (data.power) {
    // One bulk update per campaign (same pattern as sched.* / telemetry.*):
    // counter totals reconcile exactly with the report's power section.
    const auto& p = *data.power;
    util::counters().add("power.jobs.granted", p.jobs_granted);
    util::counters().add("power.throttle.events", p.throttle_events);
    util::counters().add("power.degraded.events", p.degraded_events);
    util::counters().add("power.minutes.throttle", p.minutes_throttle);
    util::counters().add("power.minutes.degraded", p.minutes_degraded);
    util::counters().add("power.meter.samples", p.meter_samples);
    util::counters().add("power.meter.faults", p.meter_faults_injected);
    util::counters().add("power.meter.rejected", p.meter_samples_rejected);
    util::counters().add("power.cap.violations", p.cap_violation_minutes);
    util::log_info(util::format(
        "power: cap %.0f W, pool %.0f W, %llu jobs granted, peak commit %.0f W, "
        "max site %.0f W, %llu throttle / %llu degraded events, ledger %s",
        p.site_cap_w, p.pool_w,
        static_cast<unsigned long long>(p.jobs_granted),
        static_cast<double>(p.peak_held_mw) / 1000.0, p.max_true_site_w,
        static_cast<unsigned long long>(p.throttle_events),
        static_cast<unsigned long long>(p.degraded_events),
        p.ledger_reconciles ? "reconciles" : "DOES NOT RECONCILE"));
  }
  if (config.faults.enabled) {
    // One bulk update per campaign; the per-sample hot path stays counter-free.
    const auto& q = data.quality;
    util::counters().add("telemetry.samples.expected", q.samples_expected);
    util::counters().add("telemetry.samples.glitch", q.samples_glitch);
    util::counters().add("telemetry.samples.gap", q.samples_gap);
    util::counters().add("telemetry.samples.duplicate", q.samples_duplicate);
    util::counters().add("telemetry.samples.interpolated", q.samples_interpolated);
    util::counters().add("telemetry.jobs.quarantined", q.jobs_quarantined());
    util::counters().add("telemetry.jobs.truncated", q.jobs_truncated_by_crash);
    util::log_info("telemetry quality: " + telemetry::describe(q));
  }
  return data;
}

std::vector<CampaignData> run_both_systems(const StudyConfig& config) {
  const auto& specs = cluster::studied_systems();
  std::vector<CampaignData> out(specs.size());
  if (specs.size() < 2 || util::global_thread_count() < 2) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      out[i] = run_campaign(specs[i], config);
    return out;
  }

  // The campaigns are independent (separate pipelines, separate PRNG streams
  // keyed only by the seed), so they run concurrently; each additionally
  // shards its own per-minute telemetry sweeps across the shared pool, whose
  // parallel_for is re-entrant from worker threads. The caller takes the
  // first campaign itself so progress is made even if every pool worker is
  // busy.
  std::vector<std::future<void>> pending;
  pending.reserve(specs.size() - 1);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    pending.push_back(util::global_pool().submit(
        [&, i] { out[i] = run_campaign(specs[i], config); }));
  }
  std::exception_ptr error;
  try {
    out[0] = run_campaign(specs[0], config);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

}  // namespace hpcpower::core

#include "core/job_analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/parallel.hpp"

// Parallelization pattern (DESIGN.md §5): per-job metric extraction fans out
// via util::parallel_for into pre-sized vectors indexed by job position, and
// streaming aggregates fold through util::blocked_accumulate, whose reduction
// tree depends only on the fixed block size. Both are bit-identical across
// thread counts, including the serial reference.

namespace hpcpower::core {

namespace {
std::vector<const telemetry::JobRecord*> filtered(const CampaignData& data,
                                                  const JobFilter& filter) {
  std::vector<const telemetry::JobRecord*> out;
  out.reserve(data.records.size());
  for (const telemetry::JobRecord& r : data.records)
    if (filter.accepts(r)) out.push_back(&r);
  return out;
}

void merge_stats(stats::RunningStats& into, const stats::RunningStats& from) {
  into.merge(from);
}
}  // namespace

PerNodePowerReport analyze_per_node_power(const CampaignData& data,
                                          const JobFilter& filter, std::size_t bins) {
  HPCPOWER_SPAN("analyze.per_node_power");
  const auto jobs = filtered(data, filter);
  if (jobs.empty()) throw std::invalid_argument("analyze_per_node_power: no jobs");

  std::vector<double> watts(jobs.size());
  util::parallel_for(jobs.size(),
                     [&](std::size_t i) { watts[i] = jobs[i]->mean_node_power_w; });

  PerNodePowerReport report{data.spec.name, stats::summarize(watts), 0.0, 0.0,
                            stats::Histogram(0.0, data.spec.node_tdp_watts, bins)};
  report.mean_tdp_fraction = report.watts.mean / data.spec.node_tdp_watts;
  report.std_fraction_of_mean =
      report.watts.mean > 0.0 ? report.watts.stddev / report.watts.mean : 0.0;
  report.histogram.add_all(watts);
  return report;
}

std::vector<AppPowerEntry> analyze_app_power(const CampaignData& data,
                                             const workload::ApplicationCatalog& catalog,
                                             const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.app_power");
  std::vector<AppPowerEntry> out;
  for (const workload::AppId app_id : catalog.key_applications()) {
    const auto rs = util::blocked_accumulate<stats::RunningStats>(
        data.records.size(),
        [&](stats::RunningStats& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const telemetry::JobRecord& r = data.records[i];
            if (filter.accepts(r) && r.app == app_id) acc.add(r.mean_node_power_w);
          }
        },
        merge_stats);
    AppPowerEntry entry;
    entry.app_name = catalog.app(app_id).name;
    entry.mean_power_w = rs.mean();
    entry.std_power_w = rs.stddev();
    entry.jobs = rs.count();
    out.push_back(entry);
  }
  return out;
}

CorrelationReport analyze_correlations(const CampaignData& data, const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.correlations");
  const auto jobs = filtered(data, filter);
  if (jobs.size() < 3) throw std::invalid_argument("analyze_correlations: too few jobs");
  std::vector<double> runtime(jobs.size()), nnodes(jobs.size()), power(jobs.size());
  util::parallel_for(jobs.size(), [&](std::size_t i) {
    const auto* r = jobs[i];
    runtime[i] = static_cast<double>(r->runtime_min());
    nnodes[i] = static_cast<double>(r->nnodes);
    power[i] = r->mean_node_power_w;
  });
  CorrelationReport report;
  report.system = data.spec.name;
  report.length_vs_power = stats::spearman(runtime, power);
  report.size_vs_power = stats::spearman(nnodes, power);
  return report;
}

MedianSplitReport analyze_median_splits(const CampaignData& data,
                                        const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.median_splits");
  const auto jobs = filtered(data, filter);
  if (jobs.empty()) throw std::invalid_argument("analyze_median_splits: no jobs");

  std::vector<double> runtimes(jobs.size()), sizes(jobs.size());
  util::parallel_for(jobs.size(), [&](std::size_t i) {
    runtimes[i] = static_cast<double>(jobs[i]->runtime_min());
    sizes[i] = static_cast<double>(jobs[i]->nnodes);
  });
  MedianSplitReport report;
  report.system = data.spec.name;
  report.median_runtime_min = stats::median(runtimes);
  report.median_nnodes = stats::median(sizes);

  const double tdp = data.spec.node_tdp_watts;
  struct SplitAcc {
    stats::RunningStats short_s, long_s, small_s, large_s;
  };
  const auto acc = util::blocked_accumulate<SplitAcc>(
      jobs.size(),
      [&](SplitAcc& a, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto* r = jobs[i];
          const double frac = r->mean_node_power_w / tdp;
          (static_cast<double>(r->runtime_min()) <= report.median_runtime_min
               ? a.short_s
               : a.long_s)
              .add(frac);
          (static_cast<double>(r->nnodes) <= report.median_nnodes ? a.small_s
                                                                  : a.large_s)
              .add(frac);
        }
      },
      [](SplitAcc& a, const SplitAcc& b) {
        a.short_s.merge(b.short_s);
        a.long_s.merge(b.long_s);
        a.small_s.merge(b.small_s);
        a.large_s.merge(b.large_s);
      });
  const stats::RunningStats& short_s = acc.short_s;
  const stats::RunningStats& long_s = acc.long_s;
  const stats::RunningStats& small_s = acc.small_s;
  const stats::RunningStats& large_s = acc.large_s;
  const auto to_group = [](const char* label, const stats::RunningStats& rs) {
    MedianSplitGroup g;
    g.label = label;
    g.mean_tdp_fraction = rs.mean();
    g.std_tdp_fraction = rs.stddev();
    g.jobs = rs.count();
    return g;
  };
  report.short_jobs = to_group("short", short_s);
  report.long_jobs = to_group("long", long_s);
  report.small_jobs = to_group("small", small_s);
  report.large_jobs = to_group("large", large_s);
  return report;
}

TemporalReport analyze_temporal(const CampaignData& data, const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.temporal");
  // Membership (cheap, order-defining) stays serial; metric extraction fans
  // out into slots indexed by the collected order.
  std::vector<const telemetry::JobRecord*> djobs, cv_jobs;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || !r.detail) continue;
    djobs.push_back(&r);
    if (r.mean_node_power_w > 0.0) cv_jobs.push_back(&r);
  }
  std::vector<double> overshoot(djobs.size()), above(djobs.size()), cv(cv_jobs.size());
  util::parallel_for(djobs.size(), [&](std::size_t i) {
    overshoot[i] = djobs[i]->detail->peak_overshoot;
    above[i] = djobs[i]->detail->frac_time_above_10pct;
  });
  util::parallel_for(cv_jobs.size(), [&](std::size_t i) {
    cv[i] = cv_jobs[i]->temporal_std_w / cv_jobs[i]->mean_node_power_w;
  });
  TemporalReport report;
  report.system = data.spec.name;
  report.instrumented_jobs = overshoot.size();
  if (overshoot.empty()) return report;

  report.mean_temporal_cv = stats::mean(cv);
  report.peak_overshoot_cdf = stats::Ecdf(overshoot);
  report.time_above_10pct_cdf = stats::Ecdf(above);
  report.mean_peak_overshoot = report.peak_overshoot_cdf.mean();
  report.mean_time_above_10pct = report.time_above_10pct_cdf.mean();
  std::size_t never = 0;
  for (const double a : above) never += (a < 0.005);
  report.fraction_jobs_never_above =
      static_cast<double>(never) / static_cast<double>(above.size());
  return report;
}

SpatialReport analyze_spatial(const CampaignData& data, const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.spatial");
  std::vector<const telemetry::JobRecord*> djobs;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || !r.detail || r.nnodes < 2) continue;
    djobs.push_back(&r);
  }
  std::vector<double> spread_w(djobs.size()), spread_frac(djobs.size()),
      time_above(djobs.size());
  util::parallel_for(djobs.size(), [&](std::size_t i) {
    spread_w[i] = djobs[i]->detail->avg_spatial_spread_w;
    spread_frac[i] = djobs[i]->detail->spread_fraction_of_power;
    time_above[i] = djobs[i]->detail->frac_time_above_avg_spread;
  });
  SpatialReport report;
  report.system = data.spec.name;
  report.instrumented_multinode_jobs = spread_w.size();
  if (spread_w.empty()) return report;

  report.avg_spread_w_cdf = stats::Ecdf(spread_w);
  report.spread_fraction_cdf = stats::Ecdf(spread_frac);
  report.time_above_avg_spread_cdf = stats::Ecdf(time_above);
  report.mean_avg_spread_w = report.avg_spread_w_cdf.mean();
  report.max_avg_spread_w = report.avg_spread_w_cdf.max();
  report.mean_spread_fraction = report.spread_fraction_cdf.mean();
  report.mean_time_above_avg_spread = report.time_above_avg_spread_cdf.mean();
  return report;
}

EnergySpreadReport analyze_energy_spread(const CampaignData& data,
                                         const JobFilter& filter, std::size_t bins) {
  HPCPOWER_SPAN("analyze.energy_spread");
  std::vector<const telemetry::JobRecord*> djobs;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || r.nnodes < 2) continue;
    djobs.push_back(&r);
  }
  std::vector<double> spread(djobs.size()), nnodes(djobs.size());
  util::parallel_for(djobs.size(), [&](std::size_t i) {
    spread[i] = djobs[i]->node_energy_spread_fraction();
    nnodes[i] = static_cast<double>(djobs[i]->nnodes);
  });
  EnergySpreadReport report{data.spec.name, spread.size(),
                            stats::Histogram(0.0, 0.6, bins), 0.0, 0.0, {}};
  if (spread.empty()) return report;
  report.histogram.add_all(spread);
  std::size_t above = 0;
  for (const double s : spread) above += (s > 0.15);
  report.fraction_above_15pct =
      static_cast<double>(above) / static_cast<double>(spread.size());
  report.mean_spread_fraction = stats::mean(spread);
  if (spread.size() >= 3) report.spread_vs_nnodes = stats::spearman(spread, nnodes);
  return report;
}

ConsistencyReport analyze_monthly_consistency(const CampaignData& data,
                                              double window_days,
                                              const JobFilter& filter) {
  HPCPOWER_SPAN("analyze.monthly_consistency");
  if (window_days <= 0.0)
    throw std::invalid_argument("analyze_monthly_consistency: window must be positive");
  ConsistencyReport report;
  report.system = data.spec.name;

  const auto jobs = filtered(data, filter);
  if (jobs.empty()) return report;

  std::int64_t last_end = 0;
  for (const auto* r : jobs) last_end = std::max(last_end, r->end.minutes());
  const auto window_min = static_cast<std::int64_t>(window_days * 24.0 * 60.0);
  const auto windows = static_cast<std::size_t>((last_end + window_min - 1) / window_min);

  const std::size_t window_count = std::max<std::size_t>(windows, 1);
  struct ConsistencyAcc {
    std::vector<stats::RunningStats> per_window;
    stats::RunningStats overall;
  };
  auto acc = util::blocked_accumulate<ConsistencyAcc>(
      jobs.size(),
      [&](ConsistencyAcc& a, std::size_t begin, std::size_t end) {
        a.per_window.resize(window_count);
        for (std::size_t i = begin; i < end; ++i) {
          const auto* r = jobs[i];
          const auto w = static_cast<std::size_t>(
              std::min<std::int64_t>(r->start.minutes() / window_min,
                                     static_cast<std::int64_t>(window_count) - 1));
          a.per_window[w].add(r->mean_node_power_w);
          a.overall.add(r->mean_node_power_w);
        }
      },
      [](ConsistencyAcc& a, const ConsistencyAcc& b) {
        if (a.per_window.size() < b.per_window.size())
          a.per_window.resize(b.per_window.size());
        for (std::size_t w = 0; w < b.per_window.size(); ++w)
          a.per_window[w].merge(b.per_window[w]);
        a.overall.merge(b.overall);
      });
  std::vector<stats::RunningStats>& per_window = acc.per_window;
  if (per_window.size() < window_count) per_window.resize(window_count);
  const stats::RunningStats& overall = acc.overall;

  for (std::size_t w = 0; w < per_window.size(); ++w) {
    if (per_window[w].count() == 0) continue;
    ConsistencyWindow cw;
    cw.begin_day = static_cast<double>(w) * window_days;
    cw.jobs = per_window[w].count();
    cw.mean_power_w = per_window[w].mean();
    cw.std_power_w = per_window[w].stddev();
    report.windows.push_back(cw);
    if (overall.mean() > 0.0)
      report.max_mean_deviation =
          std::max(report.max_mean_deviation,
                   std::abs(cw.mean_power_w - overall.mean()) / overall.mean());
  }
  return report;
}

}  // namespace hpcpower::core

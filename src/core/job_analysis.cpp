#include "core/job_analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcpower::core {

namespace {
std::vector<const telemetry::JobRecord*> filtered(const CampaignData& data,
                                                  const JobFilter& filter) {
  std::vector<const telemetry::JobRecord*> out;
  out.reserve(data.records.size());
  for (const telemetry::JobRecord& r : data.records)
    if (filter.accepts(r)) out.push_back(&r);
  return out;
}
}  // namespace

PerNodePowerReport analyze_per_node_power(const CampaignData& data,
                                          const JobFilter& filter, std::size_t bins) {
  const auto jobs = filtered(data, filter);
  if (jobs.empty()) throw std::invalid_argument("analyze_per_node_power: no jobs");

  std::vector<double> watts;
  watts.reserve(jobs.size());
  for (const auto* r : jobs) watts.push_back(r->mean_node_power_w);

  PerNodePowerReport report{data.spec.name, stats::summarize(watts), 0.0, 0.0,
                            stats::Histogram(0.0, data.spec.node_tdp_watts, bins)};
  report.mean_tdp_fraction = report.watts.mean / data.spec.node_tdp_watts;
  report.std_fraction_of_mean =
      report.watts.mean > 0.0 ? report.watts.stddev / report.watts.mean : 0.0;
  report.histogram.add_all(watts);
  return report;
}

std::vector<AppPowerEntry> analyze_app_power(const CampaignData& data,
                                             const workload::ApplicationCatalog& catalog,
                                             const JobFilter& filter) {
  std::vector<AppPowerEntry> out;
  for (const workload::AppId app_id : catalog.key_applications()) {
    stats::RunningStats rs;
    for (const telemetry::JobRecord& r : data.records) {
      if (!filter.accepts(r) || r.app != app_id) continue;
      rs.add(r.mean_node_power_w);
    }
    AppPowerEntry entry;
    entry.app_name = catalog.app(app_id).name;
    entry.mean_power_w = rs.mean();
    entry.std_power_w = rs.stddev();
    entry.jobs = rs.count();
    out.push_back(entry);
  }
  return out;
}

CorrelationReport analyze_correlations(const CampaignData& data, const JobFilter& filter) {
  const auto jobs = filtered(data, filter);
  if (jobs.size() < 3) throw std::invalid_argument("analyze_correlations: too few jobs");
  std::vector<double> runtime, nnodes, power;
  runtime.reserve(jobs.size());
  nnodes.reserve(jobs.size());
  power.reserve(jobs.size());
  for (const auto* r : jobs) {
    runtime.push_back(static_cast<double>(r->runtime_min()));
    nnodes.push_back(static_cast<double>(r->nnodes));
    power.push_back(r->mean_node_power_w);
  }
  CorrelationReport report;
  report.system = data.spec.name;
  report.length_vs_power = stats::spearman(runtime, power);
  report.size_vs_power = stats::spearman(nnodes, power);
  return report;
}

MedianSplitReport analyze_median_splits(const CampaignData& data,
                                        const JobFilter& filter) {
  const auto jobs = filtered(data, filter);
  if (jobs.empty()) throw std::invalid_argument("analyze_median_splits: no jobs");

  std::vector<double> runtimes, sizes;
  runtimes.reserve(jobs.size());
  sizes.reserve(jobs.size());
  for (const auto* r : jobs) {
    runtimes.push_back(static_cast<double>(r->runtime_min()));
    sizes.push_back(static_cast<double>(r->nnodes));
  }
  MedianSplitReport report;
  report.system = data.spec.name;
  report.median_runtime_min = stats::median(runtimes);
  report.median_nnodes = stats::median(sizes);

  const double tdp = data.spec.node_tdp_watts;
  stats::RunningStats short_s, long_s, small_s, large_s;
  for (const auto* r : jobs) {
    const double frac = r->mean_node_power_w / tdp;
    (static_cast<double>(r->runtime_min()) <= report.median_runtime_min ? short_s
                                                                        : long_s)
        .add(frac);
    (static_cast<double>(r->nnodes) <= report.median_nnodes ? small_s : large_s)
        .add(frac);
  }
  const auto to_group = [](const char* label, const stats::RunningStats& rs) {
    MedianSplitGroup g;
    g.label = label;
    g.mean_tdp_fraction = rs.mean();
    g.std_tdp_fraction = rs.stddev();
    g.jobs = rs.count();
    return g;
  };
  report.short_jobs = to_group("short", short_s);
  report.long_jobs = to_group("long", long_s);
  report.small_jobs = to_group("small", small_s);
  report.large_jobs = to_group("large", large_s);
  return report;
}

TemporalReport analyze_temporal(const CampaignData& data, const JobFilter& filter) {
  std::vector<double> overshoot, above, cv;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || !r.detail) continue;
    overshoot.push_back(r.detail->peak_overshoot);
    above.push_back(r.detail->frac_time_above_10pct);
    if (r.mean_node_power_w > 0.0) cv.push_back(r.temporal_std_w / r.mean_node_power_w);
  }
  TemporalReport report;
  report.system = data.spec.name;
  report.instrumented_jobs = overshoot.size();
  if (overshoot.empty()) return report;

  report.mean_temporal_cv = stats::mean(cv);
  report.peak_overshoot_cdf = stats::Ecdf(overshoot);
  report.time_above_10pct_cdf = stats::Ecdf(above);
  report.mean_peak_overshoot = report.peak_overshoot_cdf.mean();
  report.mean_time_above_10pct = report.time_above_10pct_cdf.mean();
  std::size_t never = 0;
  for (const double a : above) never += (a < 0.005);
  report.fraction_jobs_never_above =
      static_cast<double>(never) / static_cast<double>(above.size());
  return report;
}

SpatialReport analyze_spatial(const CampaignData& data, const JobFilter& filter) {
  std::vector<double> spread_w, spread_frac, time_above;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || !r.detail || r.nnodes < 2) continue;
    spread_w.push_back(r.detail->avg_spatial_spread_w);
    spread_frac.push_back(r.detail->spread_fraction_of_power);
    time_above.push_back(r.detail->frac_time_above_avg_spread);
  }
  SpatialReport report;
  report.system = data.spec.name;
  report.instrumented_multinode_jobs = spread_w.size();
  if (spread_w.empty()) return report;

  report.avg_spread_w_cdf = stats::Ecdf(spread_w);
  report.spread_fraction_cdf = stats::Ecdf(spread_frac);
  report.time_above_avg_spread_cdf = stats::Ecdf(time_above);
  report.mean_avg_spread_w = report.avg_spread_w_cdf.mean();
  report.max_avg_spread_w = report.avg_spread_w_cdf.max();
  report.mean_spread_fraction = report.spread_fraction_cdf.mean();
  report.mean_time_above_avg_spread = report.time_above_avg_spread_cdf.mean();
  return report;
}

EnergySpreadReport analyze_energy_spread(const CampaignData& data,
                                         const JobFilter& filter, std::size_t bins) {
  std::vector<double> spread, nnodes;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r) || r.nnodes < 2) continue;
    spread.push_back(r.node_energy_spread_fraction());
    nnodes.push_back(static_cast<double>(r.nnodes));
  }
  EnergySpreadReport report{data.spec.name, spread.size(),
                            stats::Histogram(0.0, 0.6, bins), 0.0, 0.0, {}};
  if (spread.empty()) return report;
  report.histogram.add_all(spread);
  std::size_t above = 0;
  for (const double s : spread) above += (s > 0.15);
  report.fraction_above_15pct =
      static_cast<double>(above) / static_cast<double>(spread.size());
  report.mean_spread_fraction = stats::mean(spread);
  if (spread.size() >= 3) report.spread_vs_nnodes = stats::spearman(spread, nnodes);
  return report;
}

ConsistencyReport analyze_monthly_consistency(const CampaignData& data,
                                              double window_days,
                                              const JobFilter& filter) {
  if (window_days <= 0.0)
    throw std::invalid_argument("analyze_monthly_consistency: window must be positive");
  ConsistencyReport report;
  report.system = data.spec.name;

  const auto jobs = filtered(data, filter);
  if (jobs.empty()) return report;

  std::int64_t last_end = 0;
  for (const auto* r : jobs) last_end = std::max(last_end, r->end.minutes());
  const auto window_min = static_cast<std::int64_t>(window_days * 24.0 * 60.0);
  const auto windows = static_cast<std::size_t>((last_end + window_min - 1) / window_min);

  std::vector<stats::RunningStats> per_window(std::max<std::size_t>(windows, 1));
  stats::RunningStats overall;
  for (const auto* r : jobs) {
    const auto w = static_cast<std::size_t>(
        std::min<std::int64_t>(r->start.minutes() / window_min,
                               static_cast<std::int64_t>(per_window.size()) - 1));
    per_window[w].add(r->mean_node_power_w);
    overall.add(r->mean_node_power_w);
  }

  for (std::size_t w = 0; w < per_window.size(); ++w) {
    if (per_window[w].count() == 0) continue;
    ConsistencyWindow cw;
    cw.begin_day = static_cast<double>(w) * window_days;
    cw.jobs = per_window[w].count();
    cw.mean_power_w = per_window[w].mean();
    cw.std_power_w = per_window[w].stddev();
    report.windows.push_back(cw);
    if (overall.mean() > 0.0)
      report.max_mean_deviation =
          std::max(report.max_mean_deviation,
                   std::abs(cw.mean_power_w - overall.mean()) / overall.mean());
  }
  return report;
}

}  // namespace hpcpower::core

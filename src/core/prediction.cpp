#include "core/prediction.hpp"

#include <array>
#include <stdexcept>

#include "ml/decision_tree.hpp"

#include "obs/span.hpp"

namespace hpcpower::core {

const char* feature_set_name(FeatureSet f) noexcept {
  switch (f) {
    case FeatureSet::kUserNodesWalltime: return "user+nodes+walltime";
    case FeatureSet::kUserOnly: return "user";
    case FeatureSet::kNodesWalltime: return "nodes+walltime";
    case FeatureSet::kUserNodes: return "user+nodes";
    case FeatureSet::kUserWalltime: return "user+walltime";
  }
  return "?";
}

ml::Dataset build_prediction_dataset(const CampaignData& data, const JobFilter& filter,
                                     FeatureSet features) {
  ml::Dataset out;
  std::vector<double> row;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r)) continue;
    row.clear();
    const double user = static_cast<double>(r.user_id);
    const double nodes = static_cast<double>(r.nnodes);
    const double wall = static_cast<double>(r.walltime_req_min);
    switch (features) {
      case FeatureSet::kUserNodesWalltime:
        row = {user, nodes, wall};
        break;
      case FeatureSet::kUserOnly:
        row = {user};
        break;
      case FeatureSet::kNodesWalltime:
        row = {nodes, wall};
        break;
      case FeatureSet::kUserNodes:
        row = {user, nodes};
        break;
      case FeatureSet::kUserWalltime:
        row = {user, wall};
        break;
    }
    out.add_row(row, r.mean_node_power_w, r.user_id);
  }
  return out;
}

const ml::EvaluationResult& PredictionReport::model(const std::string& name) const {
  for (const ml::EvaluationResult& m : models)
    if (m.model == name) return m;
  throw std::out_of_range("PredictionReport: no such model: " + name);
}

PredictionReport analyze_prediction(const CampaignData& data, const JobFilter& filter,
                                    const ml::EvaluationConfig& cfg,
                                    bool include_baselines) {
  HPCPOWER_SPAN("analyze.prediction");
  const ml::Dataset dataset = build_prediction_dataset(data, filter);
  if (dataset.empty()) throw std::invalid_argument("analyze_prediction: no jobs");
  PredictionReport report;
  report.system = data.spec.name;
  report.jobs = dataset.size();
  report.models = ml::evaluate_paper_models(dataset, cfg, include_baselines);
  return report;
}

double fraction_jobs_at_risk_under_predictive_cap(const CampaignData& data,
                                                  double headroom,
                                                  const JobFilter& filter,
                                                  std::uint64_t seed) {
  if (headroom < 0.0)
    throw std::invalid_argument("predictive cap: headroom must be non-negative");

  // Collect the filtered records so dataset rows map back to peak powers.
  std::vector<const telemetry::JobRecord*> jobs;
  for (const telemetry::JobRecord& r : data.records)
    if (filter.accepts(r)) jobs.push_back(&r);
  if (jobs.size() < 10)
    throw std::invalid_argument("predictive cap: too few jobs");

  ml::Dataset dataset(3);
  for (const auto* r : jobs) {
    const std::array<double, 3> row = {static_cast<double>(r->user_id),
                                       static_cast<double>(r->nnodes),
                                       static_cast<double>(r->walltime_req_min)};
    dataset.add_row(row, r->mean_node_power_w, r->user_id);
  }

  util::Rng rng(util::derive_stream(seed, "predictive-cap-split"));
  const ml::Split split = ml::make_split(dataset, 0.8, rng);
  ml::DecisionTreeRegressor tree;
  tree.fit(dataset.subset(split.train));

  std::size_t at_risk = 0;
  for (const std::size_t i : split.validation) {
    const double cap = tree.predict(dataset.row(i)) * (1.0 + headroom);
    if (jobs[i]->peak_node_power_w > cap) ++at_risk;
  }
  return split.validation.empty()
             ? 0.0
             : static_cast<double>(at_risk) / static_cast<double>(split.validation.size());
}

}  // namespace hpcpower::core

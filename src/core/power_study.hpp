#pragma once
// Robustness scenario matrix for the closed-loop power manager.
//
// Sweeps cap tightness x predictor quality x node-failure rate (with meter
// faults on throughout) and runs one managed campaign per cell. The matrix
// report carries, per cell, the full PowerReport plus the two invariants the
// whole subsystem promises:
//   * the site cap is NEVER exceeded (cap_violation_minutes == 0), and
//   * the power-budget ledger reconciles exactly,
// so a single boolean per axis summarizes safety while the quantitative
// columns (stranded power recovered, headroom, throttle/degraded occupancy)
// answer the paper's over-provisioning question under stress.

#include <string>
#include <vector>

#include "core/study.hpp"

namespace hpcpower::core {

struct PowerScenarioAxes {
  /// Site cap as fraction of provisioned power (cap tightness axis).
  std::vector<double> cap_fractions = {0.60, 0.75, 0.90};
  /// Lognormal predictor-error sigma (predictor quality axis).
  std::vector<double> predictor_sigmas = {0.0, 0.15, 0.30};
  /// Per-node MTBF in days; <= 0 disables the failure model (failure axis).
  std::vector<double> failure_mtbf_days = {0.0, 2.0};
  /// Site-meter fault rate applied to every cell (telemetry is never clean
  /// in the robustness sweep unless this is set to 0).
  double meter_fault_rate = 0.02;
};

struct PowerScenarioRow {
  double cap_fraction = 0.0;
  double predictor_sigma = 0.0;
  double failure_mtbf_days = 0.0;  ///< 0 = failures disabled
  power::PowerReport report;
  bool cap_violated = false;
  bool ledger_reconciles = false;
};

struct PowerMatrixReport {
  PowerScenarioAxes axes;
  std::vector<PowerScenarioRow> rows;  ///< cap-major, then sigma, then mtbf
  bool any_cap_violated = false;
  bool all_ledgers_reconcile = true;
};

/// Runs the full matrix for one system. Cells run sequentially in a fixed
/// order (each campaign shards its own telemetry sweeps across the pool), so
/// the report is deterministic per (spec, base config, axes).
[[nodiscard]] PowerMatrixReport run_power_scenario_matrix(
    const cluster::SystemSpec& spec, const StudyConfig& base,
    const PowerScenarioAxes& axes);

/// Markdown rendering of the matrix (the report section of the robustness
/// study): one row per cell plus the two safety verdict lines.
[[nodiscard]] std::string render_power_matrix_markdown(const PowerMatrixReport& matrix);

}  // namespace hpcpower::core

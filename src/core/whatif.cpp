#include "core/whatif.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/rapl.hpp"

namespace hpcpower::core {

StaticCapOutcome evaluate_static_cap(const CampaignData& data, double cap_w,
                                     const JobFilter& filter) {
  if (cap_w <= 0.0)
    throw std::invalid_argument("evaluate_static_cap: cap must be positive");

  StaticCapOutcome out;
  out.cap_w = cap_w;
  const double idle_w = data.spec.idle_power_fraction * data.spec.node_tdp_watts;

  std::size_t jobs = 0, mean_over = 0, peak_over = 0;
  double node_hours_total = 0.0, slowdown_weighted = 0.0;
  double energy_total = 0.0, energy_clipped = 0.0;
  for (const telemetry::JobRecord& r : data.records) {
    if (!filter.accepts(r)) continue;
    ++jobs;
    const double node_hours = r.node_hours();
    node_hours_total += node_hours;
    energy_total += r.energy_kwh;

    if (r.mean_node_power_w > cap_w) {
      ++mean_over;
      energy_clipped +=
          (r.mean_node_power_w - cap_w) * r.nnodes * r.runtime_min() / 60.0 / 1000.0;
    }
    if (r.peak_node_power_w > cap_w) ++peak_over;

    const double slowdown = cluster::cap_slowdown(r.mean_node_power_w, cap_w, idle_w);
    slowdown_weighted += slowdown * node_hours;
    out.max_slowdown = std::max(out.max_slowdown, slowdown);
  }
  if (jobs == 0) throw std::invalid_argument("evaluate_static_cap: no jobs");

  out.jobs_mean_over_cap = static_cast<double>(mean_over) / static_cast<double>(jobs);
  out.jobs_peak_over_cap = static_cast<double>(peak_over) / static_cast<double>(jobs);
  out.mean_slowdown = node_hours_total > 0.0 ? slowdown_weighted / node_hours_total : 1.0;
  out.energy_clipped_fraction = energy_total > 0.0 ? energy_clipped / energy_total : 0.0;
  out.provisioned_power_released_fraction =
      std::max(0.0, 1.0 - cap_w / data.spec.node_tdp_watts);
  return out;
}

std::vector<StaticCapOutcome> sweep_static_caps(const CampaignData& data,
                                                double lo_fraction, double hi_fraction,
                                                std::size_t steps,
                                                const JobFilter& filter) {
  if (steps < 2 || lo_fraction <= 0.0 || hi_fraction <= lo_fraction)
    throw std::invalid_argument("sweep_static_caps: bad sweep bounds");
  std::vector<StaticCapOutcome> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double frac = lo_fraction + (hi_fraction - lo_fraction) *
                                          static_cast<double>(i) /
                                          static_cast<double>(steps - 1);
    out.push_back(evaluate_static_cap(data, frac * data.spec.node_tdp_watts, filter));
  }
  return out;
}

}  // namespace hpcpower::core

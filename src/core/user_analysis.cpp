#include "core/user_analysis.hpp"

#include <unordered_map>

#include "stats/concentration.hpp"
#include "stats/descriptive.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

// Per-user/per-cluster aggregation folds through util::blocked_accumulate:
// each fixed-size record block builds its own map, and blocks merge in block
// order, so both the values and the map insertion history (hence iteration
// order) are independent of the thread count (DESIGN.md §5).

namespace hpcpower::core {

ConcentrationReport analyze_concentration(const CampaignData& data,
                                          const JobFilter& filter,
                                          std::size_t curve_points) {
  HPCPOWER_SPAN("analyze.concentration");
  struct ConcAcc {
    std::unordered_map<workload::UserId, double> node_hours, energy;
  };
  auto acc = util::blocked_accumulate<ConcAcc>(
      data.records.size(),
      [&](ConcAcc& a, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const telemetry::JobRecord& r = data.records[i];
          if (!filter.accepts(r)) continue;
          a.node_hours[r.user_id] += r.node_hours();
          a.energy[r.user_id] += r.energy_kwh;
        }
      },
      [](ConcAcc& a, const ConcAcc& b) {
        for (const auto& [user, hours] : b.node_hours) a.node_hours[user] += hours;
        for (const auto& [user, kwh] : b.energy) a.energy[user] += kwh;
      });
  std::unordered_map<workload::UserId, double>& node_hours = acc.node_hours;
  std::unordered_map<workload::UserId, double>& energy = acc.energy;
  ConcentrationReport report;
  report.system = data.spec.name;
  report.users = node_hours.size();
  if (node_hours.empty()) return report;

  // Aligned per-user vectors (iteration order does not matter for shares,
  // but overlap needs index correspondence).
  std::vector<double> nh, en;
  nh.reserve(node_hours.size());
  en.reserve(node_hours.size());
  for (const auto& [user, hours] : node_hours) {
    nh.push_back(hours);
    en.push_back(energy[user]);
  }
  report.top20_node_hours_share = stats::top_share(nh, 0.2);
  report.top20_energy_share = stats::top_share(en, 0.2);
  report.top20_overlap = stats::top_set_overlap(nh, en, 0.2);
  report.node_hours_gini = stats::gini(nh);
  report.energy_gini = stats::gini(en);
  report.node_hours_curve = stats::top_share_curve(nh, curve_points);
  report.energy_curve = stats::top_share_curve(en, curve_points);
  return report;
}

UserVariabilityReport analyze_user_variability(const CampaignData& data,
                                               const JobFilter& filter,
                                               std::size_t min_jobs) {
  HPCPOWER_SPAN("analyze.user_variability");
  struct UserAgg {
    stats::RunningStats power, nnodes, runtime;
  };
  using UserMap = std::unordered_map<workload::UserId, UserAgg>;
  const UserMap users = util::blocked_accumulate<UserMap>(
      data.records.size(),
      [&](UserMap& a, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const telemetry::JobRecord& r = data.records[i];
          if (!filter.accepts(r)) continue;
          UserAgg& agg = a[r.user_id];
          agg.power.add(r.mean_node_power_w);
          agg.nnodes.add(static_cast<double>(r.nnodes));
          agg.runtime.add(static_cast<double>(r.runtime_min()));
        }
      },
      [](UserMap& a, const UserMap& b) {
        for (const auto& [user, agg] : b) {
          UserAgg& into = a[user];
          into.power.merge(agg.power);
          into.nnodes.merge(agg.nnodes);
          into.runtime.merge(agg.runtime);
        }
      });

  std::vector<double> power_cv, nnodes_cv, runtime_cv;
  for (const auto& [user, agg] : users) {
    if (agg.power.count() < min_jobs) continue;
    power_cv.push_back(agg.power.coefficient_of_variation());
    nnodes_cv.push_back(agg.nnodes.coefficient_of_variation());
    runtime_cv.push_back(agg.runtime.coefficient_of_variation());
  }

  UserVariabilityReport report;
  report.system = data.spec.name;
  report.eligible_users = power_cv.size();
  if (power_cv.empty()) return report;
  report.power_cv_cdf = stats::Ecdf(power_cv);
  report.mean_power_cv = stats::mean(power_cv);
  report.mean_nnodes_cv = stats::mean(nnodes_cv);
  report.mean_runtime_cv = stats::mean(runtime_cv);
  return report;
}

ClusterVariabilityReport analyze_cluster_variability(const CampaignData& data,
                                                     ClusterKey key,
                                                     const JobFilter& filter,
                                                     std::size_t min_jobs) {
  HPCPOWER_SPAN("analyze.cluster_variability");
  // Cluster key: (user, nnodes) or (user, requested walltime).
  using ClusterMap = std::unordered_map<std::uint64_t, stats::RunningStats>;
  const ClusterMap clusters = util::blocked_accumulate<ClusterMap>(
      data.records.size(),
      [&](ClusterMap& a, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const telemetry::JobRecord& r = data.records[i];
          if (!filter.accepts(r)) continue;
          const std::uint64_t second =
              key == ClusterKey::kUserNodes ? r.nnodes : r.walltime_req_min;
          const std::uint64_t id =
              (static_cast<std::uint64_t>(r.user_id) << 32) | second;
          a[id].add(r.mean_node_power_w);
        }
      },
      [](ClusterMap& a, const ClusterMap& b) {
        for (const auto& [id, rs] : b) a[id].merge(rs);
      });

  ClusterVariabilityReport report;
  report.system = data.spec.name;
  report.key = key;
  double cv_sum = 0.0;
  for (const auto& [id, rs] : clusters) {
    if (rs.count() < min_jobs) continue;
    const double cv = rs.coefficient_of_variation();
    ++report.clusters;
    cv_sum += cv;
    if (cv < 0.10) {
      report.share_below_10 += 1.0;
    } else if (cv < 0.20) {
      report.share_10_to_20 += 1.0;
    } else if (cv < 0.30) {
      report.share_20_to_30 += 1.0;
    } else {
      report.share_above_30 += 1.0;
    }
  }
  if (report.clusters > 0) {
    const auto n = static_cast<double>(report.clusters);
    report.share_below_10 /= n;
    report.share_10_to_20 /= n;
    report.share_20_to_30 /= n;
    report.share_above_30 /= n;
    report.mean_cluster_cv = cv_sum / n;
  }
  return report;
}

}  // namespace hpcpower::core

#pragma once
// Full-study markdown report generation: runs every analyzer over one or two
// campaigns and renders the results as a single self-contained document
// (paper-vs-measured for each reproduced table/figure). This is the
// "production tool" face of the library: operators point it at a campaign
// (simulated or replayed from traces) and get the whole characterization.

#include <string>
#include <vector>

#include "core/study.hpp"
#include "ml/evaluation.hpp"

namespace hpcpower::core {

struct ReportOptions {
  /// Include the ML prediction section (the slowest part).
  bool include_prediction = true;
  ml::EvaluationConfig prediction_config;
  /// Points per rendered CDF/curve table.
  std::size_t curve_points = 10;
};

/// Renders the complete study for the given campaigns as markdown.
[[nodiscard]] std::string render_markdown_report(
    const std::vector<CampaignData>& campaigns, const ReportOptions& options = {});

/// Convenience: render and write to `path`. Throws std::runtime_error on I/O
/// failure.
void write_markdown_report(const std::string& path,
                           const std::vector<CampaignData>& campaigns,
                           const ReportOptions& options = {});

}  // namespace hpcpower::core

#pragma once
// Pre-execution power prediction (Sec 5, RQ9; Figs 14-15): the paper's three
// models evaluated on features available before a job runs.

#include <string>
#include <vector>

#include "core/job_analysis.hpp"
#include "core/study.hpp"
#include "ml/evaluation.hpp"

namespace hpcpower::core {

/// Feature subsets for the ablation bench.
enum class FeatureSet {
  kUserNodesWalltime,  // the paper's feature set
  kUserOnly,
  kNodesWalltime,      // no user id
  kUserNodes,
  kUserWalltime,
};

[[nodiscard]] const char* feature_set_name(FeatureSet f) noexcept;

/// Builds the (features, per-node power) dataset from campaign job records.
/// Features are ordered (user id, nnodes, walltime) restricted to the set.
[[nodiscard]] ml::Dataset build_prediction_dataset(
    const CampaignData& data, const JobFilter& filter = {},
    FeatureSet features = FeatureSet::kUserNodesWalltime);

struct PredictionReport {
  std::string system;
  std::size_t jobs = 0;
  std::vector<ml::EvaluationResult> models;  // BDT, KNN, FLDA (+ baselines)

  /// Result of the named model; throws if absent.
  [[nodiscard]] const ml::EvaluationResult& model(const std::string& name) const;
};

/// Runs the full Fig 14/15 evaluation for one system.
[[nodiscard]] PredictionReport analyze_prediction(const CampaignData& data,
                                                  const JobFilter& filter = {},
                                                  const ml::EvaluationConfig& cfg = {},
                                                  bool include_baselines = false);

/// Power-capping guidance (Sec 5 discussion): the paper suggests capping each
/// job at its predicted per-node power * (1 + headroom), headroom ~15%.
/// Trains a BDT on a random 80% of the filtered jobs and returns the fraction
/// of held-out jobs whose observed *peak* power exceeds their personalized
/// cap (i.e. jobs at risk of degradation under that policy).
[[nodiscard]] double fraction_jobs_at_risk_under_predictive_cap(
    const CampaignData& data, double headroom, const JobFilter& filter = {},
    std::uint64_t seed = 42);

}  // namespace hpcpower::core

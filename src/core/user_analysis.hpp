#pragma once
// User-level analysis (Sec 5, RQ6-RQ8): consumption concentration (Fig 11),
// per-user power variability (Fig 12), and variability within
// (user, nnodes) / (user, walltime) clusters (Fig 13).

#include <map>
#include <string>
#include <vector>

#include "core/job_analysis.hpp"
#include "core/study.hpp"
#include "stats/ecdf.hpp"

namespace hpcpower::core {

// ---------- Fig 11: concentration -------------------------------------------

struct ConcentrationReport {
  std::string system;
  std::size_t users = 0;
  /// Node-hours consumed by the top 20% of users (paper: ~0.85).
  double top20_node_hours_share = 0.0;
  /// Energy consumed by the top 20% of users (paper: ~0.85).
  double top20_energy_share = 0.0;
  /// Overlap between the two top-20% user sets (paper: ~0.90).
  double top20_overlap = 0.0;
  double node_hours_gini = 0.0;
  double energy_gini = 0.0;
  /// (fraction of users, cumulative share) curves for plotting.
  std::vector<std::pair<double, double>> node_hours_curve;
  std::vector<std::pair<double, double>> energy_curve;
};

[[nodiscard]] ConcentrationReport analyze_concentration(const CampaignData& data,
                                                        const JobFilter& filter = {},
                                                        std::size_t curve_points = 20);

// ---------- Fig 12: per-user variability -------------------------------------

struct UserVariabilityReport {
  std::string system;
  std::size_t eligible_users = 0;   // users with >= min_jobs jobs
  /// CDF over users of std/mean of per-node power (Emmy ~0.5, Meggie ~1.0).
  stats::Ecdf power_cv_cdf;
  double mean_power_cv = 0.0;
  /// Same statistic for job size and runtime (reported in the paper's text).
  double mean_nnodes_cv = 0.0;
  double mean_runtime_cv = 0.0;
};

[[nodiscard]] UserVariabilityReport analyze_user_variability(
    const CampaignData& data, const JobFilter& filter = {}, std::size_t min_jobs = 5);

// ---------- Fig 13: clustered variability -------------------------------------

enum class ClusterKey { kUserNodes, kUserWalltime };

struct ClusterVariabilityReport {
  std::string system;
  ClusterKey key = ClusterKey::kUserNodes;
  std::size_t clusters = 0;         // clusters with >= min_jobs jobs
  /// Share of clusters whose power CV falls in each bucket:
  /// [0,10%), [10,20%), [20,30%), >= 30% - the Fig 13 pie slices.
  double share_below_10 = 0.0;
  double share_10_to_20 = 0.0;
  double share_20_to_30 = 0.0;
  double share_above_30 = 0.0;
  double mean_cluster_cv = 0.0;
};

[[nodiscard]] ClusterVariabilityReport analyze_cluster_variability(
    const CampaignData& data, ClusterKey key, const JobFilter& filter = {},
    std::size_t min_jobs = 3);

}  // namespace hpcpower::core

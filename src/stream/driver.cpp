#include "stream/driver.hpp"

#include <algorithm>
#include <utility>

#include "util/prng.hpp"

namespace hpcpower::stream {

namespace {
/// Exponential backoff in steps, capped so schedules stay short.
std::uint64_t backoff(std::uint32_t attempt) noexcept {
  return 1ull << std::min<std::uint32_t>(attempt, 6);
}
}  // namespace

StreamDriver::StreamDriver(IngestDaemon& daemon, TransitFaultConfig faults)
    : daemon_(daemon), faults_(faults) {
  fate_seed_ = util::derive_stream(faults_.seed, "transit-fate");
  delay_seed_ = util::derive_stream(faults_.seed, "transit-delay");
}

StreamDriver::Fate StreamDriver::roll(std::uint64_t seq,
                                      std::uint32_t attempt) const {
  if (!faults_.enabled) return Fate::kClean;
  const double u = util::stateless_uniform(fate_seed_, seq, attempt);
  if (u < faults_.drop_p) return Fate::kDrop;
  if (u < faults_.drop_p + faults_.dup_p) return Fate::kDup;
  if (u < faults_.drop_p + faults_.dup_p + faults_.delay_p) return Fate::kDelay;
  return Fate::kClean;
}

void StreamDriver::schedule(StreamBatch&& batch, std::uint64_t due,
                            std::uint32_t attempt) {
  queue_.emplace(due, Delivery{std::move(batch), attempt});
  ledger_.max_queue_depth =
      std::max<std::uint64_t>(ledger_.max_queue_depth, queue_.size());
}

void StreamDriver::submit(StreamBatch batch) {
  ++ledger_.batches_submitted;
  schedule(std::move(batch), now_, 0);
}

void StreamDriver::process(StreamBatch&& batch, std::uint32_t attempt) {
  const bool force = attempt >= faults_.max_attempts;
  const Fate fate = force ? Fate::kClean : roll(batch.seq, attempt);
  if (faults_.enabled && force && attempt == faults_.max_attempts)
    ++ledger_.force_delivered;

  switch (fate) {
    case Fate::kDrop:
      ++ledger_.drops_injected;
      schedule(std::move(batch), now_ + backoff(attempt), attempt + 1);
      return;
    case Fate::kDelay: {
      ++ledger_.delays_injected;
      const std::uint64_t steps =
          1 + util::stateless_index(delay_seed_, batch.seq, attempt,
                                    std::max<std::uint64_t>(faults_.max_delay_steps, 1));
      schedule(std::move(batch), now_ + steps, attempt + 1);
      return;
    }
    case Fate::kDup:
      // The extra copy lands first; the daemon books it as duplicate, stale,
      // or backpressure-rejected — in every case the original still follows,
      // so nothing is lost.
      ++ledger_.dups_injected;
      ++ledger_.deliveries;
      (void)daemon_.offer(batch);
      break;  // the regular delivery below still happens
    case Fate::kClean:
      break;
  }

  ++ledger_.deliveries;
  const OfferResult r = daemon_.offer(batch);
  if (r == OfferResult::kBackpressure) {
    ++ledger_.backpressure_retries;
    // Backpressure retries do not consume fault-roll budget: the attempt
    // counter still advances (fresh randomness, growing backoff) but the
    // force-delivery bookkeeping above only fires once.
    schedule(std::move(batch),
             now_ + backoff(std::min(attempt, faults_.max_attempts)),
             std::max(attempt + 1, faults_.max_attempts + 1));
  }
}

void StreamDriver::step() {
  while (!queue_.empty() && queue_.begin()->first <= now_) {
    auto node = queue_.extract(queue_.begin());
    process(std::move(node.mapped().batch), node.mapped().attempt);
  }
  ++now_;
}

void StreamDriver::flush() {
  while (!queue_.empty()) step();
}

}  // namespace hpcpower::stream

#include "stream/wal.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "stream/codec.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace hpcpower::stream {

namespace {
/// Parses "<prefix><decimal>" stems like wal-000042 / ckpt-17.
std::optional<std::uint64_t> parse_indexed(const std::string& name,
                                           std::string_view prefix,
                                           std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}
}  // namespace

WriteAheadLog::WriteAheadLog(WalOptions options) : options_(std::move(options)) {
  if (options_.dir.empty())
    throw std::invalid_argument("WriteAheadLog: empty directory");
  if (options_.segment_records == 0) options_.segment_records = 1;
  fs::create_directories(options_.dir);
  // Never append to pre-existing segments (their tails may be torn): start
  // writing after the highest existing index.
  for (const auto& [index, path] : list_segments()) {
    (void)path;
    next_index_ = std::max(next_index_, index + 1);
  }
}

std::string WriteAheadLog::segment_path(std::uint64_t index) const {
  return options_.dir + "/" + util::format("wal-%08llu.seg",
                                           static_cast<unsigned long long>(index));
}

std::vector<std::pair<std::uint64_t, std::string>> WriteAheadLog::list_segments()
    const {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto index = parse_indexed(name, "wal-", ".seg"))
      out.emplace_back(*index, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void WriteAheadLog::open_fresh_segment() {
  if (writer_open_) {
    out_.close();
    segment_max_seq_[current_index_] = current_segment_max_seq_;
  }
  current_index_ = next_index_++;
  out_.open(segment_path(current_index_), std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("WAL: cannot open segment " +
                                      segment_path(current_index_));
  records_in_segment_ = 0;
  current_segment_max_seq_ = 0;
  writer_open_ = true;
  ++segments_opened_;
}

void WriteAheadLog::append(std::uint64_t seq, std::string_view batch_payload) {
  if (!writer_open_ || records_in_segment_ >= options_.segment_records)
    open_fresh_segment();
  Encoder e;
  e.u64(seq);
  e.str(batch_payload);
  const std::string record = frame(kWalMagic, e.data());
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("WAL: append failed");
  ++records_in_segment_;
  ++records_appended_;
  current_segment_max_seq_ = std::max(current_segment_max_seq_, seq);
}

void WriteAheadLog::append_torn_tail(std::string_view garbage) {
  if (!writer_open_) open_fresh_segment();
  out_.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  out_.flush();
}

void WriteAheadLog::write_checkpoint(std::uint64_t seq, std::string_view payload,
                                     bool leave_torn) {
  const std::string base =
      options_.dir + "/" + util::format("ckpt-%020llu",
                                        static_cast<unsigned long long>(seq));
  const std::string framed = frame(kCkptMagic, payload);
  {
    std::ofstream tmp(base + ".tmp", std::ios::binary | std::ios::trunc);
    if (leave_torn) {
      // Crash-injection: persist only a prefix and never rename, exactly the
      // on-disk state a kill mid-checkpoint leaves behind.
      tmp.write(framed.data(), static_cast<std::streamsize>(framed.size() / 2));
      tmp.flush();
      return;
    }
    tmp.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    tmp.flush();
    if (!tmp) throw std::runtime_error("WAL: checkpoint write failed");
  }
  fs::rename(base + ".tmp", base + ".bin");
  ++checkpoints_written_;

  // Retention: newest keep_checkpoints survive.
  std::vector<std::pair<std::uint64_t, std::string>> ckpts;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto s = parse_indexed(name, "ckpt-", ".bin"))
      ckpts.emplace_back(*s, entry.path().string());
  }
  std::sort(ckpts.begin(), ckpts.end());
  const std::uint64_t keep = options_.keep_checkpoints ? options_.keep_checkpoints : 1;
  while (ckpts.size() > keep) {
    fs::remove(ckpts.front().second);
    ckpts.erase(ckpts.begin());
  }
  prune_segments(seq);
}

std::vector<WriteAheadLog::CheckpointCandidate> WriteAheadLog::checkpoints(
    WalRecoveryStats& stats) const {
  std::vector<std::pair<std::uint64_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto s = parse_indexed(name, "ckpt-", ".bin"))
      files.emplace_back(*s, entry.path().string());
  }
  std::sort(files.rbegin(), files.rend());
  std::vector<CheckpointCandidate> out;
  for (const auto& [seq, path] : files) {
    ++stats.checkpoints_tried;
    const std::string bytes = read_file(path);
    std::size_t pos = 0;
    const auto payload = unframe(kCkptMagic, bytes, pos);
    if (!payload || pos != bytes.size()) continue;  // corrupt: skip, keep older
    out.push_back({seq, std::string(*payload)});
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::string>> WriteAheadLog::replay(
    std::uint64_t from_seq, WalRecoveryStats& stats) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::unordered_set<std::uint64_t> seen;
  segment_max_seq_.clear();
  for (const auto& [index, path] : list_segments()) {
    ++stats.segments_scanned;
    const std::string bytes = read_file(path);
    std::size_t pos = 0;
    std::uint64_t max_seq = 0;
    while (pos < bytes.size()) {
      const auto payload = unframe(kWalMagic, bytes, pos);
      if (!payload) {
        // Torn or corrupt record: everything after it in this segment is
        // unacknowledged by construction, so skipping the rest is safe.
        ++stats.torn_records_skipped;
        break;
      }
      Decoder d(*payload);
      const std::uint64_t seq = d.u64();
      const std::string batch_payload = d.str();
      if (!d.done()) {
        ++stats.torn_records_skipped;
        break;
      }
      ++stats.records_seen;
      max_seq = std::max(max_seq, seq);
      if (seq >= from_seq && seen.insert(seq).second) {
        out.emplace_back(seq, batch_payload);
        ++stats.records_replayed;
      }
    }
    segment_max_seq_[index] = max_seq;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void WriteAheadLog::prune_segments(std::uint64_t watermark) {
  for (auto it = segment_max_seq_.begin(); it != segment_max_seq_.end();) {
    if (it->second <= watermark) {
      std::error_code ec;
      fs::remove(segment_path(it->first), ec);
      it = segment_max_seq_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace hpcpower::stream

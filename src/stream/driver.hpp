#pragma once
// Deterministic delivery driver between a batch source and the ingest daemon.
//
// Models the lossy transport a real collector sits behind: batches can be
// dropped (retried with exponential backoff), duplicated, or delayed
// (arriving late and out of order), and a daemon under backpressure pushes
// retries back onto the schedule. Every fault is a pure function of
// (seed, seq, attempt) via util::stateless_uniform — no stream state — so a
// given (campaign, fault seed) produces one exact delivery schedule, and the
// property tests can replay it and reconcile the driver's ledger against the
// daemon's transit counters exactly.
//
// Time is a virtual step counter: submit() enqueues at the current step and
// step() delivers everything due, so the driver is single-threaded and
// deterministic while still exercising real reordering (a delayed seq is
// overtaken by its successors).

#include <cstdint>
#include <map>

#include "stream/batch.hpp"
#include "stream/daemon.hpp"

namespace hpcpower::stream {

struct TransitFaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  double drop_p = 0.0;   ///< delivery lost; retried with backoff
  double dup_p = 0.0;    ///< delivered twice in the same step
  double delay_p = 0.0;  ///< delivery postponed 1..max_delay_steps steps
  std::uint64_t max_delay_steps = 8;
  /// After this many faulted attempts a batch is force-delivered (no more
  /// fault rolls), bounding every schedule. Backpressure retries are not
  /// counted against this limit — they end when the daemon drains.
  std::uint32_t max_attempts = 12;
};

/// Transport-side ground truth, reconciled against TransitStats in tests:
///   deliveries == daemon offered;  batches_submitted == daemon watermark
///   (after flush);  dups_injected == daemon duplicate+stale drops.
struct DriverLedger {
  std::uint64_t batches_submitted = 0;
  std::uint64_t deliveries = 0;  ///< offer() calls actually made
  std::uint64_t drops_injected = 0;
  std::uint64_t dups_injected = 0;
  std::uint64_t delays_injected = 0;
  std::uint64_t backpressure_retries = 0;
  std::uint64_t force_delivered = 0;  ///< fault budget exhausted
  std::uint64_t max_queue_depth = 0;
};

class StreamDriver {
 public:
  explicit StreamDriver(IngestDaemon& daemon, TransitFaultConfig faults = {});

  /// Enqueues one batch for delivery at the current step.
  void submit(StreamBatch batch);

  /// Delivers everything due at the current step, then advances time by one.
  void step();

  /// Steps until the queue is empty (every batch delivered or exhausted).
  void flush();

  [[nodiscard]] const DriverLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

 private:
  enum class Fate : std::uint8_t { kClean, kDrop, kDup, kDelay };

  [[nodiscard]] Fate roll(std::uint64_t seq, std::uint32_t attempt) const;
  void process(StreamBatch&& batch, std::uint32_t attempt);
  void schedule(StreamBatch&& batch, std::uint64_t due, std::uint32_t attempt);

  IngestDaemon& daemon_;
  TransitFaultConfig faults_;
  std::uint64_t fate_seed_ = 0;
  std::uint64_t delay_seed_ = 0;
  std::uint64_t now_ = 0;

  struct Delivery {
    StreamBatch batch;
    std::uint32_t attempt = 0;
  };
  /// Due step -> delivery; equal keys preserve insertion order, so the whole
  /// schedule is deterministic.
  std::multimap<std::uint64_t, Delivery> queue_;
  DriverLedger ledger_;
};

}  // namespace hpcpower::stream

#include "stream/codec.hpp"

#include <cstring>

#include "storage/crc32.hpp"

namespace hpcpower::stream {

namespace {
void put_fixed_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_fixed_u32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}
}  // namespace

void Encoder::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((bits >> (8 * i)) & 0xFFu));
}

std::uint64_t Decoder::u64() {
  if (!ok_) return 0;
  const auto v = storage::read_varint(data_.data(), data_.size(), pos_);
  if (!v) {
    ok_ = false;
    return 0;
  }
  return *v;
}

std::uint32_t Decoder::u32() {
  const std::uint64_t v = u64();
  if (v > 0xFFFFFFFFull) {
    ok_ = false;
    return 0;
  }
  return static_cast<std::uint32_t>(v);
}

std::uint8_t Decoder::u8() {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::int64_t Decoder::i64() { return storage::zigzag_decode(u64()); }

bool Decoder::boolean() {
  const std::uint8_t v = u8();
  if (ok_ && v > 1) ok_ = false;
  return v == 1;
}

double Decoder::f64() {
  if (!ok_ || data_.size() - pos_ < 8) {
    ok_ = false;
    return 0.0;
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
            << (8 * i);
  pos_ += 8;
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::str() {
  const std::uint64_t len = u64();
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    return {};
  }
  std::string out(data_.substr(pos_, static_cast<std::size_t>(len)));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

std::string frame(std::uint32_t magic, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 12);
  put_fixed_u32(out, magic);
  put_fixed_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_fixed_u32(out, storage::crc32(payload));
  return out;
}

std::optional<std::string_view> unframe(std::uint32_t magic,
                                        std::string_view data,
                                        std::size_t& pos) {
  if (pos > data.size() || data.size() - pos < 12) return std::nullopt;
  if (get_fixed_u32(data, pos) != magic) return std::nullopt;
  const std::uint32_t len = get_fixed_u32(data, pos + 4);
  if (data.size() - pos - 12 < len) return std::nullopt;
  const std::string_view payload = data.substr(pos + 8, len);
  if (get_fixed_u32(data, pos + 8 + len) != storage::crc32(payload))
    return std::nullopt;
  pos += 12 + len;
  return payload;
}

}  // namespace hpcpower::stream

#include "stream/daemon.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "storage/crc32.hpp"
#include "stream/codec.hpp"
#include "util/strings.hpp"

namespace hpcpower::stream {

namespace {
constexpr std::uint32_t kCheckpointVersion = 1;

void encode_running_stats(Encoder& e, const stats::RunningStats& s) {
  const auto st = s.state();
  e.u64(st.count);
  e.f64(st.mean);
  e.f64(st.m2);
  e.f64(st.min);
  e.f64(st.max);
}

stats::RunningStats decode_running_stats(Decoder& d) {
  stats::RunningStats::State st;
  st.count = d.u64();
  st.mean = d.f64();
  st.m2 = d.f64();
  st.min = d.f64();
  st.max = d.f64();
  stats::RunningStats out;
  out.restore(st);
  return out;
}

void encode_p2(Encoder& e, const stats::P2Quantile& q) {
  const auto st = q.state();
  e.u64(st.count);
  for (const double h : st.heights) e.f64(h);
  for (const std::int64_t p : st.positions) e.i64(p);
  for (const double v : st.desired) e.f64(v);
}

/// Throws std::invalid_argument via restore() on an inconsistent state.
void decode_p2(Decoder& d, stats::P2Quantile& q) {
  stats::P2Quantile::State st;
  st.count = d.u64();
  for (double& h : st.heights) h = d.f64();
  for (std::int64_t& p : st.positions) p = d.i64();
  for (double& v : st.desired) v = d.f64();
  if (!d.ok()) throw std::invalid_argument("corrupt P2 state");
  q.restore(st);
}

void encode_apply_stats(Encoder& e, const ApplyStats& a) {
  e.u64(a.batches_applied);
  e.u64(a.ticks_applied);
  e.u64(a.rows_applied);
  e.u64(a.rows_deferred);
  e.u64(a.rows_shed);
  e.u64(a.job_ends_applied);
  e.u64(a.mode_transitions);
  e.u64(a.batches_normal);
  e.u64(a.batches_lagging);
  e.u64(a.batches_shedding);
}

ApplyStats decode_apply_stats(Decoder& d) {
  ApplyStats a;
  a.batches_applied = d.u64();
  a.ticks_applied = d.u64();
  a.rows_applied = d.u64();
  a.rows_deferred = d.u64();
  a.rows_shed = d.u64();
  a.job_ends_applied = d.u64();
  a.mode_transitions = d.u64();
  a.batches_normal = d.u64();
  a.batches_lagging = d.u64();
  a.batches_shedding = d.u64();
  return a;
}

/// Derived per-node dropout summary, the same reduction
/// MonitoringPipeline::quality_report() performs.
void derive_node_summary(telemetry::DataQualityReport& q,
                         const std::vector<std::uint64_t>& slots,
                         const std::vector<std::uint64_t>& gaps) {
  double sum = 0.0, max = 0.0;
  std::uint32_t worst = 0, with_gaps = 0;
  std::size_t counted = 0;
  for (std::size_t id = 0; id < slots.size(); ++id) {
    if (slots[id] == 0) continue;
    const double rate =
        static_cast<double>(gaps[id]) / static_cast<double>(slots[id]);
    sum += rate;
    ++counted;
    if (gaps[id] > 0) ++with_gaps;
    if (rate > max) {
      max = rate;
      worst = static_cast<std::uint32_t>(id);
    }
  }
  q.mean_node_dropout_rate = counted ? sum / static_cast<double>(counted) : 0.0;
  q.max_node_dropout_rate = max;
  q.worst_node = worst;
  q.nodes_with_gaps = with_gaps;
}
}  // namespace

const char* ingest_mode_name(IngestMode m) noexcept {
  switch (m) {
    case IngestMode::kNormal: return "NORMAL";
    case IngestMode::kLagging: return "LAGGING";
    case IngestMode::kShedding: return "SHEDDING";
  }
  return "?";
}

IngestDaemon::IngestDaemon(cluster::SystemSpec spec, IngestConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {
  if (!config_.wal_dir.empty()) {
    WalOptions w;
    w.dir = config_.wal_dir;
    w.segment_records = config_.wal_segment_records;
    w.keep_checkpoints = config_.keep_checkpoints;
    wal_ = std::make_unique<WriteAheadLog>(std::move(w));
  }
  if (!config_.spill_path.empty()) {
    spill_out_ = std::make_unique<std::ofstream>(config_.spill_path,
                                                 std::ios::binary | std::ios::trunc);
    if (!*spill_out_)
      throw std::runtime_error("cannot open spill file: " + config_.spill_path);
    spill_ = std::make_unique<storage::HpcbChunkWriter>(
        *spill_out_, std::vector<storage::ColumnSpec>{
                         {"minute", storage::ColumnType::kInt64Delta},
                         {"job_id", storage::ColumnType::kInt64Delta},
                         {"node", storage::ColumnType::kInt64Delta},
                         {"watts", storage::ColumnType::kFloat64Xor}});
  }
}

IngestDaemon::~IngestDaemon() {
  try {
    finish_spill();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void IngestDaemon::spill_tick_rows(const telemetry::TapTick& tick,
                                   std::uint64_t kept) {
  if (!spill_ || kept == 0) return;
  storage::Table t;
  t.schema = {{"minute", storage::ColumnType::kInt64Delta},
              {"job_id", storage::ColumnType::kInt64Delta},
              {"node", storage::ColumnType::kInt64Delta},
              {"watts", storage::ColumnType::kFloat64Xor}};
  t.columns.resize(t.schema.size());
  for (std::uint64_t i = 0; i < kept; ++i) {
    const telemetry::TapSampleRow& r = tick.rows[static_cast<std::size_t>(i)];
    t.columns[0].i64.push_back(tick.minute);
    t.columns[1].i64.push_back(static_cast<std::int64_t>(r.job_id));
    t.columns[2].i64.push_back(static_cast<std::int64_t>(r.node));
    t.columns[3].f64.push_back(r.watts);
  }
  spill_->append(t);
  spill_rows_ += kept;
}

void IngestDaemon::finish_spill() {
  if (!spill_) return;
  spill_->finish();
  spill_.reset();
  if (spill_out_) {
    spill_out_->flush();
    if (!*spill_out_)
      throw std::runtime_error("spill write failed: " + config_.spill_path);
    spill_out_.reset();
  }
}

void IngestDaemon::maybe_crash(std::uint64_t seq) {
  if (replaying_ || config_.crash_mode == CrashMode::kNone) return;
  if (seq != config_.crash_after_seq) return;
  switch (config_.crash_mode) {
    case CrashMode::kAfterBatch:
      std::_Exit(137);
    case CrashMode::kTornWal:
      // Half a record made it to disk before the kill.
      if (wal_) wal_->append_torn_tail("\x10\x0B\xA1\x57torn-mid-record");
      std::_Exit(137);
    case CrashMode::kNone:
    case CrashMode::kTornCheckpoint:
      break;  // handled at the checkpoint site
  }
}

OfferResult IngestDaemon::offer(const StreamBatch& batch) {
  ++transit_.offered;
  if (batch.seq < watermark_) {
    ++transit_.stale_dropped;
    return OfferResult::kStale;
  }
  if (pending_.count(batch.seq) != 0) {
    ++transit_.duplicates_dropped;
    return OfferResult::kDuplicate;
  }
  // The next in-order seq is always admitted — it drains immediately in
  // pump() and may unblock everything queued behind it; rejecting it while
  // the buffer is full of its successors would deadlock the stream.
  if (pending_.size() >= config_.pending_capacity && batch.seq != watermark_) {
    ++transit_.backpressure_rejected;
    return OfferResult::kBackpressure;
  }
  if (wal_ && !replaying_) {
    wal_->append(batch.seq, encode_batch_payload(batch));
    maybe_crash(batch.seq);
  }
  pending_.emplace(batch.seq, batch);
  ++transit_.accepted;
  pump();
  // Peak measured after the pump: the in-order seq passes straight through,
  // so this counts batches actually held waiting for their predecessors.
  transit_.peak_pending = std::max<std::uint64_t>(transit_.peak_pending,
                                                  pending_.size());
  return OfferResult::kAccepted;
}

void IngestDaemon::pump() {
  while (true) {
    const auto it = pending_.find(watermark_);
    if (it == pending_.end()) break;
    apply(it->second);
    pending_.erase(it);
    ++watermark_;
    ++batches_since_checkpoint_;
    update_wal_freshness();
    if (config_.checkpoint_every != 0 &&
        batches_since_checkpoint_ >= config_.checkpoint_every && wal_) {
      if (!replaying_ && config_.crash_mode == CrashMode::kTornCheckpoint &&
          watermark_ > config_.crash_after_seq) {
        wal_->write_checkpoint(watermark_, checkpoint_payload(), true);
        std::_Exit(137);
      }
      checkpoint();
    }
  }
}

void IngestDaemon::merge_quality_delta(const telemetry::DataQualityReport& d) {
  quality_.samples_expected += d.samples_expected;
  quality_.samples_ok += d.samples_ok;
  quality_.samples_glitch += d.samples_glitch;
  quality_.samples_gap += d.samples_gap;
  quality_.samples_duplicate += d.samples_duplicate;
  quality_.samples_interpolated += d.samples_interpolated;
  quality_.glitches_repaired += d.glitches_repaired;
  quality_.rows_out_of_order += d.rows_out_of_order;
  quality_.rows_shed += d.rows_shed;
  quality_.jobs_seen += d.jobs_seen;
  quality_.jobs_quarantined_accounting += d.jobs_quarantined_accounting;
  quality_.jobs_quarantined_low_quality += d.jobs_quarantined_low_quality;
  quality_.jobs_truncated_by_crash += d.jobs_truncated_by_crash;
}

void IngestDaemon::apply_job_end(const telemetry::TapJobEnd& end) {
  ++apply_.job_ends_applied;
  merge_quality_delta(end.quality_delta);
  if (!end.kept) return;
  // Warm-up filter, exactly the batch pipeline's erase rule: records ending
  // inside the warm-up are discarded (their quality deltas still count).
  if (hello_.warmup_minutes > 0 &&
      end.record.end <= util::MinuteTime{hello_.warmup_minutes})
    return;
  records_.push_back(end.record);
  if (config_.on_job_completed) config_.on_job_completed(end.record);
}

void IngestDaemon::step_mode(std::uint64_t rows_kept) {
  const std::uint64_t capacity = config_.capacity_rows_per_batch;
  if (capacity == 0) return;  // machine disabled: NORMAL forever
  backlog_rows_ += rows_kept;
  backlog_rows_ -= std::min(backlog_rows_, capacity);
  const double ratio =
      static_cast<double>(backlog_rows_) / static_cast<double>(capacity);
  if (dwell_ < config_.min_dwell_batches) ++dwell_;
  IngestMode next = mode_;
  switch (mode_) {
    case IngestMode::kNormal:
      if (ratio >= config_.lagging_enter) next = IngestMode::kLagging;
      break;
    case IngestMode::kLagging:
      if (ratio >= config_.shedding_enter) next = IngestMode::kShedding;
      else if (ratio <= config_.lagging_exit) next = IngestMode::kNormal;
      break;
    case IngestMode::kShedding:
      if (ratio <= config_.shedding_exit) next = IngestMode::kLagging;
      break;
  }
  if (next != mode_ && dwell_ >= config_.min_dwell_batches) {
    mode_ = next;
    dwell_ = 0;
    ++apply_.mode_transitions;
    // Monitoring-only typed health probe (DESIGN.md §6): the daemon's
    // backpressure state rolls into the OK/DEGRADED/UNHEALTHY verdict.
    const obs::HealthStatus status =
        mode_ == IngestMode::kNormal    ? obs::HealthStatus::kOk
        : mode_ == IngestMode::kLagging ? obs::HealthStatus::kDegraded
                                        : obs::HealthStatus::kUnhealthy;
    obs::health().set("stream.ingest", status,
                      util::format("backlog %.2fx capacity", ratio));
  }
  // Live gauges for the self-metrics recorder and the stream SLO rules
  // (handles are process-lifetime stable, so the per-batch cost is four
  // relaxed stores; the bulk counters in export_metrics() stay the
  // exactly-reconciled source of truth).
  static auto& backlog_gauge = obs::metrics().gauge("stream.backlog.rows");
  static auto& mode_gauge = obs::metrics().gauge("stream.mode");
  static auto& applied_gauge = obs::metrics().gauge("stream.rows.applied");
  static auto& shed_gauge = obs::metrics().gauge("stream.rows.shed");
  backlog_gauge.set(static_cast<double>(backlog_rows_));
  mode_gauge.set(static_cast<double>(static_cast<int>(mode_)));
  applied_gauge.set(static_cast<double>(apply_.rows_applied));
  shed_gauge.set(static_cast<double>(apply_.rows_shed));
}

void IngestDaemon::apply(const StreamBatch& batch) {
  HPCPOWER_SPAN("stream.batch.apply");
  switch (batch.kind) {
    case BatchKind::kHello:
      hello_seen_ = true;
      hello_ = batch.hello;
      node_slots_.assign(hello_.node_count, 0);
      node_gap_slots_.assign(hello_.node_count, 0);
      history_.reset(hello_.node_count, config_.shards, config_.window_minutes);
      break;

    case BatchKind::kTick: {
      ++apply_.ticks_applied;
      throttled_samples_ += batch.tick.throttled;
      if (batch.in_campaign) {
        series_.total_power_w.push_back(batch.tick.total_power_w);
        series_.busy_nodes.push_back(batch.tick.busy_nodes);
      }
      merge_quality_delta(batch.tick.quality_delta);
      for (const auto& s : batch.tick.node_slots) {
        if (s.node < node_slots_.size()) {
          node_slots_[s.node] += s.slots;
          node_gap_slots_[s.node] += s.gaps;
        }
      }

      // Detail rows under the current degraded-mode policy. The mode used
      // for batch N is the state left behind by batch N-1 — deterministic
      // and independent of arrival timing.
      switch (mode_) {
        case IngestMode::kNormal: ++apply_.batches_normal; break;
        case IngestMode::kLagging: ++apply_.batches_lagging; break;
        case IngestMode::kShedding: ++apply_.batches_shedding; break;
      }
      const std::uint64_t n = batch.tick.rows.size();
      std::uint64_t kept = n;
      if (mode_ == IngestMode::kNormal) {
        history_.apply(batch.tick.rows, /*detail=*/true);
        apply_.rows_applied += n;
      } else if (mode_ == IngestMode::kLagging) {
        history_.apply(batch.tick.rows, /*detail=*/false);
        apply_.rows_applied += n;
        apply_.rows_deferred += n;
      } else {
        kept = std::min<std::uint64_t>(n, config_.shed_keep_rows_per_batch);
        if (kept > 0) {
          const std::vector<telemetry::TapSampleRow> head(
              batch.tick.rows.begin(),
              batch.tick.rows.begin() + static_cast<std::ptrdiff_t>(kept));
          history_.apply(head, /*detail=*/false);
          apply_.rows_applied += kept;
          apply_.rows_deferred += kept;
        }
        for (std::uint64_t i = kept; i < n; ++i) {
          const double w = batch.tick.rows[static_cast<std::size_t>(i)].watts;
          shed_watts_.add(w);
          shed_p50_.add(w);
          shed_p95_.add(w);
        }
        apply_.rows_shed += n - kept;
        quality_.rows_shed += n - kept;
      }
      spill_tick_rows(batch.tick, kept);
      step_mode(kept);
      for (const auto& j : batch.job_ends) apply_job_end(j);
      break;
    }

    case BatchKind::kEnd:
      for (const auto& j : batch.job_ends) apply_job_end(j);
      end_ = batch.end;
      break;
  }
  ++apply_.batches_applied;
}

void IngestDaemon::checkpoint() {
  if (!wal_) return;
  HPCPOWER_SPAN("stream.checkpoint");
  wal_->write_checkpoint(watermark_, checkpoint_payload());
  batches_since_checkpoint_ = 0;
  update_wal_freshness();
}

void IngestDaemon::update_wal_freshness() {
  if (!wal_ || config_.checkpoint_every == 0) return;
  static auto& freshness_gauge =
      obs::metrics().gauge("stream.wal.batches_since_checkpoint");
  freshness_gauge.set(static_cast<double>(batches_since_checkpoint_));
  // Automatic checkpointing keeps the count at or below checkpoint_every;
  // twice that means checkpoints have stopped landing — a recovery after a
  // crash would have to replay an unbounded WAL suffix.
  const bool stale = batches_since_checkpoint_ >= 2 * config_.checkpoint_every;
  if (wal_stale_ != stale) {
    wal_stale_ = stale;
    obs::health().set(
        "stream.wal",
        stale ? obs::HealthStatus::kDegraded : obs::HealthStatus::kOk,
        util::format("%llu batches since checkpoint (every %llu)",
                     static_cast<unsigned long long>(batches_since_checkpoint_),
                     static_cast<unsigned long long>(config_.checkpoint_every)));
  }
}

std::string IngestDaemon::checkpoint_payload() const {
  Encoder e;
  e.u32(kCheckpointVersion);
  // Geometry fingerprint: a checkpoint from a differently-configured daemon
  // must not restore silently.
  e.u32(config_.window_minutes);
  e.u32(config_.shards);
  e.u64(watermark_);
  e.boolean(hello_seen_);
  e.u32(hello_.node_count);
  e.i64(hello_.warmup_minutes);
  e.u64(hello_.seed);
  e.boolean(hello_.faults_enabled);
  e.boolean(end_.has_value());
  if (end_) {
    encode_scheduler_stats(e, end_->scheduler);
    encode_availability(e, end_->availability);
    e.boolean(end_->has_power);
    if (end_->has_power) encode_power_report(e, end_->power);
  }
  encode_apply_stats(e, apply_);
  e.u8(static_cast<std::uint8_t>(mode_));
  e.u64(backlog_rows_);
  e.u32(dwell_);
  e.u64(throttled_samples_);
  e.u64(series_.total_power_w.size());
  for (const double v : series_.total_power_w) e.f64(v);
  for (const std::uint32_t v : series_.busy_nodes) e.u32(v);
  e.u64(records_.size());
  for (const auto& r : records_) encode_job_record(e, r);
  encode_quality(e, quality_);
  e.u64(node_slots_.size());
  for (const std::uint64_t v : node_slots_) e.u64(v);
  for (const std::uint64_t v : node_gap_slots_) e.u64(v);
  e.u64(history_.shards().size());
  for (const auto& shard : history_.shards()) {
    encode_running_stats(e, shard.watts);
    encode_p2(e, shard.p50);
    encode_p2(e, shard.p95);
    e.u64(shard.rows);
    e.u64(shard.rings.size());
    for (const auto& ring : shard.rings) {
      e.u64(ring.capacity());
      e.u64(ring.head());
      e.u64(ring.size());
      for (const double v : ring.raw()) e.f64(v);
    }
  }
  encode_running_stats(e, shed_watts_);
  encode_p2(e, shed_p50_);
  encode_p2(e, shed_p95_);
  return e.take();
}

bool IngestDaemon::restore_from(std::string_view payload) {
  try {
    Decoder d(payload);
    if (d.u32() != kCheckpointVersion) return false;
    if (d.u32() != config_.window_minutes) return false;
    if (d.u32() != config_.shards) return false;
    const std::uint64_t watermark = d.u64();
    const bool hello_seen = d.boolean();
    HelloInfo hello;
    hello.node_count = d.u32();
    hello.warmup_minutes = d.i64();
    hello.seed = d.u64();
    hello.faults_enabled = d.boolean();
    std::optional<EndInfo> end;
    if (d.boolean()) {
      EndInfo info;
      info.scheduler = decode_scheduler_stats(d);
      info.availability = decode_availability(d);
      info.has_power = d.boolean();
      if (info.has_power) info.power = decode_power_report(d);
      end = std::move(info);
    }
    const ApplyStats apply = decode_apply_stats(d);
    const std::uint8_t mode = d.u8();
    if (mode > static_cast<std::uint8_t>(IngestMode::kShedding)) return false;
    const std::uint64_t backlog = d.u64();
    const std::uint32_t dwell = d.u32();
    const std::uint64_t throttled = d.u64();
    const std::uint64_t series_len = d.u64();
    if (!d.ok() || series_len > payload.size()) return false;
    telemetry::SystemSeries series;
    series.total_power_w.reserve(static_cast<std::size_t>(series_len));
    for (std::uint64_t i = 0; i < series_len && d.ok(); ++i)
      series.total_power_w.push_back(d.f64());
    series.busy_nodes.reserve(static_cast<std::size_t>(series_len));
    for (std::uint64_t i = 0; i < series_len && d.ok(); ++i)
      series.busy_nodes.push_back(d.u32());
    const std::uint64_t record_count = d.u64();
    if (!d.ok() || record_count > payload.size()) return false;
    std::vector<telemetry::JobRecord> records;
    records.reserve(static_cast<std::size_t>(record_count));
    for (std::uint64_t i = 0; i < record_count && d.ok(); ++i)
      records.push_back(decode_job_record(d));
    const telemetry::DataQualityReport quality = decode_quality(d);
    const std::uint64_t node_count = d.u64();
    if (!d.ok() || node_count != (hello_seen ? hello.node_count : 0u))
      return false;
    std::vector<std::uint64_t> slots(static_cast<std::size_t>(node_count));
    std::vector<std::uint64_t> gaps(static_cast<std::size_t>(node_count));
    for (auto& v : slots) v = d.u64();
    for (auto& v : gaps) v = d.u64();
    const std::uint64_t shard_count = d.u64();
    if (!d.ok() || shard_count > 4096) return false;
    NodeHistoryShards history;
    if (hello_seen)
      history.reset(hello.node_count, config_.shards, config_.window_minutes);
    if (shard_count != history.shards().size()) return false;
    for (std::uint64_t i = 0; i < shard_count; ++i) {
      HistoryShard& shard = history.shards()[static_cast<std::size_t>(i)];
      shard.watts = decode_running_stats(d);
      decode_p2(d, shard.p50);
      decode_p2(d, shard.p95);
      shard.rows = d.u64();
      const std::uint64_t ring_count = d.u64();
      if (!d.ok() || ring_count != shard.rings.size()) return false;
      for (auto& ring : shard.rings) {
        const std::uint64_t capacity = d.u64();
        const std::uint64_t head = d.u64();
        const std::uint64_t size = d.u64();
        if (!d.ok() || capacity != ring.capacity()) return false;
        std::vector<double> raw(static_cast<std::size_t>(capacity));
        for (auto& v : raw) v = d.f64();
        ring.restore(std::move(raw), static_cast<std::size_t>(head),
                     static_cast<std::size_t>(size));
      }
    }
    stats::RunningStats shed_watts = decode_running_stats(d);
    stats::P2Quantile shed_p50{0.5}, shed_p95{0.95};
    decode_p2(d, shed_p50);
    decode_p2(d, shed_p95);
    if (!d.done()) return false;

    // All decoded and validated: commit.
    watermark_ = watermark;
    hello_seen_ = hello_seen;
    hello_ = hello;
    end_ = std::move(end);
    apply_ = apply;
    mode_ = static_cast<IngestMode>(mode);
    backlog_rows_ = backlog;
    dwell_ = dwell;
    throttled_samples_ = throttled;
    series_ = std::move(series);
    records_ = std::move(records);
    quality_ = quality;
    node_slots_ = std::move(slots);
    node_gap_slots_ = std::move(gaps);
    history_ = std::move(history);
    shed_watts_ = shed_watts;
    shed_p50_ = shed_p50;
    shed_p95_ = shed_p95;
    return true;
  } catch (const std::invalid_argument&) {
    return false;  // inconsistent sketch state in a corrupt checkpoint
  }
}

bool IngestDaemon::recover() {
  if (!wal_) return false;
  HPCPOWER_SPAN("stream.recover");
  recovery_ = {};
  for (const auto& candidate : wal_->checkpoints(recovery_)) {
    if (restore_from(candidate.payload)) {
      recovery_.checkpoint_loaded = true;
      recovery_.checkpoint_seq = candidate.seq;
      break;
    }
  }
  const auto records = [&] {
    HPCPOWER_SPAN("stream.wal.replay");
    return wal_->replay(watermark_, recovery_);
  }();
  replaying_ = true;
  for (const auto& [seq, payload] : records) {
    if (seq < watermark_ || pending_.count(seq) != 0) continue;
    auto batch = decode_batch_payload(payload);
    if (!batch) {
      ++recovery_.torn_records_skipped;
      continue;
    }
    pending_.emplace(seq, std::move(*batch));
  }
  pump();
  replaying_ = false;
  batches_since_checkpoint_ = 0;
  return recovery_.checkpoint_loaded || watermark_ > 0;
}

core::CampaignData IngestDaemon::finalize() const {
  if (!end_)
    throw std::logic_error("IngestDaemon::finalize: stream incomplete (no end batch)");
  core::CampaignData data;
  data.spec = spec_;
  data.records = records_;
  data.series = series_;
  data.scheduler = end_->scheduler;
  data.availability = end_->availability;
  data.throttled_samples = throttled_samples_;
  data.quality = quality_;
  derive_node_summary(data.quality, node_slots_, node_gap_slots_);
  if (end_->has_power) data.power = end_->power;
  return data;
}

std::string IngestDaemon::render_summary() const {
  // Everything here is apply-side state: identical between an uninterrupted
  // run and any crash+recover run of the same stream. Transit/WAL counters
  // are deliberately absent (retry schedules restart after a crash).
  std::string out;
  out += "stream summary v1\n";
  out += util::format("watermark %llu end=%d\n",
                      static_cast<unsigned long long>(watermark_),
                      end_ ? 1 : 0);
  out += util::format("hello nodes=%u warmup=%lld faults=%d\n",
                      hello_.node_count,
                      static_cast<long long>(hello_.warmup_minutes),
                      hello_.faults_enabled ? 1 : 0);
  out += util::format(
      "applied batches=%llu ticks=%llu rows=%llu deferred=%llu shed=%llu "
      "job_ends=%llu\n",
      static_cast<unsigned long long>(apply_.batches_applied),
      static_cast<unsigned long long>(apply_.ticks_applied),
      static_cast<unsigned long long>(apply_.rows_applied),
      static_cast<unsigned long long>(apply_.rows_deferred),
      static_cast<unsigned long long>(apply_.rows_shed),
      static_cast<unsigned long long>(apply_.job_ends_applied));
  out += util::format(
      "mode now=%s transitions=%llu occupancy normal=%llu lagging=%llu "
      "shedding=%llu backlog=%llu\n",
      ingest_mode_name(mode_),
      static_cast<unsigned long long>(apply_.mode_transitions),
      static_cast<unsigned long long>(apply_.batches_normal),
      static_cast<unsigned long long>(apply_.batches_lagging),
      static_cast<unsigned long long>(apply_.batches_shedding),
      static_cast<unsigned long long>(backlog_rows_));
  out += util::format("throttled %llu\n",
                      static_cast<unsigned long long>(throttled_samples_));

  // Exact content digests: CRC-32 over the canonical encodings, so a single
  // flipped bit anywhere in the reconstructed dataset changes the summary.
  {
    Encoder e;
    e.u64(series_.total_power_w.size());
    for (const double v : series_.total_power_w) e.f64(v);
    for (const std::uint32_t v : series_.busy_nodes) e.u32(v);
    out += util::format("series n=%zu crc=%08x\n", series_.total_power_w.size(),
                        storage::crc32(e.data()));
  }
  {
    Encoder e;
    for (const auto& r : records_) encode_job_record(e, r);
    out += util::format("records n=%zu crc=%08x\n", records_.size(),
                        storage::crc32(e.data()));
  }
  {
    telemetry::DataQualityReport q = quality_;
    derive_node_summary(q, node_slots_, node_gap_slots_);
    Encoder e;
    encode_quality(e, q);
    out += util::format("quality crc=%08x %s\n", storage::crc32(e.data()),
                        telemetry::describe(q).c_str());
  }
  {
    Encoder e;
    if (end_) {
      encode_scheduler_stats(e, end_->scheduler);
      encode_availability(e, end_->availability);
      e.boolean(end_->has_power);
      if (end_->has_power) encode_power_report(e, end_->power);
    }
    out += util::format("end crc=%08x\n", storage::crc32(e.data()));
  }
  const stats::RunningStats merged = history_.merged_watts();
  out += util::format(
      "history rows=%llu retained=%llu mean=%.17g std=%.17g min=%.17g "
      "max=%.17g p50=%.17g p95=%.17g\n",
      static_cast<unsigned long long>(history_.total_rows()),
      static_cast<unsigned long long>(history_.retained_samples()),
      merged.mean(), merged.stddev(), merged.min(), merged.max(),
      history_.shards().empty() ? 0.0 : [&] {
        // Deterministic cross-shard quantile roll-up: mean of shard sketches
        // in shard order (shards are node-id partitions of one population).
        double s = 0.0;
        for (const auto& sh : history_.shards()) s += sh.p50.value();
        return s / static_cast<double>(history_.shards().size());
      }(),
      history_.shards().empty() ? 0.0 : [&] {
        double s = 0.0;
        for (const auto& sh : history_.shards()) s += sh.p95.value();
        return s / static_cast<double>(history_.shards().size());
      }());
  out += util::format("shed n=%llu mean=%.17g p50=%.17g p95=%.17g\n",
                      static_cast<unsigned long long>(shed_watts_.count()),
                      shed_watts_.mean(), shed_p50_.value(), shed_p95_.value());
  return out;
}

void IngestDaemon::export_metrics() const {
  auto& m = obs::metrics();
  m.count("stream.batches.offered", transit_.offered);
  m.count("stream.batches.accepted", transit_.accepted);
  m.count("stream.batches.applied", apply_.batches_applied);
  m.count("stream.batches.duplicate", transit_.duplicates_dropped);
  m.count("stream.batches.stale", transit_.stale_dropped);
  m.count("stream.backpressure.rejected", transit_.backpressure_rejected);
  m.count("stream.ticks.applied", apply_.ticks_applied);
  m.count("stream.rows.applied", apply_.rows_applied);
  m.count("stream.rows.deferred", apply_.rows_deferred);
  m.count("stream.rows.shed", apply_.rows_shed);
  m.count("stream.jobs.applied", apply_.job_ends_applied);
  m.count("stream.mode.transitions", apply_.mode_transitions);
  if (wal_) {
    m.count("stream.wal.records", wal_->records_appended());
    m.count("stream.wal.segments", wal_->segments_opened());
    m.count("stream.wal.checkpoints", wal_->checkpoints_written());
    m.count("stream.wal.replayed", recovery_.records_replayed);
    m.count("stream.wal.torn", recovery_.torn_records_skipped);
  }
  m.gauge("stream.pending.peak").set(static_cast<double>(transit_.peak_pending));
  m.gauge("stream.rows.retained")
      .set(static_cast<double>(history_.retained_samples()));
  m.gauge("stream.backlog.rows").set(static_cast<double>(backlog_rows_));
}

}  // namespace hpcpower::stream

#pragma once
// Crash-safe streaming ingest daemon.
//
// Consumes a campaign as an ordered stream of per-minute batches (batch.hpp)
// and incrementally reconstructs the exact CampaignData the batch pipeline
// would have produced — the report rendered from finalize() is byte-identical
// to the uninterrupted batch run, and stays byte-identical across a kill -9
// at any batch boundary (WAL + watermark checkpoints, wal.hpp).
//
// Robustness model, mirroring the repo's other closed-loop subsystems:
//   * Watermark ordering: batches apply strictly in seq order. Out-of-order
//     arrivals wait in a bounded pending buffer; duplicates and stale seqs
//     are dropped at the door. Transit-side accounting (TransitStats) is
//     deliberately separate from apply-side accounting (ApplyStats): only
//     the latter is checkpointed and crash-invariant, since retry schedules
//     restart after a crash.
//   * Backpressure: a full pending buffer rejects the offer; the driver
//     retries with exponential backoff. The next in-order seq is always
//     accepted even when full (it drains immediately), so progress is
//     guaranteed.
//   * Degraded modes: a deterministic backlog model (rows in minus a fixed
//     drain capacity per batch) drives NORMAL -> LAGGING -> SHEDDING with
//     hysteresis and a minimum dwell, like the power manager's mode machine.
//     LAGGING defers per-sample ring writes; SHEDDING folds overflow rows
//     into Welford + P-squared summary sketches and books every shed row in
//     the quality ledger (rows_shed) — ledgers and job records are never
//     shed, only detail.
//
// Thread-count invariance: rows apply shard-parallel over disjoint shard
// state (ring.hpp); everything else is strictly sequential in seq order.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/system_spec.hpp"
#include "core/study.hpp"
#include "storage/hpcb.hpp"
#include "stream/batch.hpp"
#include "stream/ring.hpp"
#include "stream/wal.hpp"

#include <iosfwd>

namespace hpcpower::stream {

enum class IngestMode : std::uint8_t { kNormal = 0, kLagging = 1, kShedding = 2 };
[[nodiscard]] const char* ingest_mode_name(IngestMode m) noexcept;

/// Crash-injection hooks for the chaos harness / demo. The daemon calls
/// std::_Exit(137) at the configured point, leaving exactly the on-disk
/// state a kill -9 would.
enum class CrashMode : std::uint8_t {
  kNone = 0,
  kAfterBatch = 1,       ///< exit right after seq's WAL record is durable
  kTornWal = 2,          ///< append a partial garbage record first, then exit
  kTornCheckpoint = 3,   ///< exit mid-checkpoint (tmp written, never renamed)
};

struct IngestConfig {
  /// WAL + checkpoint directory; empty disables durability (pure in-memory).
  std::string wal_dir;
  std::uint32_t window_minutes = 32;   ///< per-node ring capacity
  std::uint32_t shards = 4;
  std::uint64_t pending_capacity = 64; ///< bounded reorder buffer (batches)
  std::uint64_t wal_segment_records = 256;
  std::uint64_t checkpoint_every = 0;  ///< batches between checkpoints (0 = manual)
  std::uint64_t keep_checkpoints = 2;

  /// Degraded-mode machine. capacity_rows_per_batch == 0 disables it (the
  /// backlog never accumulates; equivalence runs use this).
  std::uint64_t capacity_rows_per_batch = 0;
  double lagging_enter = 1.0;    ///< backlog/capacity ratio entering LAGGING
  double lagging_exit = 0.25;
  double shedding_enter = 4.0;
  double shedding_exit = 1.0;
  std::uint32_t min_dwell_batches = 4;
  /// Rows per batch still applied to shard aggregates while SHEDDING; the
  /// rest go to the shed sketch only.
  std::uint64_t shed_keep_rows_per_batch = 0;

  std::uint64_t crash_after_seq = 0;  ///< 0 = no crash injection
  CrashMode crash_mode = CrashMode::kNone;

  /// Non-empty: spill every applied in-campaign detail row to this .hpcb
  /// file (schema minute/job_id/node/watts) through the incremental chunk
  /// writer, so streaming windows become zone-map range queries
  /// (trace_explorer --where / load-time pruning) instead of ring walks.
  /// The spill is an analysis sidecar, not part of the crash-equivalence
  /// contract: the file restarts empty on construction and is rebuilt by
  /// WAL replay, so after a checkpoint-based recovery it holds only the
  /// rows applied since the checkpoint. SHEDDING-dropped rows are absent
  /// (they exist only in the shed sketch, booked in the quality ledger).
  std::string spill_path;

  /// Invoked once per kept, post-warm-up job record at the moment it applies
  /// — the feed for online consumers such as the prediction serving layer.
  /// Fires during WAL replay too, so a recovered daemon rebuilds downstream
  /// state (e.g. a serving feature store) deterministically from the same
  /// records an uninterrupted run delivered. Must not call back into the
  /// daemon.
  std::function<void(const telemetry::JobRecord&)> on_job_completed;
};

/// Apply-side accounting: advanced only when the watermark advances, fully
/// checkpointed, and therefore identical between an uninterrupted run and
/// any crash+recover run of the same stream.
struct ApplyStats {
  std::uint64_t batches_applied = 0;
  std::uint64_t ticks_applied = 0;
  std::uint64_t rows_applied = 0;    ///< reached shard aggregates
  std::uint64_t rows_deferred = 0;   ///< LAGGING: ring write skipped
  std::uint64_t rows_shed = 0;       ///< SHEDDING: sketch only
  std::uint64_t job_ends_applied = 0;
  std::uint64_t mode_transitions = 0;
  std::uint64_t batches_normal = 0;
  std::uint64_t batches_lagging = 0;
  std::uint64_t batches_shedding = 0;

  friend bool operator==(const ApplyStats&, const ApplyStats&) = default;
};

/// Offer-side accounting: process-local, never checkpointed, excluded from
/// crash-equivalence diffs (retry schedules restart after a crash).
struct TransitStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t backpressure_rejected = 0;
  std::uint64_t peak_pending = 0;
};

enum class OfferResult : std::uint8_t {
  kAccepted = 0,
  kDuplicate = 1,     ///< seq already pending
  kStale = 2,         ///< seq at or below the watermark (already applied)
  kBackpressure = 3,  ///< pending buffer full; retry later
};

class IngestDaemon {
 public:
  IngestDaemon(cluster::SystemSpec spec, IngestConfig config);
  ~IngestDaemon();

  /// Offers one batch. kAccepted means the batch is durable (when a WAL is
  /// configured) and will be applied; anything else was not ingested.
  OfferResult offer(const StreamBatch& batch);

  /// Flushes the .hpcb spill (tail block + zone maps + footer) so it can be
  /// queried. Idempotent; no-op without IngestConfig::spill_path. Called by
  /// the destructor as a safety net; rows offered after an explicit
  /// finish_spill() are no longer spilled.
  void finish_spill();
  [[nodiscard]] std::uint64_t spill_rows() const noexcept {
    return spill_rows_;
  }

  /// Loads the newest valid checkpoint and replays newer WAL records.
  /// Returns true when any durable state was recovered. Safe on an empty or
  /// missing directory (fresh start).
  bool recover();

  /// Writes a checkpoint of the complete apply-side state now.
  void checkpoint();

  /// Count of contiguously applied batches == the next expected seq (seqs
  /// [0, watermark) are durably applied; 0 before the hello batch applies).
  [[nodiscard]] std::uint64_t watermark() const noexcept { return watermark_; }
  [[nodiscard]] bool end_applied() const noexcept { return end_.has_value(); }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] IngestMode mode() const noexcept { return mode_; }
  [[nodiscard]] const ApplyStats& apply_stats() const noexcept { return apply_; }
  [[nodiscard]] const TransitStats& transit_stats() const noexcept {
    return transit_;
  }
  [[nodiscard]] const NodeHistoryShards& history() const noexcept {
    return history_;
  }
  [[nodiscard]] const WalRecoveryStats& recovery_stats() const noexcept {
    return recovery_;
  }
  [[nodiscard]] const telemetry::DataQualityReport& quality() const noexcept {
    return quality_;
  }

  /// The reconstructed campaign dataset. Requires end_applied(): the stream
  /// must be complete. Byte-identical (through render_markdown_report) to
  /// the CampaignData of the equivalent batch run.
  [[nodiscard]] core::CampaignData finalize() const;

  /// Deterministic plain-text digest of the apply-side state (watermark,
  /// ledgers, mode occupancy, shard aggregates). This is what the chaos
  /// harness diffs between interrupted and uninterrupted runs.
  [[nodiscard]] std::string render_summary() const;

  /// One bulk stream.* counter/gauge export (same pattern as the campaign's
  /// telemetry.* bulk update: the per-batch hot path stays counter-free).
  void export_metrics() const;

 private:
  void pump();
  void apply(const StreamBatch& batch);
  void apply_job_end(const telemetry::TapJobEnd& end);
  void merge_quality_delta(const telemetry::DataQualityReport& d);
  void step_mode(std::uint64_t rows_kept);
  /// Monitoring-only WAL/checkpoint freshness probe ("stream.wal" health +
  /// "stream.wal.batches_since_checkpoint" gauge). No-op without a WAL or
  /// with manual checkpointing (checkpoint_every == 0).
  void update_wal_freshness();
  void maybe_crash(std::uint64_t seq);
  [[nodiscard]] std::string checkpoint_payload() const;
  [[nodiscard]] bool restore_from(std::string_view payload);

  cluster::SystemSpec spec_;
  IngestConfig config_;
  std::unique_ptr<WriteAheadLog> wal_;
  bool replaying_ = false;

  // Apply-side state (everything below is checkpointed).
  std::uint64_t watermark_ = 0;
  bool hello_seen_ = false;
  HelloInfo hello_;
  std::optional<EndInfo> end_;
  ApplyStats apply_;
  IngestMode mode_ = IngestMode::kNormal;
  std::uint64_t backlog_rows_ = 0;
  std::uint32_t dwell_ = 0;
  std::vector<telemetry::JobRecord> records_;
  telemetry::SystemSeries series_;
  std::uint64_t throttled_samples_ = 0;
  telemetry::DataQualityReport quality_;
  std::vector<std::uint64_t> node_slots_;
  std::vector<std::uint64_t> node_gap_slots_;
  NodeHistoryShards history_;
  stats::RunningStats shed_watts_;
  stats::P2Quantile shed_p50_{0.5};
  stats::P2Quantile shed_p95_{0.95};
  std::uint64_t batches_since_checkpoint_ = 0;

  // Process-local state (not checkpointed).
  /// Last pushed "stream.wal" freshness verdict; empty until first pushed.
  std::optional<bool> wal_stale_;
  std::map<std::uint64_t, StreamBatch> pending_;
  TransitStats transit_;
  WalRecoveryStats recovery_;

  // .hpcb spill sidecar (see IngestConfig::spill_path; not checkpointed).
  void spill_tick_rows(const telemetry::TapTick& tick, std::uint64_t kept);
  std::unique_ptr<std::ofstream> spill_out_;
  std::unique_ptr<storage::HpcbChunkWriter> spill_;
  std::uint64_t spill_rows_ = 0;
};

}  // namespace hpcpower::stream

#pragma once
// Segmented write-ahead log + checkpoint store for the ingest daemon.
//
// Durability contract: a batch is acknowledged only after its CRC-framed
// record is appended and flushed to the current segment, so a kill -9 at any
// point loses at most the bytes of a record that was never acknowledged. On
// recovery the newest valid checkpoint is loaded and every record with
// seq > checkpoint watermark is replayed through the normal apply path; a
// torn or corrupt record ends its segment's replay (counted, never fatal) —
// the .hpcb torn-tail discipline applied to a log.
//
// Layout inside the directory:
//   wal-<index>.seg   CRC-framed records in arrival order. Segments are
//                     named by a monotone index (not by seq: arrival order
//                     is not seq order under reordering faults), rotated
//                     every `segment_records` records, and never appended to
//                     again after recovery — a fresh segment is started so a
//                     torn tail stays quarantined.
//   ckpt-<seq>.bin    one CRC-framed checkpoint payload; written to a .tmp
//                     and renamed, so a torn checkpoint never shadows an
//                     older valid one. The newest `keep_checkpoints` are
//                     retained.
//
// Record payload: varint seq + length-prefixed batch payload bytes.

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::stream {

struct WalOptions {
  std::string dir;
  std::uint64_t segment_records = 256;
  std::uint64_t keep_checkpoints = 2;
};

/// Ledger of one recovery pass (surfaced in the daemon summary and metrics).
struct WalRecoveryStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_seen = 0;
  std::uint64_t records_replayed = 0;   ///< seq > watermark, handed to daemon
  std::uint64_t torn_records_skipped = 0;
  std::uint64_t checkpoints_tried = 0;
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_seq = 0;
};

class WriteAheadLog {
 public:
  explicit WriteAheadLog(WalOptions options);

  /// Appends one framed record and flushes. Throws std::runtime_error on I/O
  /// failure (a daemon that cannot persist must not acknowledge).
  void append(std::uint64_t seq, std::string_view batch_payload);

  /// Test hook: appends raw garbage bytes to the current segment without
  /// framing, simulating a record torn mid-write by a crash.
  void append_torn_tail(std::string_view garbage);

  /// Writes a checkpoint (framed payload) for `seq` via tmp + rename, then
  /// prunes old checkpoints and fully-obsolete segments. When `leave_torn`
  /// is set (crash-injection hook) the tmp file is written but never
  /// renamed, simulating a crash mid-checkpoint.
  void write_checkpoint(std::uint64_t seq, std::string_view payload,
                        bool leave_torn = false);

  struct CheckpointCandidate {
    std::uint64_t seq = 0;
    std::string payload;
  };
  /// Valid checkpoints, newest first (CRC-checked; corrupt files skipped and
  /// counted). Semantic validation is the caller's job.
  [[nodiscard]] std::vector<CheckpointCandidate> checkpoints(
      WalRecoveryStats& stats) const;

  /// All records with seq >= `from_seq`, sorted by seq (dedup keeps the
  /// first occurrence). Also primes the writer to start a fresh segment.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> replay(
      std::uint64_t from_seq, WalRecoveryStats& stats);

  /// Deletes closed segments whose every record has seq <= watermark.
  void prune_segments(std::uint64_t watermark);

  [[nodiscard]] const std::string& dir() const noexcept { return options_.dir; }
  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return records_appended_;
  }
  [[nodiscard]] std::uint64_t segments_opened() const noexcept {
    return segments_opened_;
  }
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return checkpoints_written_;
  }

 private:
  void open_fresh_segment();
  [[nodiscard]] std::string segment_path(std::uint64_t index) const;
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
  list_segments() const;  ///< (index, path), ascending

  WalOptions options_;
  std::ofstream out_;
  std::uint64_t current_index_ = 0;
  std::uint64_t records_in_segment_ = 0;
  std::uint64_t current_segment_max_seq_ = 0;
  std::uint64_t next_index_ = 0;  ///< first unused segment index
  std::map<std::uint64_t, std::uint64_t> segment_max_seq_;  ///< closed only
  std::uint64_t records_appended_ = 0;
  std::uint64_t segments_opened_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  bool writer_open_ = false;
};

}  // namespace hpcpower::stream

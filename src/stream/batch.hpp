#pragma once
// The streaming wire protocol: a campaign as an ordered sequence of durable
// batches.
//
// A streamed campaign is exactly one kHello batch (seq 0: topology and
// campaign geometry), one kTick batch per simulated minute (seq 1..M, in
// simulated-time order: the minute's accepted samples, facility meter point,
// data-quality ledger delta, and every job that finished since the previous
// minute), and one kEnd batch (seq M+1) carrying the ledgers only the
// resource manager knows (scheduler and availability stats, the power
// manager's report) plus any job ends that fired after the final monitored
// minute. Summing the deltas of batches 1..M+1 in seq order reproduces the
// batch pipeline's CampaignData bit-identically — the daemon's core
// invariant, property-tested in test_stream_equivalence.
//
// Encoding: one CRC-framed record (codec.hpp) per batch, integers as
// zigzag-varints, doubles as IEEE-754 bit patterns. decode_batch returns
// nullopt on any corruption instead of throwing, so WAL replay can skip a
// torn tail without unwinding.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "power/manager.hpp"
#include "sched/scheduler.hpp"
#include "sched/simulator.hpp"
#include "telemetry/stream_tap.hpp"

namespace hpcpower::stream {

enum class BatchKind : std::uint8_t { kHello = 0, kTick = 1, kEnd = 2 };

/// seq 0: everything the daemon must know before the first tick.
struct HelloInfo {
  std::uint32_t node_count = 0;
  std::int64_t warmup_minutes = 0;
  std::uint64_t seed = 0;
  bool faults_enabled = false;
};

/// Final batch: resource-manager-side ledgers exported once at campaign end.
struct EndInfo {
  sched::SchedulerStats scheduler;
  sched::AvailabilityStats availability;
  bool has_power = false;
  power::PowerReport power;
};

struct StreamBatch {
  std::uint64_t seq = 0;
  BatchKind kind = BatchKind::kTick;

  HelloInfo hello;  // kHello only

  // kTick only. in_campaign is false for warm-up minutes: their meter/quality
  // deltas still count (the batch pipeline meters warm-up too before
  // discarding the series prefix) but no detail rows are shipped.
  bool in_campaign = false;
  telemetry::TapTick tick;
  /// Jobs that ended since the previous tick (kTick), or after the final
  /// tick (kEnd), in simulated completion order.
  std::vector<telemetry::TapJobEnd> job_ends;

  EndInfo end;  // kEnd only
};

/// Unframed payload codecs (shared by the WAL, checkpoints, and tests).
[[nodiscard]] std::string encode_batch_payload(const StreamBatch& b);
[[nodiscard]] std::optional<StreamBatch> decode_batch_payload(std::string_view payload);

/// Framed (kBatchMagic + CRC) wire form.
[[nodiscard]] std::string encode_batch(const StreamBatch& b);
[[nodiscard]] std::optional<StreamBatch> decode_batch(std::string_view framed);

// Field-struct codecs reused by the daemon's checkpoint writer.
class Encoder;
class Decoder;
void encode_job_record(Encoder& e, const telemetry::JobRecord& r);
[[nodiscard]] telemetry::JobRecord decode_job_record(Decoder& d);
void encode_quality(Encoder& e, const telemetry::DataQualityReport& q);
[[nodiscard]] telemetry::DataQualityReport decode_quality(Decoder& d);
void encode_scheduler_stats(Encoder& e, const sched::SchedulerStats& s);
[[nodiscard]] sched::SchedulerStats decode_scheduler_stats(Decoder& d);
void encode_availability(Encoder& e, const sched::AvailabilityStats& a);
[[nodiscard]] sched::AvailabilityStats decode_availability(Decoder& d);
void encode_power_report(Encoder& e, const power::PowerReport& p);
[[nodiscard]] power::PowerReport decode_power_report(Decoder& d);

}  // namespace hpcpower::stream

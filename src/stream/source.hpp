#pragma once
// Streamed-campaign source: runs one batch campaign with the telemetry tap
// installed and feeds the resulting batch stream through a StreamDriver into
// an IngestDaemon.
//
// This is the equivalence harness the tentpole invariant rests on: the same
// simulation produces both the batch CampaignData (from run_campaign's return
// value) and the streamed CampaignData (from the daemon's finalize()), and
// render_markdown_report over the two must be byte-identical — with transit
// faults on, with degraded modes disabled (capacity_rows_per_batch == 0),
// at any thread count.
//
// Resume semantics: the source regenerates the campaign deterministically
// from the seed, so after a crash the caller recover()s the daemon and simply
// re-runs the source — every already-applied seq is dropped at the door as
// stale and the stream continues from the watermark.

#include <cstdint>

#include "cluster/system_spec.hpp"
#include "core/study.hpp"
#include "stream/daemon.hpp"
#include "stream/driver.hpp"

namespace hpcpower::stream {

struct StreamedCampaignResult {
  core::CampaignData batch;     ///< the uninterrupted batch dataset
  core::CampaignData streamed;  ///< the daemon's reconstruction
  ApplyStats apply;
  TransitStats transit;
  DriverLedger ledger;
  /// Total batches in the stream (hello + ticks + end) == final watermark.
  std::uint64_t batches_emitted = 0;
};

/// Runs the campaign for `spec` with the tap installed, streaming every batch
/// through `driver` into its daemon. The daemon may std::_Exit mid-run when
/// crash injection is configured; otherwise the driver is flushed and the
/// stream is complete on return. `config.tap` must be empty (the source owns
/// the tap).
[[nodiscard]] StreamedCampaignResult run_streamed_campaign(
    const cluster::SystemSpec& spec, const core::StudyConfig& config,
    IngestDaemon& daemon, StreamDriver& driver);

/// Convenience wrapper: builds the daemon + driver internally and returns the
/// completed result (no crash injection, no WAL unless configured).
[[nodiscard]] StreamedCampaignResult run_streamed_campaign(
    const cluster::SystemSpec& spec, const core::StudyConfig& config,
    const IngestConfig& ingest, const TransitFaultConfig& faults = {});

}  // namespace hpcpower::stream

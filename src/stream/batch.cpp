#include "stream/batch.hpp"

#include "stream/codec.hpp"

namespace hpcpower::stream {

void encode_job_record(Encoder& e, const telemetry::JobRecord& r) {
  e.u64(r.job_id);
  e.u64(r.user_id);
  e.u64(r.app);
  e.u8(static_cast<std::uint8_t>(r.system));
  e.i64(r.submit.minutes());
  e.i64(r.start.minutes());
  e.i64(r.end.minutes());
  e.u32(r.nnodes);
  e.u32(r.walltime_req_min);
  e.boolean(r.backfilled);
  e.boolean(r.truncated_by_horizon);
  e.u8(static_cast<std::uint8_t>(r.exit));
  e.u32(r.attempt);
  e.f64(r.mean_node_power_w);
  e.f64(r.temporal_std_w);
  e.f64(r.peak_node_power_w);
  e.f64(r.mean_pkg_w);
  e.f64(r.mean_dram_w);
  e.f64(r.energy_kwh);
  e.f64(r.node_energy_min_kwh);
  e.f64(r.node_energy_max_kwh);
  e.boolean(r.detail.has_value());
  if (r.detail) {
    e.f64(r.detail->peak_overshoot);
    e.f64(r.detail->frac_time_above_10pct);
    e.f64(r.detail->avg_spatial_spread_w);
    e.f64(r.detail->spread_fraction_of_power);
    e.f64(r.detail->frac_time_above_avg_spread);
  }
}

telemetry::JobRecord decode_job_record(Decoder& d) {
  telemetry::JobRecord r;
  r.job_id = d.u64();
  r.user_id = static_cast<workload::UserId>(d.u64());
  r.app = static_cast<workload::AppId>(d.u64());
  r.system = static_cast<cluster::SystemId>(d.u8());
  r.submit = util::MinuteTime{d.i64()};
  r.start = util::MinuteTime{d.i64()};
  r.end = util::MinuteTime{d.i64()};
  r.nnodes = d.u32();
  r.walltime_req_min = d.u32();
  r.backfilled = d.boolean();
  r.truncated_by_horizon = d.boolean();
  const std::uint8_t exit = d.u8();
  if (exit > static_cast<std::uint8_t>(sched::ExitStatus::kCancelled)) d.fail();
  r.exit = static_cast<sched::ExitStatus>(exit);
  r.attempt = d.u32();
  r.mean_node_power_w = d.f64();
  r.temporal_std_w = d.f64();
  r.peak_node_power_w = d.f64();
  r.mean_pkg_w = d.f64();
  r.mean_dram_w = d.f64();
  r.energy_kwh = d.f64();
  r.node_energy_min_kwh = d.f64();
  r.node_energy_max_kwh = d.f64();
  if (d.boolean()) {
    telemetry::DetailMetrics m;
    m.peak_overshoot = d.f64();
    m.frac_time_above_10pct = d.f64();
    m.avg_spatial_spread_w = d.f64();
    m.spread_fraction_of_power = d.f64();
    m.frac_time_above_avg_spread = d.f64();
    r.detail = m;
  }
  return r;
}

void encode_quality(Encoder& e, const telemetry::DataQualityReport& q) {
  e.u64(q.samples_expected);
  e.u64(q.samples_ok);
  e.u64(q.samples_glitch);
  e.u64(q.samples_gap);
  e.u64(q.samples_duplicate);
  e.u64(q.samples_interpolated);
  e.u64(q.glitches_repaired);
  e.u64(q.rows_out_of_order);
  e.u64(q.rows_shed);
  e.u64(q.jobs_seen);
  e.u64(q.jobs_quarantined_accounting);
  e.u64(q.jobs_quarantined_low_quality);
  e.u64(q.jobs_truncated_by_crash);
  e.f64(q.mean_node_dropout_rate);
  e.f64(q.max_node_dropout_rate);
  e.u32(q.worst_node);
  e.u32(q.nodes_with_gaps);
}

telemetry::DataQualityReport decode_quality(Decoder& d) {
  telemetry::DataQualityReport q;
  q.samples_expected = d.u64();
  q.samples_ok = d.u64();
  q.samples_glitch = d.u64();
  q.samples_gap = d.u64();
  q.samples_duplicate = d.u64();
  q.samples_interpolated = d.u64();
  q.glitches_repaired = d.u64();
  q.rows_out_of_order = d.u64();
  q.rows_shed = d.u64();
  q.jobs_seen = d.u64();
  q.jobs_quarantined_accounting = d.u64();
  q.jobs_quarantined_low_quality = d.u64();
  q.jobs_truncated_by_crash = d.u64();
  q.mean_node_dropout_rate = d.f64();
  q.max_node_dropout_rate = d.f64();
  q.worst_node = d.u32();
  q.nodes_with_gaps = d.u32();
  return q;
}

void encode_scheduler_stats(Encoder& e, const sched::SchedulerStats& s) {
  e.u64(s.submitted);
  e.u64(s.started);
  e.u64(s.completed);
  e.u64(s.backfilled);
  e.u64(s.killed);
  e.u64(s.rejected);
  e.f64(s.total_wait_minutes);
  e.u64(s.max_queue_depth);
}

sched::SchedulerStats decode_scheduler_stats(Decoder& d) {
  sched::SchedulerStats s;
  s.submitted = d.u64();
  s.started = d.u64();
  s.completed = d.u64();
  s.backfilled = d.u64();
  s.killed = d.u64();
  s.rejected = d.u64();
  s.total_wait_minutes = d.f64();
  s.max_queue_depth = static_cast<std::size_t>(d.u64());
  return s;
}

void encode_availability(Encoder& e, const sched::AvailabilityStats& a) {
  e.u64(a.node_minutes_total);
  e.u64(a.node_minutes_down);
  e.u64(a.node_failures);
  e.u64(a.attempts_killed);
  e.u64(a.requeues);
  e.u64(a.requeues_exhausted);
  e.f64(a.requeue_wait_minutes);
}

sched::AvailabilityStats decode_availability(Decoder& d) {
  sched::AvailabilityStats a;
  a.node_minutes_total = d.u64();
  a.node_minutes_down = d.u64();
  a.node_failures = d.u64();
  a.attempts_killed = d.u64();
  a.requeues = d.u64();
  a.requeues_exhausted = d.u64();
  a.requeue_wait_minutes = d.f64();
  return a;
}

void encode_power_report(Encoder& e, const power::PowerReport& p) {
  e.f64(p.site_cap_w);
  e.f64(p.pool_w);
  e.f64(p.guard_band);
  e.str(p.predictor);
  e.u64(p.jobs_granted);
  e.i64(p.granted_mw);
  e.i64(p.released_mw);
  e.i64(p.held_mw);
  e.i64(p.throttled_mw);
  e.boolean(p.ledger_reconciles);
  e.i64(p.peak_held_mw);
  e.u64(p.minutes_normal);
  e.u64(p.minutes_throttle);
  e.u64(p.minutes_degraded);
  e.u64(p.throttle_events);
  e.u64(p.degraded_events);
  e.u64(p.meter_samples);
  e.u64(p.meter_faults_injected);
  e.u64(p.meter_samples_rejected);
  e.f64(p.max_true_site_w);
  e.f64(p.max_filtered_site_w);
  e.u64(p.cap_violation_minutes);
  e.f64(p.mean_committed_w);
  e.f64(p.mean_tdp_committed_w);
}

power::PowerReport decode_power_report(Decoder& d) {
  power::PowerReport p;
  p.site_cap_w = d.f64();
  p.pool_w = d.f64();
  p.guard_band = d.f64();
  p.predictor = d.str();
  p.jobs_granted = d.u64();
  p.granted_mw = d.i64();
  p.released_mw = d.i64();
  p.held_mw = d.i64();
  p.throttled_mw = d.i64();
  p.ledger_reconciles = d.boolean();
  p.peak_held_mw = d.i64();
  p.minutes_normal = d.u64();
  p.minutes_throttle = d.u64();
  p.minutes_degraded = d.u64();
  p.throttle_events = d.u64();
  p.degraded_events = d.u64();
  p.meter_samples = d.u64();
  p.meter_faults_injected = d.u64();
  p.meter_samples_rejected = d.u64();
  p.max_true_site_w = d.f64();
  p.max_filtered_site_w = d.f64();
  p.cap_violation_minutes = d.u64();
  p.mean_committed_w = d.f64();
  p.mean_tdp_committed_w = d.f64();
  return p;
}

namespace {

void encode_job_end(Encoder& e, const telemetry::TapJobEnd& j) {
  e.boolean(j.kept);
  if (j.kept) encode_job_record(e, j.record);
  encode_quality(e, j.quality_delta);
}

telemetry::TapJobEnd decode_job_end(Decoder& d) {
  telemetry::TapJobEnd j;
  j.kept = d.boolean();
  if (j.kept) j.record = decode_job_record(d);
  j.quality_delta = decode_quality(d);
  return j;
}

void encode_tick(Encoder& e, const telemetry::TapTick& t) {
  e.i64(t.minute);
  e.f64(t.total_power_w);
  e.u32(t.busy_nodes);
  e.u64(t.throttled);
  // Rows: node ids delta-coded in emission order (placement order within a
  // job makes runs of consecutive ids common), watts as bit patterns.
  e.u64(t.rows.size());
  std::int64_t prev_node = 0;
  std::int64_t prev_job = 0;
  for (const auto& r : t.rows) {
    e.i64(static_cast<std::int64_t>(r.job_id) - prev_job);
    prev_job = static_cast<std::int64_t>(r.job_id);
    e.i64(static_cast<std::int64_t>(r.node) - prev_node);
    prev_node = static_cast<std::int64_t>(r.node);
    e.f64(r.watts);
  }
  e.u64(t.node_slots.size());
  prev_node = 0;
  for (const auto& s : t.node_slots) {
    e.i64(static_cast<std::int64_t>(s.node) - prev_node);
    prev_node = static_cast<std::int64_t>(s.node);
    e.u32(s.slots);
    e.u32(s.gaps);
  }
  encode_quality(e, t.quality_delta);
}

telemetry::TapTick decode_tick(Decoder& d) {
  telemetry::TapTick t;
  t.minute = d.i64();
  t.total_power_w = d.f64();
  t.busy_nodes = d.u32();
  t.throttled = d.u64();
  const std::uint64_t rows = d.u64();
  if (!d.ok()) return t;
  t.rows.reserve(static_cast<std::size_t>(rows));
  std::int64_t prev_node = 0;
  std::int64_t prev_job = 0;
  for (std::uint64_t i = 0; i < rows && d.ok(); ++i) {
    telemetry::TapSampleRow r;
    prev_job += d.i64();
    prev_node += d.i64();
    if (prev_job < 0 || prev_node < 0 || prev_node > 0xFFFFFFFFll) {
      d.fail();
      return t;
    }
    r.job_id = static_cast<std::uint64_t>(prev_job);
    r.node = static_cast<std::uint32_t>(prev_node);
    r.watts = d.f64();
    t.rows.push_back(r);
  }
  const std::uint64_t slots = d.u64();
  if (!d.ok()) return t;
  t.node_slots.reserve(static_cast<std::size_t>(slots));
  prev_node = 0;
  for (std::uint64_t i = 0; i < slots && d.ok(); ++i) {
    telemetry::TapNodeSlotDelta s;
    prev_node += d.i64();
    if (prev_node < 0 || prev_node > 0xFFFFFFFFll) {
      d.fail();
      return t;
    }
    s.node = static_cast<std::uint32_t>(prev_node);
    s.slots = d.u32();
    s.gaps = d.u32();
    t.node_slots.push_back(s);
  }
  t.quality_delta = decode_quality(d);
  return t;
}

}  // namespace

std::string encode_batch_payload(const StreamBatch& b) {
  Encoder e;
  e.u64(b.seq);
  e.u8(static_cast<std::uint8_t>(b.kind));
  switch (b.kind) {
    case BatchKind::kHello:
      e.u32(b.hello.node_count);
      e.i64(b.hello.warmup_minutes);
      e.u64(b.hello.seed);
      e.boolean(b.hello.faults_enabled);
      break;
    case BatchKind::kTick:
      e.boolean(b.in_campaign);
      encode_tick(e, b.tick);
      e.u64(b.job_ends.size());
      for (const auto& j : b.job_ends) encode_job_end(e, j);
      break;
    case BatchKind::kEnd:
      encode_scheduler_stats(e, b.end.scheduler);
      encode_availability(e, b.end.availability);
      e.boolean(b.end.has_power);
      if (b.end.has_power) encode_power_report(e, b.end.power);
      e.u64(b.job_ends.size());
      for (const auto& j : b.job_ends) encode_job_end(e, j);
      break;
  }
  return e.take();
}

std::optional<StreamBatch> decode_batch_payload(std::string_view payload) {
  Decoder d(payload);
  StreamBatch b;
  b.seq = d.u64();
  const std::uint8_t kind = d.u8();
  if (kind > static_cast<std::uint8_t>(BatchKind::kEnd)) return std::nullopt;
  b.kind = static_cast<BatchKind>(kind);
  switch (b.kind) {
    case BatchKind::kHello:
      b.hello.node_count = d.u32();
      b.hello.warmup_minutes = d.i64();
      b.hello.seed = d.u64();
      b.hello.faults_enabled = d.boolean();
      break;
    case BatchKind::kTick: {
      b.in_campaign = d.boolean();
      b.tick = decode_tick(d);
      const std::uint64_t ends = d.u64();
      if (!d.ok()) return std::nullopt;
      b.job_ends.reserve(static_cast<std::size_t>(ends));
      for (std::uint64_t i = 0; i < ends && d.ok(); ++i)
        b.job_ends.push_back(decode_job_end(d));
      break;
    }
    case BatchKind::kEnd: {
      b.end.scheduler = decode_scheduler_stats(d);
      b.end.availability = decode_availability(d);
      b.end.has_power = d.boolean();
      if (b.end.has_power) b.end.power = decode_power_report(d);
      const std::uint64_t ends = d.u64();
      if (!d.ok()) return std::nullopt;
      b.job_ends.reserve(static_cast<std::size_t>(ends));
      for (std::uint64_t i = 0; i < ends && d.ok(); ++i)
        b.job_ends.push_back(decode_job_end(d));
      break;
    }
  }
  if (!d.done()) return std::nullopt;
  return b;
}

std::string encode_batch(const StreamBatch& b) {
  return frame(kBatchMagic, encode_batch_payload(b));
}

std::optional<StreamBatch> decode_batch(std::string_view framed) {
  std::size_t pos = 0;
  const auto payload = unframe(kBatchMagic, framed, pos);
  if (!payload || pos != framed.size()) return std::nullopt;
  return decode_batch_payload(*payload);
}

}  // namespace hpcpower::stream

#pragma once
// Byte-level codec primitives for the streaming ingest daemon's durable
// formats (WAL records, checkpoints, wire batches).
//
// Reuses the .hpcb container's integer primitives (storage/varint.hpp) and
// CRC-32 (storage/crc32.hpp) so every durable stream artifact shares the
// same framing discipline as the trace container: a 4-byte magic, a 4-byte
// little-endian payload length, the payload, and a CRC-32 of the payload.
// Doubles are serialized as their IEEE-754 bit patterns (8 fixed bytes,
// little-endian), the same rule the checkpoint codecs use everywhere else in
// the repo: restore is bit-identical, never printf-rounded.
//
// The Decoder is non-throwing: any truncation or malformed varint latches a
// failure flag and subsequent reads return zero values. Callers check ok()
// once at the end, which keeps corrupt-tail WAL recovery a data-flow path
// rather than an exception path.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "storage/varint.hpp"

namespace hpcpower::stream {

/// Frame magics (distinct per artifact so a misdirected file fails loudly).
inline constexpr std::uint32_t kWalMagic = 0x57A10B10u;   // WAL record
inline constexpr std::uint32_t kCkptMagic = 0xC4EC9017u;  // checkpoint
inline constexpr std::uint32_t kBatchMagic = 0x5BA7C4EDu; // wire batch

class Encoder {
 public:
  void u64(std::uint64_t v) { storage::append_varint(buf_, v); }
  void u32(std::uint32_t v) { u64(v); }
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void i64(std::int64_t v) { u64(storage::zigzag_encode(v)); }
  void boolean(bool v) { buf_.push_back(v ? '\1' : '\0'); }
  void f64(double v);
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s);
  }
  void bytes(std::string_view s) { buf_.append(s); }

  [[nodiscard]] const std::string& data() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == data_.size(); }
  void fail() noexcept { ok_ = false; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Wraps `payload` as magic + u32 length + payload + CRC-32(payload), all
/// fixed-width fields little-endian.
[[nodiscard]] std::string frame(std::uint32_t magic, std::string_view payload);

/// Parses one frame starting at data[pos]. On success returns the payload
/// view and advances pos past the frame; on a wrong magic, truncation, or a
/// CRC mismatch returns nullopt and leaves pos unchanged (the torn-tail
/// contract WAL recovery relies on).
[[nodiscard]] std::optional<std::string_view> unframe(std::uint32_t magic,
                                                      std::string_view data,
                                                      std::size_t& pos);

}  // namespace hpcpower::stream

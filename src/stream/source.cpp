#include "stream/source.hpp"

#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace hpcpower::stream {

StreamedCampaignResult run_streamed_campaign(const cluster::SystemSpec& spec,
                                             const core::StudyConfig& config,
                                             IngestDaemon& daemon,
                                             StreamDriver& driver) {
  const std::int64_t warmup_minutes =
      util::MinuteTime::from_days(config.warmup_days).minutes();

  std::uint64_t next_seq = 0;
  std::uint64_t tick_index = 0;
  std::vector<telemetry::TapJobEnd> pending_ends;

  const auto ensure_hello = [&] {
    if (next_seq != 0) return;
    StreamBatch hello;
    hello.seq = next_seq++;
    hello.kind = BatchKind::kHello;
    hello.hello.node_count = spec.node_count;
    hello.hello.warmup_minutes = warmup_minutes;
    hello.hello.seed = config.seed;
    hello.hello.faults_enabled = config.faults.enabled;
    driver.submit(std::move(hello));
  };

  core::StudyConfig streamed_config = config;
  streamed_config.tap.on_job_end = [&](telemetry::TapJobEnd&& end) {
    pending_ends.push_back(std::move(end));
  };
  streamed_config.tap.on_tick = [&](telemetry::TapTick&& tick) {
    ensure_hello();
    StreamBatch b;
    b.seq = next_seq++;
    b.kind = BatchKind::kTick;
    // Ticks stream for the whole simulated horizon, but only post-warm-up
    // minutes belong to the campaign series — the streaming mirror of the
    // batch path's warm-up prefix erase. Warm-up meter/quality deltas still
    // count; detail rows are not shipped (nothing downstream keeps them).
    b.in_campaign = tick_index >= static_cast<std::uint64_t>(warmup_minutes);
    ++tick_index;
    b.tick = std::move(tick);
    if (!b.in_campaign) b.tick.rows.clear();
    b.job_ends = std::move(pending_ends);
    pending_ends.clear();
    driver.submit(std::move(b));
    driver.step();
  };

  StreamedCampaignResult result;
  result.batch = core::run_campaign(spec, streamed_config);

  ensure_hello();  // zero-tick campaigns still get a well-formed stream
  StreamBatch end;
  end.seq = next_seq++;
  end.kind = BatchKind::kEnd;
  end.job_ends = std::move(pending_ends);
  end.end.scheduler = result.batch.scheduler;
  end.end.availability = result.batch.availability;
  end.end.has_power = result.batch.power.has_value();
  if (result.batch.power) end.end.power = *result.batch.power;
  driver.submit(std::move(end));
  driver.flush();

  result.streamed = daemon.finalize();
  result.apply = daemon.apply_stats();
  result.transit = daemon.transit_stats();
  result.ledger = driver.ledger();
  result.batches_emitted = next_seq;
  return result;
}

StreamedCampaignResult run_streamed_campaign(const cluster::SystemSpec& spec,
                                             const core::StudyConfig& config,
                                             const IngestConfig& ingest,
                                             const TransitFaultConfig& faults) {
  IngestDaemon daemon(spec, ingest);
  if (!ingest.wal_dir.empty()) daemon.recover();
  StreamDriver driver(daemon, faults);
  return run_streamed_campaign(spec, config, daemon, driver);
}

}  // namespace hpcpower::stream

#pragma once
// Bounded per-node power history for the streaming ingest daemon.
//
// PowerRing keeps the last `capacity` accepted samples of one node in a
// fixed circular buffer — the daemon's only per-sample storage, so resident
// memory is bounded by node_count x window regardless of campaign length
// (the flat-memory property the stream bench asserts).
//
// NodeHistoryShards partitions the node population into S shards (node id
// mod S). Each shard owns its nodes' rings plus shard-local streaming
// aggregates (Welford stats and P² quantile sketches). A batch's rows are
// bucketed per shard and applied with one task per shard on the global
// pool: shard state is disjoint and rows stay in arrival order within a
// shard, so the result is bit-identical at any thread count. Cross-shard
// merges happen only at render time, in shard order.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/streaming_quantile.hpp"
#include "telemetry/stream_tap.hpp"
#include "util/parallel.hpp"

namespace hpcpower::stream {

/// Fixed-capacity circular sample buffer (doubles, newest overwrites oldest).
class PowerRing {
 public:
  PowerRing() = default;
  explicit PowerRing(std::uint32_t capacity) : data_(capacity, 0.0) {}

  void push(double v) noexcept {
    if (data_.empty()) return;
    data_[head_] = v;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
  /// i = 0 is the oldest retained sample.
  [[nodiscard]] double at(std::size_t i) const noexcept {
    const std::size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  // Checkpoint access: raw buffer + cursor words, restored verbatim.
  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }
  [[nodiscard]] std::size_t head() const noexcept { return head_; }
  void restore(std::vector<double> data, std::size_t head, std::size_t size) {
    data_ = std::move(data);
    head_ = data_.empty() ? 0 : head % data_.size();
    size_ = size > data_.size() ? data_.size() : size;
  }

 private:
  std::vector<double> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// One shard: rings for its nodes plus shard-local streaming aggregates.
struct HistoryShard {
  std::vector<std::uint32_t> nodes;  ///< global node ids, ascending
  std::vector<PowerRing> rings;      ///< parallel to `nodes`
  stats::RunningStats watts;
  stats::P2Quantile p50{0.5};
  stats::P2Quantile p95{0.95};
  std::uint64_t rows = 0;
};

class NodeHistoryShards {
 public:
  NodeHistoryShards() = default;
  NodeHistoryShards(std::uint32_t node_count, std::uint32_t shard_count,
                    std::uint32_t window) {
    reset(node_count, shard_count, window);
  }

  void reset(std::uint32_t node_count, std::uint32_t shard_count,
             std::uint32_t window) {
    node_count_ = node_count;
    shards_.assign(shard_count == 0 ? 1 : shard_count, HistoryShard{});
    const auto s = static_cast<std::uint32_t>(shards_.size());
    for (std::uint32_t n = 0; n < node_count; ++n) {
      HistoryShard& shard = shards_[n % s];
      shard.nodes.push_back(n);
      shard.rings.emplace_back(window);
    }
  }

  /// Applies one batch's rows. `detail` false skips the ring writes (LAGGING
  /// mode: aggregates stay exact, per-sample history is deferred). Rows are
  /// pre-bucketed per shard, preserving arrival order within each shard, then
  /// applied shard-parallel (disjoint state: thread-count invariant).
  void apply(const std::vector<telemetry::TapSampleRow>& rows, bool detail) {
    const auto s = static_cast<std::uint32_t>(shards_.size());
    buckets_.resize(s);
    for (auto& b : buckets_) b.clear();
    for (const auto& r : rows) {
      if (r.node < node_count_) buckets_[r.node % s].push_back(r);
    }
    util::parallel_for(shards_.size(), [&](std::size_t i) {
      HistoryShard& shard = shards_[i];
      for (const auto& r : buckets_[i]) {
        shard.watts.add(r.watts);
        shard.p50.add(r.watts);
        shard.p95.add(r.watts);
        ++shard.rows;
        if (detail) shard.rings[r.node / s].push(r.watts);
      }
    });
  }

  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] const std::vector<HistoryShard>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] std::vector<HistoryShard>& shards() noexcept { return shards_; }

  /// Deterministic cross-shard roll-up (shard order, render time only).
  [[nodiscard]] stats::RunningStats merged_watts() const {
    stats::RunningStats out;
    for (const auto& s : shards_) out.merge(s.watts);
    return out;
  }
  [[nodiscard]] std::uint64_t total_rows() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s.rows;
    return n;
  }
  /// Retained samples across all rings (bounded by node_count x window).
  [[nodiscard]] std::uint64_t retained_samples() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_)
      for (const auto& r : s.rings) n += r.size();
    return n;
  }

 private:
  std::uint32_t node_count_ = 0;
  std::vector<HistoryShard> shards_;
  std::vector<std::vector<telemetry::TapSampleRow>> buckets_;  // reused scratch
};

}  // namespace hpcpower::stream

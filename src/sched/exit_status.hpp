#pragma once
// Job exit-status taxonomy shared by the scheduler, telemetry, and trace
// layers. Mirrors what production accounting logs (Torque/Slurm) record for
// every attempt: clean completion, kill by a node failure, kill at the
// requested wall-time limit, or cancellation before the job ever ran.

#include <cstdint>
#include <optional>
#include <string_view>

namespace hpcpower::sched {

enum class ExitStatus : std::uint8_t {
  kCompleted = 0,       ///< ran to its natural end (or to the campaign horizon)
  kKilledNodeFail = 1,  ///< an allocated node failed mid-run; attempt killed
  kKilledWalltime = 2,  ///< hit the requested wall-time limit before finishing
  kCancelled = 3,       ///< never ran (e.g. request larger than the machine)
};

[[nodiscard]] inline const char* exit_status_name(ExitStatus s) noexcept {
  switch (s) {
    case ExitStatus::kCompleted: return "COMPLETED";
    case ExitStatus::kKilledNodeFail: return "KILLED_NODE_FAIL";
    case ExitStatus::kKilledWalltime: return "KILLED_WALLTIME";
    case ExitStatus::kCancelled: return "CANCELLED";
  }
  return "?";
}

[[nodiscard]] inline std::optional<ExitStatus> parse_exit_status(
    std::string_view name) noexcept {
  if (name == "COMPLETED") return ExitStatus::kCompleted;
  if (name == "KILLED_NODE_FAIL") return ExitStatus::kKilledNodeFail;
  if (name == "KILLED_WALLTIME") return ExitStatus::kKilledWalltime;
  if (name == "CANCELLED") return ExitStatus::kCancelled;
  return std::nullopt;
}

}  // namespace hpcpower::sched

#include "sched/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "obs/span.hpp"
#include "sched/checkpoint.hpp"

namespace hpcpower::sched {

/// Complete mutable state of a campaign in flight. Everything here is either
/// serialized into a checkpoint or (for the failure/repair event schedule)
/// re-derived statelessly from the seed on resume.
struct CampaignSimulator::SimState {
  BatchScheduler scheduler;
  const std::vector<workload::JobRequest>* jobs = nullptr;
  /// Job lookup for requeues and checkpoint resume (bodies are not
  /// serialized). Only populated when needed.
  std::unordered_map<workload::JobId, const workload::JobRequest*> by_id;
  /// Running jobs keyed by job id. Ordered map: hook and truncation order
  /// must be a pure function of the *current* state so a resumed campaign
  /// iterates identically to an uninterrupted one.
  std::map<workload::JobId, RunningJob> running;
  /// End times bucketed by minute for O(1) expiry lookup.
  std::map<std::int64_t, std::vector<workload::JobId>> ends_at;
  /// Requeued retries waiting out their backoff: release minute -> attempts
  /// in FIFO order (order is part of the checkpoint).
  std::map<std::int64_t, std::vector<std::pair<workload::JobId, std::uint32_t>>>
      requeue_at;
  /// Minute each job's latest attempt was killed; settled when the retry
  /// starts (feeds AvailabilityStats::requeue_wait_minutes).
  std::map<workload::JobId, std::int64_t> kill_time;
  /// Failure/repair event schedule over [0, horizon), derived from the seed.
  std::map<std::int64_t, std::vector<cluster::NodeId>> fail_at;
  std::map<std::int64_t, std::vector<cluster::NodeId>> repair_at;
  std::size_t next_submit = 0;
  SimulationResult result;

  SimState(std::uint32_t node_count, SchedulerPolicy policy, PowerBudget budget)
      : scheduler(node_count, policy, budget) {}

  void index_jobs() {
    by_id.reserve(jobs->size());
    for (const auto& job : *jobs) by_id.emplace(job.job_id, &job);
  }

  void build_failure_schedule(const NodeFailureModel& failures,
                              std::uint32_t node_count, std::int64_t horizon) {
    if (!failures.enabled()) return;
    for (cluster::NodeId node = 0; node < node_count; ++node) {
      for (const auto& outage : failures.outages(node, horizon)) {
        fail_at[outage.fail].push_back(node);
        if (outage.repair < horizon) repair_at[outage.repair].push_back(node);
      }
    }
  }
};

namespace {

JobAccountingRecord make_record(const RunningJob& job, util::MinuteTime end,
                                ExitStatus exit, bool truncated) {
  JobAccountingRecord rec;
  rec.job_id = job.request.job_id;
  rec.user_id = job.request.user_id;
  rec.app = job.request.app;
  rec.submit = job.request.submit;
  rec.start = job.start;
  rec.end = end;
  rec.nnodes = job.request.nnodes;
  rec.walltime_req_min = job.request.walltime_req_min;
  rec.backfilled = job.backfilled;
  rec.truncated_by_horizon = truncated;
  rec.exit = exit;
  rec.attempt = job.attempt;
  return rec;
}

void erase_end_bucket_entry(
    std::map<std::int64_t, std::vector<workload::JobId>>& ends_at,
    std::int64_t minute, workload::JobId id) {
  const auto bucket = ends_at.find(minute);
  if (bucket == ends_at.end()) return;
  auto& ids = bucket->second;
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  if (ids.empty()) ends_at.erase(bucket);
}

}  // namespace

CampaignSimulator::CampaignSimulator(std::uint32_t node_count, util::MinuteTime horizon,
                                     SchedulerPolicy policy, PowerBudget budget,
                                     FailureConfig failures, std::uint64_t seed)
    : node_count_(node_count),
      horizon_(horizon),
      policy_(policy),
      budget_(budget),
      failure_config_(failures),
      seed_(seed),
      failures_(failures, seed) {}

void CampaignSimulator::drive(SimState& state, std::int64_t from_minute,
                              std::int64_t to_minute,
                              const SimulationHooks& hooks) const {
  HPCPOWER_SPAN("sched.drive");
  const std::vector<workload::JobRequest>& jobs = *state.jobs;
  std::vector<const RunningJob*> running_view;

  const auto finish_job = [&](const RunningJob& job, util::MinuteTime end,
                              ExitStatus exit, bool truncated) {
    const JobAccountingRecord rec = make_record(job, end, exit, truncated);
    state.scheduler.release(job);
    if (hooks.on_end) hooks.on_end(job, rec);
    state.result.accounting.push_back(rec);
  };

  for (std::int64_t m = from_minute; m < to_minute; ++m) {
    const util::MinuteTime now(m);

    // 1. completions whose end time is this minute (ascending job id: the
    //    order must be reconstructible from a checkpoint, not from the
    //    history of how the bucket was filled)
    if (const auto it = state.ends_at.find(m); it != state.ends_at.end()) {
      std::vector<workload::JobId> ids = std::move(it->second);
      state.ends_at.erase(it);
      std::sort(ids.begin(), ids.end());
      for (const workload::JobId id : ids) {
        const auto job_it = state.running.find(id);
        assert(job_it != state.running.end());
        const RunningJob& job = job_it->second;
        finish_job(job, job.end,
                   job.hit_walltime ? ExitStatus::kKilledWalltime
                                    : ExitStatus::kCompleted,
                   /*truncated=*/false);
        state.running.erase(job_it);
      }
    }

    // 2. repaired nodes come back into service
    if (const auto it = state.repair_at.find(m); it != state.repair_at.end()) {
      for (const cluster::NodeId node : it->second) state.scheduler.undrain(node);
      state.repair_at.erase(it);
    }

    // 3. node failures: kill every victim attempt, then drain the nodes
    if (const auto it = state.fail_at.find(m); it != state.fail_at.end()) {
      HPCPOWER_SPAN("sched.failures.apply");
      const std::vector<cluster::NodeId> failed = std::move(it->second);
      state.fail_at.erase(it);
      state.result.availability.node_failures += failed.size();
      std::vector<workload::JobId> victims;
      for (const auto& [id, job] : state.running) {
        for (const cluster::NodeId node : failed) {
          if (std::find(job.nodes.begin(), job.nodes.end(), node) != job.nodes.end()) {
            victims.push_back(id);
            break;
          }
        }
      }
      for (const workload::JobId id : victims) {
        const auto job_it = state.running.find(id);
        const RunningJob& job = job_it->second;
        const JobAccountingRecord rec =
            make_record(job, now, ExitStatus::kKilledNodeFail, /*truncated=*/false);
        state.scheduler.kill(job);
        if (hooks.on_end) hooks.on_end(job, rec);
        state.result.accounting.push_back(rec);
        ++state.result.availability.attempts_killed;
        erase_end_bucket_entry(state.ends_at, job.end.minutes(), id);
        if (job.attempt < failures_.config().max_attempts) {
          const std::int64_t due =
              m + failures_.requeue_backoff_min(id, job.attempt);
          state.requeue_at[due].emplace_back(id, job.attempt + 1);
          state.kill_time[id] = m;
          ++state.result.availability.requeues;
        } else {
          ++state.result.availability.requeues_exhausted;
        }
        state.running.erase(job_it);
      }
      for (const cluster::NodeId node : failed) state.scheduler.drain(node);
    }

    // 4. requeued retries whose backoff expires this minute re-enter the
    //    queue ahead of brand-new arrivals (they were submitted long ago)
    if (const auto it = state.requeue_at.find(m); it != state.requeue_at.end()) {
      HPCPOWER_SPAN("sched.requeue.release");
      for (const auto& [id, attempt] : it->second) {
        const auto job_it = state.by_id.find(id);
        assert(job_it != state.by_id.end());
        workload::JobRequest retry = *job_it->second;
        retry.submit = now;
        const bool accepted = state.scheduler.submit(std::move(retry), attempt);
        assert(accepted);
        (void)accepted;
      }
      state.requeue_at.erase(it);
    }

    // 5. new submissions
    while (state.next_submit < jobs.size() && jobs[state.next_submit].submit <= now) {
      const workload::JobRequest& job = jobs[state.next_submit];
      if (!state.scheduler.submit(job)) {
        // Unsatisfiable request: record the cancellation so accounting still
        // covers every submission, but the attempt never ran (no hooks).
        RunningJob never_ran;
        never_ran.request = job;
        never_ran.start = job.submit;
        state.result.accounting.push_back(make_record(
            never_ran, job.submit, ExitStatus::kCancelled, /*truncated=*/false));
      }
      ++state.next_submit;
    }

    // 6. placement
    for (RunningJob& started : state.scheduler.schedule(now)) {
      if (started.attempt > 1) {
        if (const auto kt = state.kill_time.find(started.request.job_id);
            kt != state.kill_time.end()) {
          state.result.availability.requeue_wait_minutes +=
              static_cast<double>(m - kt->second);
          state.kill_time.erase(kt);
        }
      }
      if (hooks.on_start) hooks.on_start(started);
      state.ends_at[started.end.minutes()].push_back(started.request.job_id);
      state.running.emplace(started.request.job_id, std::move(started));
    }

    // 7. monitoring tick
    state.result.busy_nodes_per_minute.push_back(state.scheduler.busy_nodes());
    const std::uint32_t down = state.scheduler.drained_nodes();
    state.result.availability.node_minutes_down += down;
    if (hooks.per_minute) {
      running_view.clear();
      running_view.reserve(state.running.size());
      for (const auto& [id, job] : state.running) running_view.push_back(&job);
      hooks.per_minute(now, running_view, down);
    }
  }
}

SimulationResult CampaignSimulator::finalize(SimState& state,
                                             const SimulationHooks& hooks) const {
  // Campaign over: truncate whatever is still executing.
  for (const auto& [id, job] : state.running) {
    const JobAccountingRecord rec =
        make_record(job, horizon_, ExitStatus::kCompleted, /*truncated=*/true);
    state.scheduler.release(job);
    if (hooks.on_end) hooks.on_end(job, rec);
    state.result.accounting.push_back(rec);
  }
  state.running.clear();

  state.result.scheduler = state.scheduler.stats();
  if (failures_.enabled()) {
    state.result.availability.node_minutes_total =
        static_cast<std::uint64_t>(node_count_) *
        static_cast<std::uint64_t>(horizon_.minutes());
  } else {
    state.result.availability = AvailabilityStats{};
  }
  std::sort(state.result.accounting.begin(), state.result.accounting.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.job_id, a.attempt) < std::tie(b.job_id, b.attempt);
            });
  return std::move(state.result);
}

namespace {

void check_sorted(const std::vector<workload::JobRequest>& jobs) {
  assert(std::is_sorted(jobs.begin(), jobs.end(),
                        [](const auto& a, const auto& b) { return a.submit < b.submit; }));
  (void)jobs;
}

}  // namespace

SimulationResult CampaignSimulator::run(const std::vector<workload::JobRequest>& jobs,
                                        const SimulationHooks& hooks) {
  check_sorted(jobs);
  SimState state(node_count_, policy_, budget_);
  state.jobs = &jobs;
  state.result.busy_nodes_per_minute.reserve(
      static_cast<std::size_t>(horizon_.minutes()));
  if (failures_.enabled()) {
    state.index_jobs();
    state.build_failure_schedule(failures_, node_count_, horizon_.minutes());
  }
  drive(state, 0, horizon_.minutes(), hooks);
  return finalize(state, hooks);
}

SimulationResult CampaignSimulator::run_until(
    const std::vector<workload::JobRequest>& jobs, util::MinuteTime checkpoint_minute,
    std::ostream& out, const SimulationHooks& hooks) {
  check_sorted(jobs);
  if (checkpoint_minute.minutes() < 0 || checkpoint_minute > horizon_)
    throw std::invalid_argument("run_until: checkpoint minute outside [0, horizon]");

  SimState state(node_count_, policy_, budget_);
  state.jobs = &jobs;
  if (failures_.enabled()) {
    state.index_jobs();
    state.build_failure_schedule(failures_, node_count_, horizon_.minutes());
  }
  drive(state, 0, checkpoint_minute.minutes(), hooks);

  CampaignCheckpoint cp;
  cp.minute = checkpoint_minute.minutes();
  cp.node_count = node_count_;
  cp.horizon = horizon_.minutes();
  cp.policy = static_cast<int>(policy_);
  cp.seed = seed_;
  cp.failures = failure_config_;
  cp.budget = budget_;
  cp.next_submit = state.next_submit;
  cp.stats = state.scheduler.stats();
  cp.availability = state.result.availability;
  cp.committed_power_w = state.scheduler.committed_power_w();
  const SchedulerSnapshot snap = state.scheduler.snapshot();
  cp.free_order = snap.free_order;
  cp.drained = snap.drained;
  for (const auto& q : snap.queue)
    cp.queue.push_back(CheckpointQueuedJob{q.request.job_id, q.attempt,
                                           q.request.submit.minutes()});
  for (const auto& [id, job] : state.running) {
    CheckpointRunningJob r;
    r.job_id = id;
    r.attempt = job.attempt;
    r.submit = job.request.submit.minutes();
    r.start = job.start.minutes();
    r.end = job.end.minutes();
    r.limit_end = job.limit_end.minutes();
    r.backfilled = job.backfilled;
    r.hit_walltime = job.hit_walltime;
    r.nodes = job.nodes;
    cp.running.push_back(std::move(r));
  }
  for (const auto& [due, entries] : state.requeue_at) {
    for (const auto& [id, attempt] : entries)
      cp.requeues.push_back(CheckpointRequeue{due, id, attempt});
  }
  cp.kill_times.assign(state.kill_time.begin(), state.kill_time.end());
  cp.accounting = state.result.accounting;
  cp.busy_nodes_per_minute = state.result.busy_nodes_per_minute;
  if (hooks.checkpoint_state) cp.extension = hooks.checkpoint_state();
  write_checkpoint(out, cp);

  SimulationResult partial = std::move(state.result);
  partial.scheduler = cp.stats;
  if (failures_.enabled()) {
    partial.availability.node_minutes_total =
        static_cast<std::uint64_t>(node_count_) *
        static_cast<std::uint64_t>(checkpoint_minute.minutes());
  }
  return partial;
}

SimulationResult CampaignSimulator::resume(
    std::istream& in, const std::vector<workload::JobRequest>& jobs,
    const SimulationHooks& hooks) {
  check_sorted(jobs);
  const CampaignCheckpoint cp = read_checkpoint(in);
  if (cp.node_count != node_count_ || cp.horizon != horizon_.minutes() ||
      cp.policy != static_cast<int>(policy_) || cp.seed != seed_ ||
      cp.failures != failure_config_ || cp.budget != budget_) {
    throw std::runtime_error(
        "checkpoint: configuration mismatch (checkpoint was written by a "
        "differently configured campaign)");
  }
  if (cp.minute < 0 || cp.minute > horizon_.minutes())
    throw std::runtime_error("checkpoint: minute outside [0, horizon]");

  SimState state(node_count_, policy_, budget_);
  state.jobs = &jobs;
  state.index_jobs();
  state.build_failure_schedule(failures_, node_count_, horizon_.minutes());

  const auto lookup = [&](workload::JobId id) -> const workload::JobRequest& {
    const auto it = state.by_id.find(id);
    if (it == state.by_id.end())
      throw std::runtime_error(
          "checkpoint: references a job id missing from the supplied workload");
    return *it->second;
  };

  SchedulerSnapshot snap;
  for (const auto& q : cp.queue) {
    workload::JobRequest request = lookup(q.job_id);
    request.submit = util::MinuteTime(q.submit);
    snap.queue.push_back(QueuedJob{std::move(request), q.attempt});
  }
  snap.free_order = cp.free_order;
  snap.drained = cp.drained;
  snap.committed_power_w = cp.committed_power_w;
  snap.stats = cp.stats;
  for (const auto& r : cp.running)
    snap.running_limits.emplace_back(util::MinuteTime(r.limit_end),
                                     lookup(r.job_id).nnodes);
  state.scheduler.restore(snap);

  for (const auto& r : cp.running) {
    RunningJob job;
    job.request = lookup(r.job_id);
    job.request.submit = util::MinuteTime(r.submit);
    job.start = util::MinuteTime(r.start);
    job.end = util::MinuteTime(r.end);
    job.limit_end = util::MinuteTime(r.limit_end);
    job.nodes = r.nodes;
    job.backfilled = r.backfilled;
    job.attempt = r.attempt;
    job.hit_walltime = r.hit_walltime;
    state.ends_at[r.end].push_back(r.job_id);
    state.running.emplace(r.job_id, std::move(job));
  }
  for (const auto& r : cp.requeues) state.requeue_at[r.due].emplace_back(r.job_id, r.attempt);
  for (const auto& [id, minute] : cp.kill_times) state.kill_time.emplace(id, minute);
  state.next_submit = cp.next_submit;
  state.result.accounting = cp.accounting;
  state.result.busy_nodes_per_minute = cp.busy_nodes_per_minute;
  state.result.availability = cp.availability;

  if (hooks.restore_state) hooks.restore_state(cp.extension);
  drive(state, cp.minute, horizon_.minutes(), hooks);
  return finalize(state, hooks);
}

}  // namespace hpcpower::sched

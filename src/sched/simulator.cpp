#include "sched/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace hpcpower::sched {

CampaignSimulator::CampaignSimulator(std::uint32_t node_count, util::MinuteTime horizon,
                                     SchedulerPolicy policy, PowerBudget budget)
    : node_count_(node_count), horizon_(horizon), policy_(policy), budget_(budget) {}

SimulationResult CampaignSimulator::run(const std::vector<workload::JobRequest>& jobs,
                                        const SimulationHooks& hooks) {
  assert(std::is_sorted(jobs.begin(), jobs.end(),
                        [](const auto& a, const auto& b) { return a.submit < b.submit; }));

  SimulationResult result;
  result.busy_nodes_per_minute.reserve(static_cast<std::size_t>(horizon_.minutes()));

  BatchScheduler scheduler(node_count_, policy_, budget_);
  std::unordered_map<workload::JobId, RunningJob> running;
  // End times bucketed by minute for O(1) expiry lookup.
  std::map<std::int64_t, std::vector<workload::JobId>> ends_at;
  std::vector<const RunningJob*> running_view;

  const auto finish_job = [&](const RunningJob& job, bool truncated) {
    JobAccountingRecord rec;
    rec.job_id = job.request.job_id;
    rec.user_id = job.request.user_id;
    rec.app = job.request.app;
    rec.submit = job.request.submit;
    rec.start = job.start;
    rec.end = truncated ? horizon_ : job.end;
    rec.nnodes = job.request.nnodes;
    rec.walltime_req_min = job.request.walltime_req_min;
    rec.backfilled = job.backfilled;
    rec.truncated_by_horizon = truncated;
    scheduler.release(job);
    if (hooks.on_end) hooks.on_end(job, rec);
    result.accounting.push_back(rec);
  };

  std::size_t next_submit = 0;
  for (std::int64_t m = 0; m < horizon_.minutes(); ++m) {
    const util::MinuteTime now(m);

    // 1. completions whose end time is this minute
    if (const auto it = ends_at.find(m); it != ends_at.end()) {
      for (const workload::JobId id : it->second) {
        const auto job_it = running.find(id);
        assert(job_it != running.end());
        finish_job(job_it->second, /*truncated=*/false);
        running.erase(job_it);
      }
      ends_at.erase(it);
    }

    // 2. new submissions
    while (next_submit < jobs.size() && jobs[next_submit].submit <= now) {
      scheduler.submit(jobs[next_submit]);
      ++next_submit;
    }

    // 3. placement
    for (RunningJob& started : scheduler.schedule(now)) {
      if (hooks.on_start) hooks.on_start(started);
      ends_at[started.end.minutes()].push_back(started.request.job_id);
      running.emplace(started.request.job_id, std::move(started));
    }

    // 4. monitoring tick
    result.busy_nodes_per_minute.push_back(scheduler.busy_nodes());
    if (hooks.per_minute) {
      running_view.clear();
      running_view.reserve(running.size());
      for (const auto& [id, job] : running) running_view.push_back(&job);
      hooks.per_minute(now, running_view);
    }
  }

  // Campaign over: truncate whatever is still executing.
  for (const auto& [id, job] : running) finish_job(job, /*truncated=*/true);
  running.clear();

  result.scheduler = scheduler.stats();
  std::sort(result.accounting.begin(), result.accounting.end(),
            [](const auto& a, const auto& b) { return a.job_id < b.job_id; });
  return result;
}

}  // namespace hpcpower::sched

#include "sched/checkpoint.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace hpcpower::sched {

namespace {

constexpr const char* kMagic = "hpcpower-campaign-checkpoint";
// v2 added the hook-extension block (opaque lines from simulation hooks,
// e.g. power-manager state). v1 checkpoints are no longer readable; they
// were never a persistence format, only a kill/resume transport.
constexpr const char* kVersion = "v2";

std::uint64_t double_bits(double d) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

/// Reads one whitespace-delimited token and requires it to equal `tag`.
void expect(std::istream& in, const char* tag) {
  std::string tok;
  if (!(in >> tok)) fail(std::string("truncated before '") + tag + "'");
  if (tok != tag) fail("expected '" + std::string(tag) + "', got '" + tok + "'");
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T v{};
  if (!(in >> v)) fail(std::string("bad or missing value for ") + what);
  return v;
}

bool read_bool(std::istream& in, const char* what) {
  const auto v = read_value<int>(in, what);
  if (v != 0 && v != 1) fail(std::string("non-boolean value for ") + what);
  return v == 1;
}

double read_double_bits(std::istream& in, const char* what) {
  return bits_double(read_value<std::uint64_t>(in, what));
}

}  // namespace

void write_checkpoint(std::ostream& out, const CampaignCheckpoint& cp) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "minute " << cp.minute << '\n';
  out << "node_count " << cp.node_count << '\n';
  out << "horizon " << cp.horizon << '\n';
  out << "policy " << cp.policy << '\n';
  out << "seed " << cp.seed << '\n';
  out << "failures " << (cp.failures.enabled ? 1 : 0) << ' '
      << double_bits(cp.failures.mtbf_days) << ' '
      << double_bits(cp.failures.mttr_min) << ' ' << cp.failures.max_attempts
      << ' ' << cp.failures.backoff_base_min << ' ' << cp.failures.backoff_cap_min
      << '\n';
  out << "budget " << double_bits(cp.budget.watts) << ' '
      << double_bits(cp.budget.fallback_node_power_w) << '\n';
  out << "next_submit " << cp.next_submit << '\n';
  out << "stats " << cp.stats.submitted << ' ' << cp.stats.started << ' '
      << cp.stats.completed << ' ' << cp.stats.backfilled << ' '
      << cp.stats.killed << ' ' << cp.stats.rejected << ' '
      << double_bits(cp.stats.total_wait_minutes) << ' '
      << cp.stats.max_queue_depth << '\n';
  out << "availability " << cp.availability.node_minutes_down << ' '
      << cp.availability.node_failures << ' ' << cp.availability.attempts_killed
      << ' ' << cp.availability.requeues << ' '
      << cp.availability.requeues_exhausted << ' '
      << double_bits(cp.availability.requeue_wait_minutes) << '\n';
  out << "committed_power " << double_bits(cp.committed_power_w) << '\n';

  out << "free_order " << cp.free_order.size();
  for (const auto id : cp.free_order) out << ' ' << id;
  out << '\n';
  out << "drained " << cp.drained.size();
  for (const auto id : cp.drained) out << ' ' << id;
  out << '\n';

  out << "queue " << cp.queue.size() << '\n';
  for (const auto& q : cp.queue)
    out << q.job_id << ' ' << q.attempt << ' ' << q.submit << '\n';

  out << "running " << cp.running.size() << '\n';
  for (const auto& r : cp.running) {
    out << r.job_id << ' ' << r.attempt << ' ' << r.submit << ' ' << r.start
        << ' ' << r.end << ' ' << r.limit_end << ' ' << (r.backfilled ? 1 : 0)
        << ' ' << (r.hit_walltime ? 1 : 0) << ' ' << r.nodes.size();
    for (const auto id : r.nodes) out << ' ' << id;
    out << '\n';
  }

  out << "requeues " << cp.requeues.size() << '\n';
  for (const auto& r : cp.requeues)
    out << r.due << ' ' << r.job_id << ' ' << r.attempt << '\n';

  out << "kill_times " << cp.kill_times.size() << '\n';
  for (const auto& [job_id, minute] : cp.kill_times)
    out << job_id << ' ' << minute << '\n';

  out << "accounting " << cp.accounting.size() << '\n';
  for (const auto& rec : cp.accounting) {
    out << rec.job_id << ' ' << rec.user_id << ' ' << rec.app << ' '
        << rec.submit.minutes() << ' ' << rec.start.minutes() << ' '
        << rec.end.minutes() << ' ' << rec.nnodes << ' '
        << rec.walltime_req_min << ' ' << (rec.backfilled ? 1 : 0) << ' '
        << (rec.truncated_by_horizon ? 1 : 0) << ' '
        << exit_status_name(rec.exit) << ' ' << rec.attempt << '\n';
  }

  out << "busy " << cp.busy_nodes_per_minute.size();
  for (const auto b : cp.busy_nodes_per_minute) out << ' ' << b;
  out << '\n';

  out << "extension " << cp.extension.size() << '\n';
  for (const auto& line : cp.extension) out << line << '\n';
  out << "end\n";
  if (!out) fail("write failed");
}

CampaignCheckpoint read_checkpoint(std::istream& in) {
  CampaignCheckpoint cp;
  expect(in, kMagic);
  expect(in, kVersion);
  expect(in, "minute");
  cp.minute = read_value<std::int64_t>(in, "minute");
  expect(in, "node_count");
  cp.node_count = read_value<std::uint32_t>(in, "node_count");
  expect(in, "horizon");
  cp.horizon = read_value<std::int64_t>(in, "horizon");
  expect(in, "policy");
  cp.policy = read_value<int>(in, "policy");
  expect(in, "seed");
  cp.seed = read_value<std::uint64_t>(in, "seed");
  expect(in, "failures");
  cp.failures.enabled = read_bool(in, "failures.enabled");
  cp.failures.mtbf_days = read_double_bits(in, "failures.mtbf_days");
  cp.failures.mttr_min = read_double_bits(in, "failures.mttr_min");
  cp.failures.max_attempts = read_value<std::uint32_t>(in, "failures.max_attempts");
  cp.failures.backoff_base_min =
      read_value<std::uint32_t>(in, "failures.backoff_base_min");
  cp.failures.backoff_cap_min =
      read_value<std::uint32_t>(in, "failures.backoff_cap_min");
  expect(in, "budget");
  cp.budget.watts = read_double_bits(in, "budget.watts");
  cp.budget.fallback_node_power_w = read_double_bits(in, "budget.fallback");
  expect(in, "next_submit");
  cp.next_submit = read_value<std::size_t>(in, "next_submit");
  expect(in, "stats");
  cp.stats.submitted = read_value<std::uint64_t>(in, "stats.submitted");
  cp.stats.started = read_value<std::uint64_t>(in, "stats.started");
  cp.stats.completed = read_value<std::uint64_t>(in, "stats.completed");
  cp.stats.backfilled = read_value<std::uint64_t>(in, "stats.backfilled");
  cp.stats.killed = read_value<std::uint64_t>(in, "stats.killed");
  cp.stats.rejected = read_value<std::uint64_t>(in, "stats.rejected");
  cp.stats.total_wait_minutes = read_double_bits(in, "stats.total_wait");
  cp.stats.max_queue_depth = read_value<std::size_t>(in, "stats.max_queue_depth");
  expect(in, "availability");
  cp.availability.node_minutes_down =
      read_value<std::uint64_t>(in, "availability.down");
  cp.availability.node_failures =
      read_value<std::uint64_t>(in, "availability.failures");
  cp.availability.attempts_killed =
      read_value<std::uint64_t>(in, "availability.killed");
  cp.availability.requeues = read_value<std::uint64_t>(in, "availability.requeues");
  cp.availability.requeues_exhausted =
      read_value<std::uint64_t>(in, "availability.exhausted");
  cp.availability.requeue_wait_minutes =
      read_double_bits(in, "availability.requeue_wait");
  expect(in, "committed_power");
  cp.committed_power_w = read_double_bits(in, "committed_power");

  expect(in, "free_order");
  cp.free_order.resize(read_value<std::size_t>(in, "free_order count"));
  for (auto& id : cp.free_order) id = read_value<cluster::NodeId>(in, "free node id");
  expect(in, "drained");
  cp.drained.resize(read_value<std::size_t>(in, "drained count"));
  for (auto& id : cp.drained) id = read_value<cluster::NodeId>(in, "drained node id");

  expect(in, "queue");
  cp.queue.resize(read_value<std::size_t>(in, "queue count"));
  for (auto& q : cp.queue) {
    q.job_id = read_value<workload::JobId>(in, "queue job id");
    q.attempt = read_value<std::uint32_t>(in, "queue attempt");
    q.submit = read_value<std::int64_t>(in, "queue submit");
  }

  expect(in, "running");
  cp.running.resize(read_value<std::size_t>(in, "running count"));
  for (auto& r : cp.running) {
    r.job_id = read_value<workload::JobId>(in, "running job id");
    r.attempt = read_value<std::uint32_t>(in, "running attempt");
    r.submit = read_value<std::int64_t>(in, "running submit");
    r.start = read_value<std::int64_t>(in, "running start");
    r.end = read_value<std::int64_t>(in, "running end");
    r.limit_end = read_value<std::int64_t>(in, "running limit_end");
    r.backfilled = read_bool(in, "running backfilled");
    r.hit_walltime = read_bool(in, "running hit_walltime");
    r.nodes.resize(read_value<std::size_t>(in, "running node count"));
    for (auto& id : r.nodes) id = read_value<cluster::NodeId>(in, "running node id");
  }

  expect(in, "requeues");
  cp.requeues.resize(read_value<std::size_t>(in, "requeue count"));
  for (auto& r : cp.requeues) {
    r.due = read_value<std::int64_t>(in, "requeue due");
    r.job_id = read_value<workload::JobId>(in, "requeue job id");
    r.attempt = read_value<std::uint32_t>(in, "requeue attempt");
  }

  expect(in, "kill_times");
  cp.kill_times.resize(read_value<std::size_t>(in, "kill_times count"));
  for (auto& [job_id, minute] : cp.kill_times) {
    job_id = read_value<workload::JobId>(in, "kill_times job id");
    minute = read_value<std::int64_t>(in, "kill_times minute");
  }

  expect(in, "accounting");
  cp.accounting.resize(read_value<std::size_t>(in, "accounting count"));
  for (auto& rec : cp.accounting) {
    rec.job_id = read_value<workload::JobId>(in, "accounting job id");
    rec.user_id = read_value<workload::UserId>(in, "accounting user id");
    rec.app = read_value<workload::AppId>(in, "accounting app");
    rec.submit = util::MinuteTime(read_value<std::int64_t>(in, "accounting submit"));
    rec.start = util::MinuteTime(read_value<std::int64_t>(in, "accounting start"));
    rec.end = util::MinuteTime(read_value<std::int64_t>(in, "accounting end"));
    rec.nnodes = read_value<std::uint32_t>(in, "accounting nnodes");
    rec.walltime_req_min = read_value<std::uint32_t>(in, "accounting walltime");
    rec.backfilled = read_bool(in, "accounting backfilled");
    rec.truncated_by_horizon = read_bool(in, "accounting truncated");
    std::string exit_name;
    if (!(in >> exit_name)) fail("missing accounting exit status");
    const auto exit = parse_exit_status(exit_name);
    if (!exit) fail("unknown exit status '" + exit_name + "'");
    rec.exit = *exit;
    rec.attempt = read_value<std::uint32_t>(in, "accounting attempt");
  }

  expect(in, "busy");
  cp.busy_nodes_per_minute.resize(read_value<std::size_t>(in, "busy count"));
  for (auto& b : cp.busy_nodes_per_minute)
    b = read_value<std::uint32_t>(in, "busy value");

  expect(in, "extension");
  cp.extension.resize(read_value<std::size_t>(in, "extension count"));
  {
    std::string eol;
    std::getline(in, eol);  // consume the rest of the count line
    for (auto& line : cp.extension) {
      if (!std::getline(in, line)) fail("truncated extension block");
    }
  }
  expect(in, "end");
  return cp;
}

}  // namespace hpcpower::sched

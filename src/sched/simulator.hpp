#pragma once
// Minute-stepped campaign simulator.
//
// Drives the batch scheduler through a whole measurement campaign and hands
// every simulated minute to the telemetry layer, mirroring the paper's data
// collection: accounting records from the batch system joined with 1-minute
// node monitoring samples.
//
// With a NodeFailureModel enabled the campaign is failure-aware: nodes crash
// mid-job (the victim attempt is killed and recorded KILLED_NODE_FAIL, the
// node drains for its repair window, and the job is requeued with exponential
// backoff until its retry budget runs out) and crashed nodes stop emitting
// telemetry (a down node is excluded from the per-minute running view and the
// pipeline's idle floor). Campaigns can also be checkpointed at any minute
// boundary and resumed bit-identically — every random decision is stateless
// in (seed, entity, counter), so no PRNG cursors need to be serialized.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/failures.hpp"
#include "sched/scheduler.hpp"

namespace hpcpower::sched {

struct SimulationHooks {
  /// Job placed on nodes (accounting "start" event).
  std::function<void(const RunningJob&)> on_start;
  /// Attempt finished or killed (accounting "end" event); the record carries
  /// final times and the exit status.
  std::function<void(const RunningJob&, const JobAccountingRecord&)> on_end;
  /// One monitoring tick: all jobs running during minute [now, now+1), in
  /// ascending job-id order, plus the count of nodes down (drained) this
  /// minute — down nodes emit no telemetry and draw no idle power.
  std::function<void(util::MinuteTime, const std::vector<const RunningJob*>&,
                     std::uint32_t)>
      per_minute;
  /// Extra simulation-coupled state to fold into a campaign checkpoint
  /// (opaque lines, stored verbatim). Called by run_until() at the checkpoint
  /// minute, after the last pre-checkpoint tick.
  std::function<std::vector<std::string>()> checkpoint_state;
  /// Hands the extension lines back on resume(), before any post-checkpoint
  /// minute is driven. Implementations should throw on missing/mismatched
  /// state rather than silently continue.
  std::function<void(const std::vector<std::string>&)> restore_state;
};

/// Availability ledger of one campaign. Only populated when the failure
/// model is enabled; reconciles exactly:
///   node_minutes_delivered() + node_minutes_down == node_minutes_total.
struct AvailabilityStats {
  std::uint64_t node_minutes_total = 0;  ///< node_count x horizon
  std::uint64_t node_minutes_down = 0;   ///< drained (failed, under repair)
  std::uint64_t node_failures = 0;       ///< failure events inside the horizon
  std::uint64_t attempts_killed = 0;     ///< job attempts killed by failures
  std::uint64_t requeues = 0;            ///< killed attempts given a retry
  std::uint64_t requeues_exhausted = 0;  ///< killed attempts out of budget
  /// Sum over restarted attempts of (restart start - kill time): the wait
  /// added by failures on top of normal queueing.
  double requeue_wait_minutes = 0.0;

  [[nodiscard]] std::uint64_t node_minutes_delivered() const noexcept {
    return node_minutes_total - node_minutes_down;
  }

  friend bool operator==(const AvailabilityStats&, const AvailabilityStats&) = default;
};

struct SimulationResult {
  SchedulerStats scheduler;
  AvailabilityStats availability;
  std::vector<JobAccountingRecord> accounting;
  /// Busy-node count sampled each minute of [0, horizon) - Fig 1's raw data.
  std::vector<std::uint32_t> busy_nodes_per_minute;

  friend bool operator==(const SimulationResult&, const SimulationResult&) = default;
};

class CampaignSimulator {
 public:
  /// `horizon` bounds the monitored window; jobs still running at the horizon
  /// are truncated there (their records are flagged), and jobs still queued
  /// are dropped, exactly like ending a measurement campaign.
  /// `failures`/`seed` parameterize the node-failure model; the default
  /// (disabled) keeps the campaign bit-identical to a failure-free machine.
  CampaignSimulator(std::uint32_t node_count, util::MinuteTime horizon,
                    SchedulerPolicy policy = SchedulerPolicy::kFcfsBackfill,
                    PowerBudget budget = {}, FailureConfig failures = {},
                    std::uint64_t seed = 0);

  /// `jobs` must be sorted by submit time. Hooks may be empty.
  [[nodiscard]] SimulationResult run(const std::vector<workload::JobRequest>& jobs,
                                     const SimulationHooks& hooks = {});

  /// Simulates minutes [0, checkpoint_minute), then writes the complete
  /// campaign state to `out` and stops. The returned result holds the
  /// partial accounting / busy series accumulated so far. `checkpoint_minute`
  /// must lie in [0, horizon].
  SimulationResult run_until(const std::vector<workload::JobRequest>& jobs,
                             util::MinuteTime checkpoint_minute, std::ostream& out,
                             const SimulationHooks& hooks = {});

  /// Resumes a campaign from a checkpoint written by run_until() and drives
  /// it to the horizon. `jobs` must be the same workload that produced the
  /// checkpoint (job bodies are looked up by id rather than serialized).
  /// Hooks fire only for post-checkpoint events; the returned result covers
  /// the whole campaign and is bit-identical to an uninterrupted run().
  [[nodiscard]] SimulationResult resume(std::istream& in,
                                        const std::vector<workload::JobRequest>& jobs,
                                        const SimulationHooks& hooks = {});

  [[nodiscard]] const NodeFailureModel& failure_model() const noexcept {
    return failures_;
  }

 private:
  struct SimState;

  void drive(SimState& state, std::int64_t from_minute, std::int64_t to_minute,
             const SimulationHooks& hooks) const;
  [[nodiscard]] SimulationResult finalize(SimState& state,
                                          const SimulationHooks& hooks) const;

  std::uint32_t node_count_;
  util::MinuteTime horizon_;
  SchedulerPolicy policy_;
  PowerBudget budget_;
  FailureConfig failure_config_{};
  std::uint64_t seed_ = 0;
  NodeFailureModel failures_{};
};

}  // namespace hpcpower::sched

#pragma once
// Minute-stepped campaign simulator.
//
// Drives the batch scheduler through a whole measurement campaign and hands
// every simulated minute to the telemetry layer, mirroring the paper's data
// collection: accounting records from the batch system joined with 1-minute
// node monitoring samples.

#include <functional>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"

namespace hpcpower::sched {

struct SimulationHooks {
  /// Job placed on nodes (accounting "start" event).
  std::function<void(const RunningJob&)> on_start;
  /// Job finished (accounting "end" event); record carries final times.
  std::function<void(const RunningJob&, const JobAccountingRecord&)> on_end;
  /// One monitoring tick: all jobs running during minute [now, now+1).
  std::function<void(util::MinuteTime, const std::vector<const RunningJob*>&)> per_minute;
};

struct SimulationResult {
  SchedulerStats scheduler;
  std::vector<JobAccountingRecord> accounting;
  /// Busy-node count sampled each minute of [0, horizon) - Fig 1's raw data.
  std::vector<std::uint32_t> busy_nodes_per_minute;
};

class CampaignSimulator {
 public:
  /// `horizon` bounds the monitored window; jobs still running at the horizon
  /// are truncated there (their records are flagged), and jobs still queued
  /// are dropped, exactly like ending a measurement campaign.
  CampaignSimulator(std::uint32_t node_count, util::MinuteTime horizon,
                    SchedulerPolicy policy = SchedulerPolicy::kFcfsBackfill,
                    PowerBudget budget = {});

  /// `jobs` must be sorted by submit time. Hooks may be empty.
  [[nodiscard]] SimulationResult run(const std::vector<workload::JobRequest>& jobs,
                                     const SimulationHooks& hooks = {});

 private:
  std::uint32_t node_count_;
  util::MinuteTime horizon_;
  SchedulerPolicy policy_;
  PowerBudget budget_;
};

}  // namespace hpcpower::sched

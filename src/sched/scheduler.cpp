#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace hpcpower::sched {

BatchScheduler::BatchScheduler(std::uint32_t node_count, SchedulerPolicy policy,
                               PowerBudget budget)
    : allocator_(node_count), policy_(policy), budget_(budget) {}

double BatchScheduler::power_demand(const workload::JobRequest& job) const noexcept {
  const double per_node = job.estimated_node_power_w > 0.0
                              ? job.estimated_node_power_w
                              : budget_.fallback_node_power_w;
  return per_node * static_cast<double>(job.nnodes);
}

bool BatchScheduler::power_fits(const workload::JobRequest& job) const noexcept {
  if (!budget_.enabled()) return true;
  return committed_power_w_ + power_demand(job) <= budget_.watts;
}

bool BatchScheduler::submit(workload::JobRequest job, std::uint32_t attempt) {
  ++stats_.submitted;
  if (job.nnodes == 0 || job.nnodes > allocator_.total_count()) {
    // Unsatisfiable on any machine state; admitting it would park the FCFS
    // head on a reservation that never materializes and starve the queue.
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(QueuedJob{std::move(job), attempt});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  return true;
}

RunningJob BatchScheduler::start_job(const workload::JobRequest& job,
                                     util::MinuteTime now,
                                     std::vector<cluster::NodeId> nodes,
                                     bool backfilled, std::uint32_t attempt) {
  // Degenerate requests (zero-minute wall time / runtime) still occupy the
  // machine for one schedulable minute; without the floor a job ending the
  // minute it starts would be missed by the simulator's completion sweep.
  const std::uint32_t wall = std::max<std::uint32_t>(job.walltime_req_min, 1);
  const std::uint32_t run_for = std::max<std::uint32_t>(job.runtime_min, 1);

  RunningJob run;
  run.request = job;
  run.start = now;
  run.end = now + util::MinuteTime(std::min(run_for, wall));
  run.limit_end = now + util::MinuteTime(wall);
  run.nodes = std::move(nodes);
  run.backfilled = backfilled;
  run.attempt = attempt;
  run.hit_walltime = run_for > wall;

  running_limits_.emplace_back(run.limit_end, job.nnodes);
  if (budget_.enabled()) committed_power_w_ += power_demand(job);
  ++stats_.started;
  if (backfilled) ++stats_.backfilled;
  stats_.total_wait_minutes += static_cast<double>((now - job.submit).minutes());
  return run;
}

BatchScheduler::Reservation BatchScheduler::compute_reservation(
    util::MinuteTime now, std::uint32_t head_nnodes) const {
  Reservation r;
  std::uint32_t available = allocator_.free_count();
  if (available >= head_nnodes) {
    r.shadow_start = now;
    r.spare_nodes = available - head_nnodes;
    return r;
  }
  // Accumulate guaranteed releases in wall-time-limit order.
  auto limits = running_limits_;
  std::sort(limits.begin(), limits.end());
  for (const auto& [limit_end, nnodes] : limits) {
    available += nnodes;
    if (available >= head_nnodes) {
      r.shadow_start = std::max(limit_end, now);
      r.spare_nodes = available - head_nnodes;
      return r;
    }
  }
  // Head job larger than the currently serviceable machine (submit() rejects
  // requests beyond the full machine, but drained nodes can shrink what
  // running jobs will ever return): treat as "wait for repairs" by reserving
  // at the last limit.
  r.shadow_start = limits.empty() ? now : limits.back().first;
  r.spare_nodes = 0;
  return r;
}

std::optional<util::MinuteTime> BatchScheduler::head_reservation(
    util::MinuteTime now) const {
  if (queue_.empty()) return std::nullopt;
  if (allocator_.free_count() >= queue_.front().request.nnodes) return std::nullopt;
  return compute_reservation(now, queue_.front().request.nnodes).shadow_start;
}

std::vector<RunningJob> BatchScheduler::schedule(util::MinuteTime now) {
  std::vector<RunningJob> started;

  // FCFS phase: start queue-head jobs while they fit (nodes and power).
  while (!queue_.empty() &&
         queue_.front().request.nnodes <= allocator_.free_count() &&
         power_fits(queue_.front().request)) {
    const QueuedJob job = queue_.front();
    queue_.pop_front();
    auto nodes = allocator_.allocate(job.request.nnodes);
    assert(!nodes.empty());
    started.push_back(start_job(job.request, now, std::move(nodes),
                                /*backfilled=*/false, job.attempt));
  }
  if (queue_.empty() || allocator_.free_count() == 0 ||
      policy_ == SchedulerPolicy::kFcfsOnly)
    return started;

  // EASY backfill phase: the head job cannot start; reserve its shadow time
  // and let later jobs run only if they do not delay that reservation.
  Reservation res = compute_reservation(now, queue_.front().request.nnodes);
  for (auto it = queue_.begin() + 1; it != queue_.end() && allocator_.free_count() > 0;) {
    const std::uint32_t nnodes = it->request.nnodes;
    if (nnodes > allocator_.free_count()) {
      ++it;
      continue;
    }
    const util::MinuteTime would_end =
        now + util::MinuteTime(it->request.walltime_req_min);
    const bool fits_before_shadow = would_end <= res.shadow_start;
    const bool fits_in_spare = nnodes <= res.spare_nodes;
    if ((fits_before_shadow || fits_in_spare) && power_fits(it->request)) {
      // A backfill job still running at the shadow time consumes part of the
      // head job's spare-node headroom.
      if (!fits_before_shadow) res.spare_nodes -= nnodes;
      const QueuedJob job = *it;
      it = queue_.erase(it);
      auto nodes = allocator_.allocate(job.request.nnodes);
      assert(!nodes.empty());
      started.push_back(start_job(job.request, now, std::move(nodes),
                                  /*backfilled=*/true, job.attempt));
    } else {
      ++it;
    }
  }
  return started;
}

void BatchScheduler::release(const RunningJob& job) {
  allocator_.release(job.nodes);
  if (budget_.enabled())
    committed_power_w_ = std::max(0.0, committed_power_w_ - power_demand(job.request));
  ++stats_.completed;
  const auto it = std::find(running_limits_.begin(), running_limits_.end(),
                            std::make_pair(job.limit_end, job.request.nnodes));
  if (it != running_limits_.end()) {
    *it = running_limits_.back();
    running_limits_.pop_back();
  }
}

void BatchScheduler::kill(const RunningJob& job) {
  allocator_.release(job.nodes);
  if (budget_.enabled())
    committed_power_w_ = std::max(0.0, committed_power_w_ - power_demand(job.request));
  ++stats_.killed;
  const auto it = std::find(running_limits_.begin(), running_limits_.end(),
                            std::make_pair(job.limit_end, job.request.nnodes));
  if (it != running_limits_.end()) {
    *it = running_limits_.back();
    running_limits_.pop_back();
  }
}

SchedulerSnapshot BatchScheduler::snapshot() const {
  SchedulerSnapshot snap;
  snap.queue.assign(queue_.begin(), queue_.end());
  snap.free_order = allocator_.free_order();
  for (cluster::NodeId id = 0; id < allocator_.total_count(); ++id) {
    if (allocator_.is_drained(id)) snap.drained.push_back(id);
  }
  snap.running_limits = running_limits_;
  snap.committed_power_w = committed_power_w_;
  snap.stats = stats_;
  return snap;
}

void BatchScheduler::restore(const SchedulerSnapshot& snap) {
  queue_.assign(snap.queue.begin(), snap.queue.end());
  allocator_.restore(snap.free_order, snap.drained);
  running_limits_ = snap.running_limits;
  committed_power_w_ = snap.committed_power_w;
  stats_ = snap.stats;
}

}  // namespace hpcpower::sched

#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace hpcpower::sched {

BatchScheduler::BatchScheduler(std::uint32_t node_count, SchedulerPolicy policy,
                               PowerBudget budget)
    : allocator_(node_count), policy_(policy), budget_(budget) {}

double BatchScheduler::power_demand(const workload::JobRequest& job) const noexcept {
  const double per_node = job.estimated_node_power_w > 0.0
                              ? job.estimated_node_power_w
                              : budget_.fallback_node_power_w;
  return per_node * static_cast<double>(job.nnodes);
}

bool BatchScheduler::power_fits(const workload::JobRequest& job) const noexcept {
  if (!budget_.enabled()) return true;
  return committed_power_w_ + power_demand(job) <= budget_.watts;
}

void BatchScheduler::submit(workload::JobRequest job) {
  ++stats_.submitted;
  queue_.push_back(std::move(job));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
}

RunningJob BatchScheduler::start_job(const workload::JobRequest& job,
                                     util::MinuteTime now,
                                     std::vector<cluster::NodeId> nodes,
                                     bool backfilled) {
  RunningJob run;
  run.request = job;
  run.start = now;
  run.end = now + util::MinuteTime(job.runtime_min);
  run.limit_end = now + util::MinuteTime(job.walltime_req_min);
  run.nodes = std::move(nodes);
  run.backfilled = backfilled;

  running_limits_.emplace_back(run.limit_end, job.nnodes);
  if (budget_.enabled()) committed_power_w_ += power_demand(job);
  ++stats_.started;
  if (backfilled) ++stats_.backfilled;
  stats_.total_wait_minutes += static_cast<double>((now - job.submit).minutes());
  return run;
}

BatchScheduler::Reservation BatchScheduler::compute_reservation(
    util::MinuteTime now, std::uint32_t head_nnodes) const {
  Reservation r;
  std::uint32_t available = allocator_.free_count();
  if (available >= head_nnodes) {
    r.shadow_start = now;
    r.spare_nodes = available - head_nnodes;
    return r;
  }
  // Accumulate guaranteed releases in wall-time-limit order.
  auto limits = running_limits_;
  std::sort(limits.begin(), limits.end());
  for (const auto& [limit_end, nnodes] : limits) {
    available += nnodes;
    if (available >= head_nnodes) {
      r.shadow_start = std::max(limit_end, now);
      r.spare_nodes = available - head_nnodes;
      return r;
    }
  }
  // Head job larger than the machine: should be rejected upstream; treat as
  // "never" by reserving at the last limit.
  r.shadow_start = limits.empty() ? now : limits.back().first;
  r.spare_nodes = 0;
  return r;
}

std::optional<util::MinuteTime> BatchScheduler::head_reservation(
    util::MinuteTime now) const {
  if (queue_.empty()) return std::nullopt;
  if (allocator_.free_count() >= queue_.front().nnodes) return std::nullopt;
  return compute_reservation(now, queue_.front().nnodes).shadow_start;
}

std::vector<RunningJob> BatchScheduler::schedule(util::MinuteTime now) {
  std::vector<RunningJob> started;

  // FCFS phase: start queue-head jobs while they fit (nodes and power).
  while (!queue_.empty() && queue_.front().nnodes <= allocator_.free_count() &&
         power_fits(queue_.front())) {
    const workload::JobRequest job = queue_.front();
    queue_.pop_front();
    auto nodes = allocator_.allocate(job.nnodes);
    assert(!nodes.empty());
    started.push_back(start_job(job, now, std::move(nodes), /*backfilled=*/false));
  }
  if (queue_.empty() || allocator_.free_count() == 0 ||
      policy_ == SchedulerPolicy::kFcfsOnly)
    return started;

  // EASY backfill phase: the head job cannot start; reserve its shadow time
  // and let later jobs run only if they do not delay that reservation.
  Reservation res = compute_reservation(now, queue_.front().nnodes);
  for (auto it = queue_.begin() + 1; it != queue_.end() && allocator_.free_count() > 0;) {
    const std::uint32_t nnodes = it->nnodes;
    if (nnodes > allocator_.free_count()) {
      ++it;
      continue;
    }
    const util::MinuteTime would_end = now + util::MinuteTime(it->walltime_req_min);
    const bool fits_before_shadow = would_end <= res.shadow_start;
    const bool fits_in_spare = nnodes <= res.spare_nodes;
    if ((fits_before_shadow || fits_in_spare) && power_fits(*it)) {
      // A backfill job still running at the shadow time consumes part of the
      // head job's spare-node headroom.
      if (!fits_before_shadow) res.spare_nodes -= nnodes;
      const workload::JobRequest job = *it;
      it = queue_.erase(it);
      auto nodes = allocator_.allocate(job.nnodes);
      assert(!nodes.empty());
      started.push_back(start_job(job, now, std::move(nodes), /*backfilled=*/true));
    } else {
      ++it;
    }
  }
  return started;
}

void BatchScheduler::release(const RunningJob& job) {
  allocator_.release(job.nodes);
  if (budget_.enabled())
    committed_power_w_ = std::max(0.0, committed_power_w_ - power_demand(job.request));
  ++stats_.completed;
  const auto it = std::find(running_limits_.begin(), running_limits_.end(),
                            std::make_pair(job.limit_end, job.request.nnodes));
  if (it != running_limits_.end()) {
    *it = running_limits_.back();
    running_limits_.pop_back();
  }
}

}  // namespace hpcpower::sched

#pragma once
// Deterministic node-failure model.
//
// Production clusters lose nodes mid-job: Emmy/Meggie-class machines see
// per-node hardware MTBFs measured in weeks-to-months, with repairs (reboot,
// DIMM swap, re-image) taking minutes to days. Chu et al. show such failures
// measurably reshape node-energy and wait-time distributions, so a campaign
// simulator aiming at production realism must crash and repair nodes.
//
// Like telemetry::FaultModel, every decision is a pure function of
// (seed, node, interval index): the whole failure history of a node is a
// deterministic alternating up/down walk derived by stateless hashing. No
// mutable PRNG state exists, which is what lets campaign checkpoints resume
// bit-identically without serializing generator cursors, and makes the
// schedule invariant to query order.

#include <cstdint>
#include <vector>

#include "cluster/node.hpp"

namespace hpcpower::sched {

/// Node failure / repair / requeue parameters. Disabled by default so every
/// existing campaign stays bit-identical.
struct FailureConfig {
  bool enabled = false;
  /// Per-node mean time between failures, in days of uptime.
  double mtbf_days = 45.0;
  /// Mean time to repair (node drained, then returned to service), minutes.
  double mttr_min = 360.0;
  /// Total attempts a job may consume (first run + requeues). 1 = no requeue.
  std::uint32_t max_attempts = 4;
  /// Requeue backoff: attempt k waits ~ base * 2^(k-1) minutes, capped.
  std::uint32_t backoff_base_min = 5;
  std::uint32_t backoff_cap_min = 240;

  friend bool operator==(const FailureConfig&, const FailureConfig&) = default;
};

/// Deterministic failure oracle for one campaign. Copyable and cheap; all
/// queries are pure functions of the construction parameters.
class NodeFailureModel {
 public:
  /// One contiguous down-time window: the node fails at minute `fail` and is
  /// back in service at minute `repair` (down during [fail, repair)).
  struct Outage {
    std::int64_t fail = 0;
    std::int64_t repair = 0;
    friend bool operator==(const Outage&, const Outage&) = default;
  };

  NodeFailureModel() = default;  ///< disabled model: nodes never fail
  NodeFailureModel(const FailureConfig& config, std::uint64_t seed);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const FailureConfig& config() const noexcept { return config_; }

  /// All outages of `node` that intersect [0, horizon_min), in time order.
  /// Windows never overlap and are separated by >= 1 minute of uptime.
  [[nodiscard]] std::vector<Outage> outages(cluster::NodeId node,
                                            std::int64_t horizon_min) const;

  /// True while `node` is down (failed, not yet repaired) at `minute`.
  [[nodiscard]] bool is_down(cluster::NodeId node, std::int64_t minute) const;

  /// Minutes to hold a killed job before re-submitting its next attempt.
  /// `attempt` is the attempt that was just killed (1-based). Exponential
  /// backoff with deterministic per-(job, attempt) jitter, always >= 1.
  [[nodiscard]] std::uint32_t requeue_backoff_min(std::uint64_t job_id,
                                                  std::uint32_t attempt) const;

 private:
  FailureConfig config_{};
  // Independent sub-streams so uptime draws never shift repair durations.
  std::uint64_t uptime_seed_ = 0;
  std::uint64_t repair_seed_ = 0;
  std::uint64_t backoff_seed_ = 0;
};

}  // namespace hpcpower::sched

#pragma once
// Batch scheduler: FCFS with EASY backfill over exclusive full nodes.
//
// Both studied systems allocate whole nodes exclusively (Table 1) and run
// mainstream batch systems (Torque/Maui and Slurm), whose default production
// behaviour is first-come-first-served with EASY backfill: the head job gets
// a reservation at the earliest time enough nodes are guaranteed free (by
// requested wall time), and later jobs may jump the queue only if they cannot
// delay that reservation.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/node.hpp"
#include "workload/generator.hpp"
#include "util/sim_time.hpp"

namespace hpcpower::sched {

/// A job that has been placed on nodes and is executing.
struct RunningJob {
  workload::JobRequest request;
  util::MinuteTime start{};
  util::MinuteTime end{};        ///< start + actual runtime
  util::MinuteTime limit_end{};  ///< start + requested wall time (kill time)
  std::vector<cluster::NodeId> nodes;
  bool backfilled = false;
};

/// Completed-job accounting record (what Torque/Slurm logs provide).
struct JobAccountingRecord {
  workload::JobId job_id = 0;
  workload::UserId user_id = 0;
  workload::AppId app = 0;
  util::MinuteTime submit{};
  util::MinuteTime start{};
  util::MinuteTime end{};
  std::uint32_t nnodes = 1;
  std::uint32_t walltime_req_min = 0;
  bool backfilled = false;
  bool truncated_by_horizon = false;

  [[nodiscard]] std::uint32_t runtime_min() const noexcept {
    return static_cast<std::uint32_t>((end - start).minutes());
  }
  [[nodiscard]] std::uint32_t wait_min() const noexcept {
    return static_cast<std::uint32_t>((start - submit).minutes());
  }
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t backfilled = 0;
  double total_wait_minutes = 0.0;
  std::size_t max_queue_depth = 0;

  [[nodiscard]] double mean_wait_minutes() const noexcept {
    return started ? total_wait_minutes / static_cast<double>(started) : 0.0;
  }
};

/// Queueing discipline. Both studied systems run EASY backfill in
/// production; strict FCFS exists for the ablation bench that quantifies
/// what backfilling buys in utilization.
enum class SchedulerPolicy { kFcfsBackfill, kFcfsOnly };

/// Optional power-aware admission: the scheduler refuses to start a job when
/// the estimated fleet draw of running jobs plus the candidate would exceed
/// the budget. This is the resource-management use case the paper's traces
/// enable (power-capped over-provisioned operation); estimates come from
/// JobRequest::estimated_node_power_w (user guidance or a trained predictor).
struct PowerBudget {
  /// Total compute power budget in watts; <= 0 disables the constraint.
  double watts = 0.0;
  /// Per-node demand assumed for jobs without an estimate (use the node TDP
  /// for worst-case provisioning).
  double fallback_node_power_w = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return watts > 0.0; }
};

/// The queue + placement engine. Time is advanced by the caller (the
/// CampaignSimulator); the scheduler never blocks.
class BatchScheduler {
 public:
  explicit BatchScheduler(std::uint32_t node_count,
                          SchedulerPolicy policy = SchedulerPolicy::kFcfsBackfill,
                          PowerBudget budget = {});

  void submit(workload::JobRequest job);

  /// Attempts to start queued jobs at time `now` (FCFS + EASY backfill).
  /// Returns the jobs started this invocation.
  [[nodiscard]] std::vector<RunningJob> schedule(util::MinuteTime now);

  /// Releases the job's nodes (call when it completes).
  void release(const RunningJob& job);

  [[nodiscard]] std::uint32_t free_nodes() const noexcept {
    return allocator_.free_count();
  }
  [[nodiscard]] std::uint32_t busy_nodes() const noexcept {
    return allocator_.busy_count();
  }
  [[nodiscard]] std::uint32_t total_nodes() const noexcept {
    return allocator_.total_count();
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  /// Estimated fleet draw committed to running jobs (0 without a budget).
  [[nodiscard]] double committed_power_w() const noexcept { return committed_power_w_; }

  /// The head job's earliest guaranteed start ("shadow time") given current
  /// running jobs' wall-time limits; nullopt when the queue is empty or the
  /// head fits right now. Exposed for tests.
  [[nodiscard]] std::optional<util::MinuteTime> head_reservation(
      util::MinuteTime now) const;

 private:
  struct Reservation {
    util::MinuteTime shadow_start{};  // when the head job is guaranteed nodes
    std::uint32_t spare_nodes = 0;    // nodes usable by backfill until then
  };
  [[nodiscard]] Reservation compute_reservation(util::MinuteTime now,
                                                std::uint32_t head_nnodes) const;

  RunningJob start_job(const workload::JobRequest& job, util::MinuteTime now,
                       std::vector<cluster::NodeId> nodes, bool backfilled);
  /// Estimated fleet draw of one job under the budget's fallback rule.
  [[nodiscard]] double power_demand(const workload::JobRequest& job) const noexcept;
  /// True if the job passes the (possibly disabled) power admission check.
  [[nodiscard]] bool power_fits(const workload::JobRequest& job) const noexcept;

  cluster::NodeAllocator allocator_;
  SchedulerPolicy policy_;
  PowerBudget budget_;
  double committed_power_w_ = 0.0;
  std::deque<workload::JobRequest> queue_;
  // Wall-time-limit ends of currently running jobs (with node counts), kept
  // for reservation computation. Entries are lazily pruned.
  std::vector<std::pair<util::MinuteTime, std::uint32_t>> running_limits_;
  SchedulerStats stats_;
};

}  // namespace hpcpower::sched

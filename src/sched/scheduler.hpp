#pragma once
// Batch scheduler: FCFS with EASY backfill over exclusive full nodes.
//
// Both studied systems allocate whole nodes exclusively (Table 1) and run
// mainstream batch systems (Torque/Maui and Slurm), whose default production
// behaviour is first-come-first-served with EASY backfill: the head job gets
// a reservation at the earliest time enough nodes are guaranteed free (by
// requested wall time), and later jobs may jump the queue only if they cannot
// delay that reservation.
//
// Failure awareness: nodes can be drained (taken out of placement while under
// repair) and undrained; running jobs can be killed, which frees their nodes
// without counting a completion. Every attempt carries an attempt number and
// each accounting record an ExitStatus, mirroring production Torque/Slurm
// logs. The scheduler itself stays policy-free about retries — requeue and
// backoff decisions live in the CampaignSimulator.

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/node.hpp"
#include "sched/exit_status.hpp"
#include "workload/generator.hpp"
#include "util/sim_time.hpp"

namespace hpcpower::sched {

/// A job that has been placed on nodes and is executing.
struct RunningJob {
  workload::JobRequest request;
  util::MinuteTime start{};
  util::MinuteTime end{};        ///< start + actual runtime (walltime-clamped)
  util::MinuteTime limit_end{};  ///< start + requested wall time (kill time)
  std::vector<cluster::NodeId> nodes;
  bool backfilled = false;
  std::uint32_t attempt = 1;     ///< 1 for the first run, +1 per requeue
  bool hit_walltime = false;     ///< true when `end` was clamped to the limit
};

/// Completed-attempt accounting record (what Torque/Slurm logs provide).
/// One record per attempt: a job killed by a node failure and requeued
/// produces a KILLED_NODE_FAIL record and, later, the retry's own record.
struct JobAccountingRecord {
  workload::JobId job_id = 0;
  workload::UserId user_id = 0;
  workload::AppId app = 0;
  util::MinuteTime submit{};
  util::MinuteTime start{};
  util::MinuteTime end{};
  std::uint32_t nnodes = 1;
  std::uint32_t walltime_req_min = 0;
  bool backfilled = false;
  bool truncated_by_horizon = false;
  ExitStatus exit = ExitStatus::kCompleted;
  std::uint32_t attempt = 1;

  [[nodiscard]] std::uint32_t runtime_min() const noexcept {
    const std::int64_t m = (end - start).minutes();
    assert(m >= 0 && "accounting record ends before it starts");
    return m > 0 ? static_cast<std::uint32_t>(m) : 0u;
  }
  [[nodiscard]] std::uint32_t wait_min() const noexcept {
    const std::int64_t m = (start - submit).minutes();
    assert(m >= 0 && "accounting record starts before it was submitted");
    return m > 0 ? static_cast<std::uint32_t>(m) : 0u;
  }

  friend bool operator==(const JobAccountingRecord&,
                         const JobAccountingRecord&) = default;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t backfilled = 0;
  std::uint64_t killed = 0;    ///< attempts killed (node failure)
  std::uint64_t rejected = 0;  ///< submissions refused (unsatisfiable request)
  double total_wait_minutes = 0.0;
  std::size_t max_queue_depth = 0;

  [[nodiscard]] double mean_wait_minutes() const noexcept {
    return started ? total_wait_minutes / static_cast<double>(started) : 0.0;
  }

  friend bool operator==(const SchedulerStats&, const SchedulerStats&) = default;
};

/// Queueing discipline. Both studied systems run EASY backfill in
/// production; strict FCFS exists for the ablation bench that quantifies
/// what backfilling buys in utilization.
enum class SchedulerPolicy { kFcfsBackfill, kFcfsOnly };

/// Optional power-aware admission: the scheduler refuses to start a job when
/// the estimated fleet draw of running jobs plus the candidate would exceed
/// the budget. This is the resource-management use case the paper's traces
/// enable (power-capped over-provisioned operation); estimates come from
/// JobRequest::estimated_node_power_w (user guidance or a trained predictor).
struct PowerBudget {
  /// Total compute power budget in watts; <= 0 disables the constraint.
  double watts = 0.0;
  /// Per-node demand assumed for jobs without an estimate (use the node TDP
  /// for worst-case provisioning).
  double fallback_node_power_w = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return watts > 0.0; }

  friend bool operator==(const PowerBudget&, const PowerBudget&) = default;
};

/// A queued (not yet placed) attempt.
struct QueuedJob {
  workload::JobRequest request;
  std::uint32_t attempt = 1;
};

/// Full queue/placement state of a BatchScheduler at one instant, sufficient
/// to rebuild it bit-identically (campaign checkpointing). The free-node
/// stack order is part of the state: allocation identity depends on it.
struct SchedulerSnapshot {
  std::vector<QueuedJob> queue;
  std::vector<cluster::NodeId> free_order;
  std::vector<cluster::NodeId> drained;
  std::vector<std::pair<util::MinuteTime, std::uint32_t>> running_limits;
  double committed_power_w = 0.0;
  SchedulerStats stats;
};

/// The queue + placement engine. Time is advanced by the caller (the
/// CampaignSimulator); the scheduler never blocks.
class BatchScheduler {
 public:
  explicit BatchScheduler(std::uint32_t node_count,
                          SchedulerPolicy policy = SchedulerPolicy::kFcfsBackfill,
                          PowerBudget budget = {});

  /// Enqueues one attempt. Returns false (and counts a rejection) for
  /// requests no machine state could ever satisfy — zero nodes, or more
  /// nodes than the cluster has — so an unsatisfiable head job can never
  /// block the queue forever.
  bool submit(workload::JobRequest job, std::uint32_t attempt = 1);

  /// Attempts to start queued jobs at time `now` (FCFS + EASY backfill).
  /// Returns the jobs started this invocation.
  [[nodiscard]] std::vector<RunningJob> schedule(util::MinuteTime now);

  /// Releases the job's nodes (call when it completes).
  void release(const RunningJob& job);

  /// Releases a job killed mid-run (node failure): frees its nodes and
  /// committed power like release(), but counts a kill, not a completion.
  void kill(const RunningJob& job);

  /// Takes a free node out of placement (failed, under repair). Any job on
  /// the node must have been killed first.
  void drain(cluster::NodeId node) { allocator_.drain(node); }
  /// Returns a repaired node to the free pool.
  void undrain(cluster::NodeId node) { allocator_.undrain(node); }

  [[nodiscard]] std::uint32_t free_nodes() const noexcept {
    return allocator_.free_count();
  }
  [[nodiscard]] std::uint32_t busy_nodes() const noexcept {
    return allocator_.busy_count();
  }
  [[nodiscard]] std::uint32_t drained_nodes() const noexcept {
    return allocator_.drained_count();
  }
  [[nodiscard]] std::uint32_t total_nodes() const noexcept {
    return allocator_.total_count();
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  /// Estimated fleet draw committed to running jobs (0 without a budget).
  [[nodiscard]] double committed_power_w() const noexcept { return committed_power_w_; }

  /// The head job's earliest guaranteed start ("shadow time") given current
  /// running jobs' wall-time limits; nullopt when the queue is empty or the
  /// head fits right now. Exposed for tests.
  [[nodiscard]] std::optional<util::MinuteTime> head_reservation(
      util::MinuteTime now) const;

  /// Captures / rebuilds the scheduler's complete mutable state. restore()
  /// requires a snapshot taken from a scheduler with the same node count.
  [[nodiscard]] SchedulerSnapshot snapshot() const;
  void restore(const SchedulerSnapshot& snap);

 private:
  struct Reservation {
    util::MinuteTime shadow_start{};  // when the head job is guaranteed nodes
    std::uint32_t spare_nodes = 0;    // nodes usable by backfill until then
  };
  [[nodiscard]] Reservation compute_reservation(util::MinuteTime now,
                                                std::uint32_t head_nnodes) const;

  RunningJob start_job(const workload::JobRequest& job, util::MinuteTime now,
                       std::vector<cluster::NodeId> nodes, bool backfilled,
                       std::uint32_t attempt);
  /// Estimated fleet draw of one job under the budget's fallback rule.
  [[nodiscard]] double power_demand(const workload::JobRequest& job) const noexcept;
  /// True if the job passes the (possibly disabled) power admission check.
  [[nodiscard]] bool power_fits(const workload::JobRequest& job) const noexcept;

  cluster::NodeAllocator allocator_;
  SchedulerPolicy policy_;
  PowerBudget budget_;
  double committed_power_w_ = 0.0;
  std::deque<QueuedJob> queue_;
  // Wall-time-limit ends of currently running jobs (with node counts), kept
  // for reservation computation. Entries are lazily pruned.
  std::vector<std::pair<util::MinuteTime, std::uint32_t>> running_limits_;
  SchedulerStats stats_;
};

}  // namespace hpcpower::sched

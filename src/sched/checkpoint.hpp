#pragma once
// Campaign checkpoint serialization.
//
// A checkpoint captures the complete mutable state of a CampaignSimulator at
// a minute boundary: scheduler queue (with attempt numbers), running jobs
// and their exact node placements, the free-node stack order (allocation
// identity depends on it), drained nodes, pending requeues, partial
// accounting, and the busy-node series. Job bodies are NOT serialized — the
// resume caller supplies the same workload and records are rebuilt by job id.
//
// No PRNG cursors appear anywhere: every random decision in the stack
// (failure schedule, requeue backoff) is a stateless hash of
// (seed, entity, counter), so a resumed campaign re-derives the identical
// future from its seed.
//
// The format is a versioned, line-oriented text file. Doubles are stored as
// raw IEEE-754 bit patterns (decimal uint64) because resume must be
// bit-identical and decimal round-tripping is not.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sched/simulator.hpp"

namespace hpcpower::sched {

struct CheckpointQueuedJob {
  workload::JobId job_id = 0;
  std::uint32_t attempt = 1;
  std::int64_t submit = 0;  ///< possibly overridden by a requeue
};

struct CheckpointRunningJob {
  workload::JobId job_id = 0;
  std::uint32_t attempt = 1;
  std::int64_t submit = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t limit_end = 0;
  bool backfilled = false;
  bool hit_walltime = false;
  std::vector<cluster::NodeId> nodes;
};

struct CheckpointRequeue {
  std::int64_t due = 0;  ///< minute the retry re-enters the queue
  workload::JobId job_id = 0;
  std::uint32_t attempt = 1;  ///< attempt number of the retry
};

struct CampaignCheckpoint {
  std::int64_t minute = 0;  ///< first minute NOT yet simulated
  // Configuration echo, validated on resume: a checkpoint only resumes on a
  // simulator constructed with the identical parameters.
  std::uint32_t node_count = 0;
  std::int64_t horizon = 0;
  int policy = 0;
  std::uint64_t seed = 0;
  FailureConfig failures{};
  PowerBudget budget{};
  // Mutable campaign state.
  std::size_t next_submit = 0;
  SchedulerStats stats{};
  AvailabilityStats availability{};  ///< node_minutes_total left 0; finalize sets it
  double committed_power_w = 0.0;
  std::vector<CheckpointQueuedJob> queue;            // FCFS order
  std::vector<cluster::NodeId> free_order;           // stack order, verbatim
  std::vector<cluster::NodeId> drained;
  std::vector<CheckpointRunningJob> running;         // ascending job id
  std::vector<CheckpointRequeue> requeues;           // ascending due, FIFO within
  std::vector<std::pair<workload::JobId, std::int64_t>> kill_times;
  std::vector<JobAccountingRecord> accounting;       // as accumulated
  std::vector<std::uint32_t> busy_nodes_per_minute;  // minutes [0, minute)
  /// Opaque state lines contributed by simulation hooks (e.g. the closed-loop
  /// power manager); stored verbatim and handed back on resume.
  std::vector<std::string> extension;
};

void write_checkpoint(std::ostream& out, const CampaignCheckpoint& cp);

/// Parses a checkpoint; throws std::runtime_error on malformed input or an
/// unsupported version.
[[nodiscard]] CampaignCheckpoint read_checkpoint(std::istream& in);

}  // namespace hpcpower::sched

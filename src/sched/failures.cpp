#include "sched/failures.hpp"

#include <algorithm>
#include <cmath>

#include "util/prng.hpp"

namespace hpcpower::sched {

namespace {

constexpr double kMinutesPerDay = 24.0 * 60.0;

/// Exponential draw with mean `mean_min`, floored at 1 minute so up/down
/// intervals never collapse to zero (which would let a node fail and repair
/// in the same simulated minute).
std::int64_t exponential_minutes(std::uint64_t seed, std::uint64_t k1,
                                 std::uint64_t k2, double mean_min) {
  const double u = util::stateless_uniform(seed, k1, k2);
  return static_cast<std::int64_t>(
      1.0 - mean_min * std::log(1.0 - u * (1.0 - 1e-12)));
}

}  // namespace

NodeFailureModel::NodeFailureModel(const FailureConfig& config, std::uint64_t seed)
    : config_(config),
      uptime_seed_(util::derive_stream(seed, "failures/uptime")),
      repair_seed_(util::derive_stream(seed, "failures/repair")),
      backoff_seed_(util::derive_stream(seed, "failures/backoff")) {}

std::vector<NodeFailureModel::Outage> NodeFailureModel::outages(
    cluster::NodeId node, std::int64_t horizon_min) const {
  std::vector<Outage> result;
  if (!config_.enabled || config_.mtbf_days <= 0.0 || horizon_min <= 0)
    return result;
  const double mtbf_min = config_.mtbf_days * kMinutesPerDay;
  const double mttr_min = std::max(config_.mttr_min, 1.0);
  // Alternating up/down walk: interval k is one (uptime, downtime) pair, each
  // drawn statelessly from its own stream keyed by (node, k).
  std::int64_t t = 0;
  for (std::uint64_t k = 0; t < horizon_min; ++k) {
    const std::int64_t fail = t + exponential_minutes(uptime_seed_, node, k, mtbf_min);
    if (fail >= horizon_min) break;
    const std::int64_t repair =
        fail + exponential_minutes(repair_seed_, node, k, mttr_min);
    result.push_back(Outage{fail, repair});
    t = repair;
  }
  return result;
}

bool NodeFailureModel::is_down(cluster::NodeId node, std::int64_t minute) const {
  if (!config_.enabled || minute < 0) return false;
  for (const Outage& o : outages(node, minute + 1)) {
    if (minute >= o.fail && minute < o.repair) return true;
  }
  return false;
}

std::uint32_t NodeFailureModel::requeue_backoff_min(std::uint64_t job_id,
                                                    std::uint32_t attempt) const {
  const std::uint64_t base = std::max<std::uint32_t>(config_.backoff_base_min, 1);
  const std::uint64_t cap = std::max<std::uint64_t>(config_.backoff_cap_min, 1);
  const std::uint32_t shift = std::min<std::uint32_t>(attempt > 0 ? attempt - 1 : 0, 20);
  std::uint64_t delay = std::min<std::uint64_t>(base << shift, cap);
  // Deterministic jitter in [0, base) de-synchronizes jobs killed by the
  // same node failure so they do not re-arrive as one thundering herd.
  if (base > 1) delay += util::stateless_index(backoff_seed_, job_id, attempt, base);
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(delay, cap + base));
}

}  // namespace hpcpower::sched

#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stream/codec.hpp"
#include "util/prng.hpp"

namespace hpcpower::serve {

namespace {

/// Payload format version; bumped on any layout change so an old binary
/// rejects a new file loudly instead of misdecoding it.
constexpr std::uint64_t kPayloadVersion = 1;

[[nodiscard]] double median_of_sorted(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

void encode_scaling(stream::Encoder& e, const ml::Dataset::Scaling& s) {
  e.u64(s.mean.size());
  for (const double v : s.mean) e.f64(v);
  for (const double v : s.stddev) e.f64(v);
}

[[nodiscard]] ml::Dataset::Scaling decode_scaling(stream::Decoder& d) {
  ml::Dataset::Scaling s;
  const std::uint64_t n = d.u64();
  if (n > (1u << 20)) d.fail();
  if (!d.ok()) return s;
  s.mean.resize(n);
  s.stddev.resize(n);
  for (auto& v : s.mean) v = d.f64();
  for (auto& v : s.stddev) v = d.f64();
  return s;
}

}  // namespace

const char* model_kind_name(ModelKind m) noexcept {
  switch (m) {
    case ModelKind::kTree: return "BDT";
    case ModelKind::kKnn: return "KNN";
    case ModelKind::kFlda: return "FLDA";
  }
  return "?";
}

std::uint64_t FeatureSchema::hash() const noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  const auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 0x100000001B3ull;
  };
  for (const auto& name : names) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix(0x1F);  // separator: {"ab"} != {"a","b"}
  }
  return h;
}

FeatureSchema submission_schema() {
  return {{"user_id", "nnodes", "walltime_req_min"}};
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::train(
    const ml::Dataset& data, const FeatureSchema& schema,
    const SnapshotTrainConfig& config) {
  if (data.empty())
    throw std::invalid_argument("ModelSnapshot::train: empty dataset");
  if (data.dim() != schema.dim())
    throw std::invalid_argument(
        "ModelSnapshot::train: dataset dim does not match feature schema");

  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->schema_ = schema;
  snap->meta_.version = config.version;
  snap->meta_.train_seed = config.seed;
  snap->meta_.source_watermark = config.source_watermark;
  snap->tree_ = ml::DecisionTreeRegressor(config.tree);
  snap->knn_ = ml::KnnRegressor(config.knn);
  snap->flda_ = ml::FldaRegressor(config.flda);

  util::Rng rng(config.seed);
  const ml::Split split = ml::make_split(data, config.train_fraction, rng);
  const ml::Dataset train_set = data.subset(split.train);
  snap->meta_.trained_rows = train_set.size();
  snap->tree_.fit(train_set);
  snap->knn_.fit(train_set);
  snap->flda_.fit(train_set);

  std::vector<double> errors;
  errors.reserve(split.validation.size());
  double sum = 0.0;
  for (const std::size_t i : split.validation) {
    const double err = ml::absolute_percent_error(
        data.target(i), snap->tree_.predict(data.row(i)));
    errors.push_back(err);
    sum += err;
  }
  if (!errors.empty()) {
    snap->meta_.validation_mape = sum / static_cast<double>(errors.size());
    std::sort(errors.begin(), errors.end());
    snap->meta_.validation_p50 = median_of_sorted(errors);
  }
  return snap;
}

double ModelSnapshot::predict(ModelKind model,
                              std::span<const double> features) const {
  switch (model) {
    case ModelKind::kTree: return tree_.predict(features);
    case ModelKind::kKnn: return knn_.predict(features);
    case ModelKind::kFlda: return flda_.predict(features);
  }
  throw std::invalid_argument("ModelSnapshot::predict: unknown model kind");
}

std::string ModelSnapshot::serialize() const {
  stream::Encoder e;
  e.u64(kPayloadVersion);

  e.u64(schema_.hash());
  e.u64(schema_.names.size());
  for (const auto& name : schema_.names) e.str(name);

  e.u64(meta_.version);
  e.u64(meta_.trained_rows);
  e.u64(meta_.train_seed);
  e.u64(meta_.source_watermark);
  e.f64(meta_.validation_mape);
  e.f64(meta_.validation_p50);

  const auto tree = tree_.state();
  e.u64(tree.nodes.size());
  for (const auto& n : tree.nodes) {
    e.i64(n.left);
    e.i64(n.right);
    e.u64(n.feature);
    e.f64(n.threshold);
    e.f64(n.value);
  }

  const auto knn = knn_.state();
  e.u64(knn.config.k);
  e.boolean(knn.config.distance_weighted);
  e.u64(knn.dim);
  e.u64(knn.y.size());
  for (const double v : knn.x) e.f64(v);
  for (const double v : knn.y) e.f64(v);
  encode_scaling(e, knn.scaling);

  const auto flda = flda_.state();
  e.u64(flda.dim);
  encode_scaling(e, flda.scaling);
  e.u64(flda.discriminants.size());
  for (const double v : flda.discriminants) e.f64(v);
  e.u64(flda.class_means_y.size());
  for (const double v : flda.class_means_y) e.f64(v);
  for (const auto& centroid : flda.class_centroids) {
    e.u64(centroid.size());
    for (const double v : centroid) e.f64(v);
  }

  return stream::frame(kSnapshotMagic, e.data());
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::deserialize(
    std::string_view bytes) {
  std::size_t pos = 0;
  const auto payload = stream::unframe(kSnapshotMagic, bytes, pos);
  if (!payload)
    throw std::runtime_error(
        "ModelSnapshot: bad frame (wrong magic, truncated, or CRC mismatch)");
  if (pos != bytes.size())
    throw std::runtime_error("ModelSnapshot: trailing bytes after frame");

  stream::Decoder d(*payload);
  if (d.u64() != kPayloadVersion)
    throw std::runtime_error("ModelSnapshot: unsupported payload version");

  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  const std::uint64_t schema_hash = d.u64();
  const std::uint64_t name_count = d.u64();
  if (name_count == 0 || name_count > 1024) d.fail();
  for (std::uint64_t i = 0; d.ok() && i < name_count; ++i)
    snap->schema_.names.push_back(d.str());

  snap->meta_.version = d.u64();
  snap->meta_.trained_rows = d.u64();
  snap->meta_.train_seed = d.u64();
  snap->meta_.source_watermark = d.u64();
  snap->meta_.validation_mape = d.f64();
  snap->meta_.validation_p50 = d.f64();

  ml::DecisionTreeRegressor::State tree;
  const std::uint64_t node_count = d.u64();
  if (node_count > (1u << 26)) d.fail();
  for (std::uint64_t i = 0; d.ok() && i < node_count; ++i) {
    ml::DecisionTreeRegressor::Node n;
    n.left = static_cast<std::int32_t>(d.i64());
    n.right = static_cast<std::int32_t>(d.i64());
    n.feature = static_cast<std::uint16_t>(d.u64());
    n.threshold = d.f64();
    n.value = d.f64();
    tree.nodes.push_back(n);
  }

  ml::KnnRegressor::State knn;
  knn.config.k = d.u64();
  knn.config.distance_weighted = d.boolean();
  knn.dim = d.u64();
  const std::uint64_t knn_rows = d.u64();
  // Joint bound: a corrupt length must fail before it can allocate, and the
  // payload cannot hold more doubles than bytes anyway.
  if (knn.dim > (1u << 20) || knn_rows > (1u << 26) ||
      knn_rows * knn.dim > payload->size())
    d.fail();
  if (d.ok()) {
    knn.x.resize(knn_rows * knn.dim);
    knn.y.resize(knn_rows);
    for (auto& v : knn.x) v = d.f64();
    for (auto& v : knn.y) v = d.f64();
  }
  knn.scaling = decode_scaling(d);

  ml::FldaRegressor::State flda;
  flda.dim = d.u64();
  flda.scaling = decode_scaling(d);
  const std::uint64_t disc_count = d.u64();
  if (disc_count > (1u << 24) || disc_count > payload->size()) d.fail();
  if (d.ok()) {
    flda.discriminants.resize(disc_count);
    for (auto& v : flda.discriminants) v = d.f64();
  }
  const std::uint64_t class_count = d.u64();
  if (class_count > (1u << 16)) d.fail();
  if (d.ok()) {
    flda.class_means_y.resize(class_count);
    for (auto& v : flda.class_means_y) v = d.f64();
    for (std::uint64_t c = 0; d.ok() && c < class_count; ++c) {
      const std::uint64_t k = d.u64();
      if (k > (1u << 20)) d.fail();
      if (!d.ok()) break;
      std::vector<double> centroid(k);
      for (auto& v : centroid) v = d.f64();
      flda.class_centroids.push_back(std::move(centroid));
    }
  }

  if (!d.done())
    throw std::runtime_error(
        "ModelSnapshot: payload truncated or carries trailing bytes");
  if (snap->schema_.hash() != schema_hash)
    throw std::runtime_error("ModelSnapshot: feature schema hash mismatch");

  // ml-level restore validates the structural invariants and throws
  // std::invalid_argument; nothing was published yet, so a throw here still
  // leaves the caller snapshot-less rather than half-loaded.
  snap->tree_.restore(tree, snap->schema_.dim());
  snap->knn_.restore(knn);
  snap->flda_.restore(flda);
  if (knn.dim != snap->schema_.dim() || flda.dim != snap->schema_.dim())
    throw std::invalid_argument(
        "ModelSnapshot: model dimension does not match feature schema");
  return snap;
}

void ModelSnapshot::save_file(const std::string& path) const {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ModelSnapshot: cannot open " + tmp);
    const std::string bytes = serialize();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw std::runtime_error("ModelSnapshot: write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("ModelSnapshot: rename to " + path + " failed: " +
                             ec.message());
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::load_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ModelSnapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace hpcpower::serve

#include "serve/feature_store.hpp"

#include <algorithm>
#include <array>

namespace hpcpower::serve {

namespace {
/// splitmix64 finalizer: user ids are small dense integers, so identity
/// sharding would put every hot user cohort in neighbouring shards.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

FeatureStore::FeatureStore(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(std::max<std::size_t>(1, capacity_per_shard)) {
  std::size_t n = 1;
  while (n < std::max<std::size_t>(1, shards)) n <<= 1;
  mask_ = n - 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

FeatureStore::Shard& FeatureStore::shard_for(std::uint32_t user_id) const {
  return *shards_[mix(user_id) & mask_];
}

void FeatureStore::record(const Completion& c) {
  Shard& shard = shard_for(c.user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.recorded;
  shard.window.push_back(c);
  if (shard.window.size() > capacity_per_shard_) shard.window.pop_front();

  const auto it = std::lower_bound(
      shard.users.begin(), shard.users.end(), c.user_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.users.end() || it->first != c.user_id) {
    UserStats stats;
    stats.jobs = 1;
    stats.mean_power_w = c.node_power_w;
    stats.last_power_w = c.node_power_w;
    shard.users.insert(it, {c.user_id, stats});
  } else {
    UserStats& stats = it->second;
    ++stats.jobs;
    const double delta = c.node_power_w - stats.mean_power_w;
    stats.mean_power_w += delta / static_cast<double>(stats.jobs);
    stats.m2 += delta * (c.node_power_w - stats.mean_power_w);
    stats.last_power_w = c.node_power_w;
  }
}

std::size_t FeatureStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->window.size();
  }
  return total;
}

std::size_t FeatureStore::user_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->users.size();
  }
  return total;
}

std::uint64_t FeatureStore::recorded() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->recorded;
  }
  return total;
}

std::optional<UserStats> FeatureStore::user(std::uint32_t user_id) const {
  const Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = std::lower_bound(
      shard.users.begin(), shard.users.end(), user_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.users.end() || it->first != user_id) return std::nullopt;
  return it->second;
}

ml::Dataset FeatureStore::training_set(std::uint64_t* watermark) const {
  std::vector<Completion> rows;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    rows.insert(rows.end(), shard->window.begin(), shard->window.end());
  }
  std::sort(rows.begin(), rows.end(),
            [](const Completion& a, const Completion& b) {
              return a.job_id < b.job_id;
            });
  ml::Dataset data(3);
  std::uint64_t max_job = 0;
  for (const Completion& c : rows) {
    const std::array<double, 3> features = {
        static_cast<double>(c.user_id), static_cast<double>(c.nnodes),
        static_cast<double>(c.walltime_req_min)};
    data.add_row(features, c.node_power_w, c.user_id);
    max_job = std::max(max_job, c.job_id);
  }
  if (watermark != nullptr) *watermark = max_job;
  return data;
}

}  // namespace hpcpower::serve

#pragma once
// Bridge from the serving layer to the power manager's predictor interface:
// a ServedPredictor is a power::NodePowerPredictor whose answers come from
// whatever snapshot the PredictionService currently serves. Admission
// control therefore picks up warm retrains (version bumps) without the
// campaign loop knowing the model ever changed — and because each call is a
// pure function of (snapshot, job), a campaign run against a fixed snapshot
// stays bit-identical at any thread count, same as TreePredictor.

#include <memory>
#include <string>

#include "power/predictor.hpp"
#include "serve/service.hpp"

namespace hpcpower::serve {

class ServedPredictor final : public power::NodePowerPredictor {
 public:
  /// `fallback_w` (typically node TDP) covers the no-snapshot window and
  /// non-finite/non-positive model outputs, mirroring TreePredictor.
  ServedPredictor(std::shared_ptr<const PredictionService> service,
                  double fallback_w)
      : service_(std::move(service)), fallback_w_(fallback_w) {}

  [[nodiscard]] double predict_node_w(
      const workload::JobRequest& job) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const PredictionService> service_;
  double fallback_w_;
};

}  // namespace hpcpower::serve

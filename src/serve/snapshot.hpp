#pragma once
// Immutable versioned model snapshots: the unit of deployment of the
// prediction serving layer (service.hpp).
//
// A snapshot packages the paper's three fitted models (BDT / KNN / FLDA),
// the feature schema they were trained against, and the training metadata a
// rollback decision needs (version, row count, holdout validation errors).
// Snapshots are immutable after construction: the service swaps a
// shared_ptr<const ModelSnapshot>, readers never observe a half-updated
// model, and an old version stays alive until its last in-flight batch
// drops the reference.
//
// Durability uses the repo's one framing discipline (stream/codec.hpp, the
// .hpcb block rule): magic | u32 payload length | payload | CRC-32(payload),
// doubles as IEEE-754 bit patterns so a loaded snapshot predicts
// bit-identically to the one that was saved. Loading validates everything —
// frame, schema hash, per-model structural invariants (ml restore()) — and
// throws on the first inconsistency: a corrupt snapshot is rejected loudly,
// never half-loaded. save_file() writes tmp + rename so a torn write never
// shadows a previous good snapshot.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flda.hpp"
#include "ml/knn.hpp"

namespace hpcpower::serve {

/// Snapshot file/frame magic ("HPSN").
inline constexpr std::uint32_t kSnapshotMagic = 0x4E535048u;

/// The models a snapshot serves. kTree is the paper's best model (Fig 14)
/// and the service default.
enum class ModelKind : std::uint8_t { kTree = 0, kKnn = 1, kFlda = 2 };
[[nodiscard]] const char* model_kind_name(ModelKind m) noexcept;

/// Ordered feature names; the hash pins a snapshot to the exact schema the
/// feature store feeds, so a stale snapshot cannot silently consume
/// reordered or renamed features.
struct FeatureSchema {
  std::vector<std::string> names;

  [[nodiscard]] std::size_t dim() const noexcept { return names.size(); }
  /// FNV-1a over names with separators; stable across platforms.
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const FeatureSchema&, const FeatureSchema&) = default;
};

/// The paper's submission-time schema: (user id, nnodes, requested wall
/// time) — exactly what is known before a job executes (Sec 5, RQ9).
[[nodiscard]] FeatureSchema submission_schema();

/// Training provenance + holdout quality, carried inside the snapshot so the
/// drift detector and rollback check never depend on out-of-band state.
struct SnapshotMeta {
  std::uint64_t version = 0;        ///< monotone; bumped per retrain
  std::uint64_t trained_rows = 0;   ///< training-side rows
  std::uint64_t train_seed = 0;     ///< holdout split seed
  std::uint64_t source_watermark = 0;  ///< last completion folded in (job id)
  /// Holdout absolute-percent-error summary of the primary (BDT) model:
  /// mean and median. The median doubles as the drift baseline the rolling
  /// P-squared sketch is compared against.
  double validation_mape = 0.0;
  double validation_p50 = 0.0;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

struct SnapshotTrainConfig {
  std::uint64_t version = 1;
  std::uint64_t seed = 42;
  std::uint64_t source_watermark = 0;
  /// Training fraction of the 80/20 holdout used for validation_mape/p50.
  double train_fraction = 0.8;
  ml::DecisionTreeConfig tree;
  ml::KnnConfig knn;
  ml::FldaConfig flda;
};

class ModelSnapshot {
 public:
  /// Fits all three models on the train side of one deterministic split of
  /// `data` and records holdout errors in meta. Throws std::invalid_argument
  /// when `data` is empty or its dim mismatches `schema`.
  [[nodiscard]] static std::shared_ptr<const ModelSnapshot> train(
      const ml::Dataset& data, const FeatureSchema& schema,
      const SnapshotTrainConfig& config);

  /// Single-row prediction. Requires features.size() == schema().dim().
  [[nodiscard]] double predict(ModelKind model,
                               std::span<const double> features) const;

  [[nodiscard]] const FeatureSchema& schema() const noexcept { return schema_; }
  [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return meta_.version; }

  // ---- serialization ------------------------------------------------------

  /// The CRC-framed byte image (what save_file writes).
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(). Throws std::runtime_error on a bad frame
  /// (magic/length/CRC/trailing bytes) and std::invalid_argument on a payload
  /// that decodes but fails model validation. Never returns a partial
  /// snapshot.
  [[nodiscard]] static std::shared_ptr<const ModelSnapshot> deserialize(
      std::string_view bytes);

  /// Atomic save: writes `path`.tmp, flushes, renames. Throws
  /// std::runtime_error on I/O failure.
  void save_file(const std::string& path) const;
  /// Loads and fully validates a snapshot file. Same failure contract as
  /// deserialize(), plus std::runtime_error when the file cannot be read.
  [[nodiscard]] static std::shared_ptr<const ModelSnapshot> load_file(
      const std::string& path);

 private:
  ModelSnapshot() = default;

  FeatureSchema schema_;
  SnapshotMeta meta_;
  ml::DecisionTreeRegressor tree_;
  ml::KnnRegressor knn_;
  ml::FldaRegressor flda_;
};

}  // namespace hpcpower::serve

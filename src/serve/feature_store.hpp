#pragma once
// Sharded per-user feature store: the serving layer's online memory of who
// submits what and how much power it drew.
//
// Completions land in shards selected by a user-id hash, each behind its own
// mutex, so the "millions of users" update path scales with cores instead of
// serializing on one lock (the node-history-ring sharding rule from
// src/stream applied to users). Two kinds of state per shard:
//
//   * per-user running stats (job count, Welford mean/M2 of observed
//     per-node power, last power) — O(users) and never evicted;
//   * a bounded ring of recent completions (the warm-retraining window) —
//     drop-oldest per shard, so retraining memory is flat regardless of how
//     long the service runs.
//
// Determinism contract: training_set() materializes the retained completions
// sorted by job id, so the dataset handed to a retrain is identical no
// matter which threads recorded the completions in which interleaving —
// the same fixed-order rule every parallel reduction in this repo follows.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "ml/dataset.hpp"

namespace hpcpower::serve {

/// One finished job attempt, reduced to the serving layer's needs.
struct Completion {
  std::uint64_t job_id = 0;
  std::uint32_t user_id = 0;
  std::uint32_t nnodes = 1;
  std::uint32_t walltime_req_min = 60;
  /// Observed mean per-node power in watts (the prediction target).
  double node_power_w = 0.0;
};

struct UserStats {
  std::uint64_t jobs = 0;
  double mean_power_w = 0.0;
  double m2 = 0.0;  ///< Welford sum of squared deviations
  double last_power_w = 0.0;
};

class FeatureStore {
 public:
  /// `shards` is rounded up to a power of two (>= 1); `capacity_per_shard`
  /// bounds the retraining window (drop-oldest).
  explicit FeatureStore(std::size_t shards = 16,
                        std::size_t capacity_per_shard = 8192);

  /// Thread-safe: locks only the owning shard.
  void record(const Completion& c);

  /// Retained completions across all shards (<= shards * capacity).
  [[nodiscard]] std::size_t size() const;
  /// Distinct users seen.
  [[nodiscard]] std::size_t user_count() const;
  /// Total completions ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::optional<UserStats> user(std::uint32_t user_id) const;

  /// The retraining dataset over the paper's submission schema
  /// (user id, nnodes, walltime), rows sorted by job id — deterministic for
  /// any recording interleaving. Also returns the highest job id retained
  /// (the snapshot's source watermark) through `watermark` when non-null.
  [[nodiscard]] ml::Dataset training_set(
      std::uint64_t* watermark = nullptr) const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Completion> window;
    // Open addressing would be premature; std::vector keyed by sorted lookup
    // would churn — a plain map per shard keeps this simple and O(log u).
    std::vector<std::pair<std::uint32_t, UserStats>> users;  // sorted by id
    std::uint64_t recorded = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint32_t user_id) const;

  std::size_t capacity_per_shard_;
  std::size_t mask_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hpcpower::serve

#include "serve/service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace hpcpower::serve {

namespace {

/// Per-prediction latency bucket edges in microseconds. Sub-microsecond
/// predictions land in the first bucket; anything past 10ms is overflow.
constexpr std::array<double, 12> kLatencyEdgesUs = {
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    10000.0};
constexpr std::array<double, 8> kBatchRowEdges = {1.0,   8.0,   64.0,  256.0,
                                                 1024.0, 4096.0, 16384.0,
                                                 65536.0};

}  // namespace

PredictionService::PredictionService(ServiceConfig config)
    : config_(config),
      store_(config.feature_shards, config.store_capacity_per_shard),
      rolling_error_(config.drift_quantile),
      latency_us_(&obs::metrics().histogram("serve.latency.us",
                                            kLatencyEdgesUs)),
      batch_rows_(&obs::metrics().histogram("serve.batch.rows",
                                            kBatchRowEdges)) {
  if (config_.drift_threshold <= 1.0)
    throw std::invalid_argument(
        "PredictionService: drift_threshold must exceed 1");
  if (config_.rollback_tolerance < 1.0)
    throw std::invalid_argument(
        "PredictionService: rollback_tolerance must be >= 1");
}

void PredictionService::install(std::shared_ptr<const ModelSnapshot> snap) {
  if (!snap)
    throw std::invalid_argument("PredictionService::install: null snapshot");
  const std::lock_guard<std::mutex> drift_lock(drift_mutex_);
  install_locked(std::move(snap));
}

void PredictionService::install_locked(
    std::shared_ptr<const ModelSnapshot> snap) {
  // Caller holds drift_mutex_; the holder swap itself is the only step the
  // read path can contend on.
  const std::uint64_t version = snap->version();
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  rolling_error_ = stats::P2Quantile(config_.drift_quantile);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.installs;
  }
  obs::metrics().count("serve.snapshot.install");
  obs::metrics().gauge("serve.snapshot.version").set(
      static_cast<double>(version));
  // Monitoring-only typed health probe (DESIGN.md §6): a fresh install means
  // the serving path is on a validated snapshot again.
  obs::health().set("serve.model", obs::HealthStatus::kOk,
                    util::format("snapshot v%llu",
                                 static_cast<unsigned long long>(version)));
}

std::shared_ptr<const ModelSnapshot> PredictionService::snapshot() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

double PredictionService::predict(std::span<const double> features) const {
  const auto snap = snapshot();
  if (!snap)
    throw std::logic_error("PredictionService: no snapshot installed");
  if (features.size() != snap->schema().dim())
    throw std::invalid_argument(
        "PredictionService::predict: feature count does not match schema");
  const auto t0 = std::chrono::steady_clock::now();
  const double value = snap->predict(config_.primary, features);
  const auto dt = std::chrono::steady_clock::now() - t0;
  latency_us_->observe(
      std::chrono::duration<double, std::micro>(dt).count());
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.predictions;
  }
  obs::metrics().count("serve.predictions");
  return value;
}

void PredictionService::predict_batch(std::span<const double> features,
                                      std::span<double> out,
                                      std::optional<ModelKind> model) const {
  const auto snap = snapshot();  // captured ONCE: the batch's version
  if (!snap)
    throw std::logic_error("PredictionService: no snapshot installed");
  const std::size_t dim = snap->schema().dim();
  if (dim == 0 || features.size() % dim != 0)
    throw std::invalid_argument(
        "PredictionService::predict_batch: features not a multiple of dim");
  const std::size_t rows = features.size() / dim;
  if (out.size() != rows)
    throw std::invalid_argument(
        "PredictionService::predict_batch: output size mismatch");
  if (rows == 0) return;

  const ModelKind kind = model.value_or(config_.primary);
  const auto t0 = std::chrono::steady_clock::now();

  // Fixed-size blocks over disjoint output slots: the decomposition is a
  // function of `rows` alone, each slot is written exactly once, and every
  // prediction reads only the immutable snapshot — bit-identical at any
  // thread count (DESIGN.md §5).
  const std::size_t blocks = (rows + kBatchBlock - 1) / kBatchBlock;
  const ModelSnapshot& model_ref = *snap;
  util::parallel_for(blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBatchBlock;
    const std::size_t end = std::min(begin + kBatchBlock, rows);
    for (std::size_t r = begin; r < end; ++r)
      out[r] = model_ref.predict(kind, features.subspan(r * dim, dim));
  });

  const auto dt = std::chrono::steady_clock::now() - t0;
  latency_us_->observe(std::chrono::duration<double, std::micro>(dt).count() /
                       static_cast<double>(rows));
  batch_rows_->observe(static_cast<double>(rows));
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.predictions += rows;
    ++stats_.batches;
  }
  obs::metrics().count("serve.predictions", rows);
  obs::metrics().count("serve.batches");
}

std::vector<double> PredictionService::predict_batch(
    std::span<const double> features) const {
  const auto snap = snapshot();
  if (!snap)
    throw std::logic_error("PredictionService: no snapshot installed");
  const std::size_t dim = snap->schema().dim();
  if (dim == 0 || features.size() % dim != 0)
    throw std::invalid_argument(
        "PredictionService::predict_batch: features not a multiple of dim");
  std::vector<double> out(features.size() / dim);
  predict_batch(features, out);
  return out;
}

DriftAction PredictionService::observe_completion(const Completion& c) {
  store_.record(c);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.completions;
  }
  obs::metrics().count("serve.completions");

  const auto snap = snapshot();
  if (!snap) return DriftAction::kNone;
  const double baseline = snap->meta().validation_p50;
  if (!(baseline > 0.0)) return DriftAction::kNone;  // nothing to compare to

  const std::array<double, 3> features = {
      static_cast<double>(c.user_id), static_cast<double>(c.nnodes),
      static_cast<double>(c.walltime_req_min)};
  const double predicted = snap->predict(config_.primary, features);
  const double err = ml::absolute_percent_error(c.node_power_w, predicted);
  if (!std::isfinite(err)) return DriftAction::kNone;

  const std::lock_guard<std::mutex> drift_lock(drift_mutex_);
  // A concurrent install may have swapped versions since the error was
  // computed against `snap`; one stale observation in a fresh window is
  // noise, not a correctness problem.
  rolling_error_.add(err);
  if (rolling_error_.count() < config_.drift_min_observations)
    return DriftAction::kNone;

  const bool tripped = rolling_error_.value() > baseline * config_.drift_threshold;
  if (rolling_error_.count() >= config_.drift_window && !tripped)
    rolling_error_ = stats::P2Quantile(config_.drift_quantile);
  if (!tripped) return DriftAction::kNone;

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.drift_trips;
  }
  obs::metrics().count("serve.drift.trips");
  return retrain_locked(*snap);
}

DriftAction PredictionService::retrain_locked(const ModelSnapshot& current) {
  std::uint64_t watermark = 0;
  const ml::Dataset data = store_.training_set(&watermark);
  if (data.size() < config_.retrain_min_rows) {
    // Reset the window so the next trip needs fresh evidence instead of
    // re-firing on every completion.
    rolling_error_ = stats::P2Quantile(config_.drift_quantile);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.retrains_skipped;
    }
    obs::metrics().count("serve.retrain.skipped");
    return DriftAction::kSkipped;
  }

  SnapshotTrainConfig train = config_.retrain;
  train.version = current.version() + 1;
  train.seed = config_.retrain_seed + train.version;
  train.source_watermark = watermark;
  const auto candidate = ModelSnapshot::train(data, current.schema(), train);
  obs::metrics().count("serve.retrain");

  if (candidate->meta().validation_mape >
      current.meta().validation_mape * config_.rollback_tolerance) {
    rolling_error_ = stats::P2Quantile(config_.drift_quantile);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rollbacks;
    }
    obs::metrics().count("serve.rollback");
    // Degraded, not unhealthy: the service keeps answering from the current
    // snapshot, but drift evidence could not be retrained away.
    obs::health().set(
        "serve.model", obs::HealthStatus::kDegraded,
        util::format("drift retrain v%llu rolled back (validation regressed)",
                     static_cast<unsigned long long>(train.version)));
    return DriftAction::kRolledBack;
  }

  install_locked(candidate);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.retrains;
  }
  obs::metrics().count("serve.retrain.success");
  return DriftAction::kRetrained;
}

ServiceStats PredictionService::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace hpcpower::serve

#include "serve/adapter.hpp"

#include <array>
#include <cmath>

namespace hpcpower::serve {

double ServedPredictor::predict_node_w(const workload::JobRequest& job) const {
  if (!service_) return fallback_w_;
  const auto snap = service_->snapshot();
  if (!snap) return fallback_w_;
  const std::array<double, 3> features = {
      static_cast<double>(job.user_id), static_cast<double>(job.nnodes),
      static_cast<double>(job.walltime_req_min)};
  const double p = service_->predict(features);
  return std::isfinite(p) && p > 0.0 ? p : fallback_w_;
}

std::string ServedPredictor::name() const {
  if (!service_) return "served:fallback";
  return std::string("served:") +
         model_kind_name(service_->config().primary);
}

}  // namespace hpcpower::serve

#pragma once
// In-process low-latency prediction serving over immutable model snapshots.
//
// The serving contract, in order of importance:
//
//   1. Readers never block on writers. The live snapshot is a
//      shared_ptr<const ModelSnapshot> behind a tiny holder mutex; a predict
//      call copies the pointer once, so install() (hot-swap) only ever waits
//      for a pointer copy, and an in-flight batch keeps serving the version
//      it started with. Every batch therefore sees exactly one snapshot
//      version — never a mix — which is what the hot-swap concurrency test
//      pins down.
//   2. Batched inference is deterministic. A batch is cut into fixed
//      kBatchBlock-row blocks executed on the global pool; rows write to
//      disjoint output slots and each prediction is a pure function of
//      (snapshot, row), so results are bit-identical at 1/2/N threads and
//      identical to serial direct model calls (the PR 3 invariance rule).
//   3. Models stay fresh. Completed jobs feed a sharded per-user feature
//      store (feature_store.hpp) and a rolling error sketch (the P-squared
//      estimator); when the rolling median error exceeds the snapshot's own
//      holdout median by a configured factor, the service retrains from the
//      store, validates, and either installs version+1 or rolls back —
//      booking serve.retrain / serve.rollback so the run manifest reconciles
//      with ServiceStats exactly.
//
// Everything observable lands in serve.* metrics (counters, the snapshot
// version gauge, per-prediction latency histograms); wall-clock values obey
// the repo-wide rule of appearing only in manifests and traces, never in
// deterministic outputs.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "serve/feature_store.hpp"
#include "serve/snapshot.hpp"
#include "stats/streaming_quantile.hpp"

namespace hpcpower::obs {
class Histogram;
}

namespace hpcpower::serve {

/// Rows per deterministic batch block. Fixed (never derived from the thread
/// count) so the work decomposition — and with it any conceivable FP effect
/// — is invariant across configurations.
inline constexpr std::size_t kBatchBlock = 64;

struct ServiceConfig {
  /// Model served by predict()/predict_batch() default paths.
  ModelKind primary = ModelKind::kTree;
  std::size_t feature_shards = 16;
  std::size_t store_capacity_per_shard = 8192;

  // ---- drift detection / warm retraining ----------------------------------
  /// Quantile tracked by the rolling error sketch (0.5 = median, matching
  /// the snapshot's validation_p50 baseline).
  double drift_quantile = 0.5;
  /// Trip when rolling quantile > baseline * drift_threshold.
  double drift_threshold = 1.75;
  /// Observations required before the sketch is trusted.
  std::uint64_t drift_min_observations = 64;
  /// Sketch reset period: only the most recent window drives decisions.
  std::uint64_t drift_window = 512;
  /// Completions required in the store before a retrain is attempted.
  std::size_t retrain_min_rows = 256;
  /// A retrain validating worse than current * rollback_tolerance is
  /// discarded (the previous snapshot keeps serving).
  double rollback_tolerance = 1.05;
  /// Holdout seed for retrains (combined with the new version number, so
  /// every retrain is deterministic but distinct).
  std::uint64_t retrain_seed = 9177;
  SnapshotTrainConfig retrain;  ///< model hyperparameters for retrains
};

/// What observe_completion() did about drift, for callers that log/test.
enum class DriftAction : std::uint8_t {
  kNone = 0,       ///< no trip (or drift detection inactive)
  kSkipped = 1,    ///< tripped, but too few stored rows to retrain
  kRetrained = 2,  ///< tripped, retrain validated, new version installed
  kRolledBack = 3, ///< tripped, retrain validated worse, kept old version
};

/// Monotone event counts, mirrored 1:1 into serve.* counters so the run
/// manifest and this struct can never disagree.
struct ServiceStats {
  std::uint64_t predictions = 0;
  std::uint64_t batches = 0;
  std::uint64_t completions = 0;
  std::uint64_t installs = 0;
  std::uint64_t drift_trips = 0;
  std::uint64_t retrains = 0;        ///< successful installs from retrain
  std::uint64_t rollbacks = 0;
  std::uint64_t retrains_skipped = 0;

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

class PredictionService {
 public:
  explicit PredictionService(ServiceConfig config = {});

  /// Atomically publishes `snap` as the serving version. In-flight batches
  /// finish on the version they captured; new batches see `snap`. Resets the
  /// drift window (a fresh model owns a fresh error history).
  void install(std::shared_ptr<const ModelSnapshot> snap);

  /// The currently served snapshot (null before the first install).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Single-row prediction with the primary model. Throws std::logic_error
  /// before the first install, std::invalid_argument on a dim mismatch.
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Deterministic batched inference: `features` is row-major with
  /// schema().dim() columns, `out` must hold features.size()/dim slots.
  /// The whole batch is served by exactly one snapshot version.
  void predict_batch(std::span<const double> features, std::span<double> out,
                     std::optional<ModelKind> model = std::nullopt) const;
  [[nodiscard]] std::vector<double> predict_batch(
      std::span<const double> features) const;

  /// Feeds one completed job: updates the feature store and the rolling
  /// error sketch, and runs the drift -> retrain -> validate -> install or
  /// rollback pipeline when tripped. Deterministic given the completion
  /// order; callers that need bit-reproducible retrains feed completions
  /// from a single thread (the replay path), concurrent feeding is safe but
  /// order- (hence schedule-) dependent.
  DriftAction observe_completion(const Completion& c);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const FeatureStore& store() const noexcept { return store_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  void install_locked(std::shared_ptr<const ModelSnapshot> snap);
  DriftAction retrain_locked(const ModelSnapshot& current);

  ServiceConfig config_;
  FeatureStore store_;

  mutable std::mutex snapshot_mutex_;  ///< guards snapshot_ pointer only
  std::shared_ptr<const ModelSnapshot> snapshot_;

  std::mutex drift_mutex_;  ///< guards sketch + retrain pipeline
  stats::P2Quantile rolling_error_;

  mutable std::mutex stats_mutex_;
  mutable ServiceStats stats_;  ///< predict() is logically const

  obs::Histogram* latency_us_ = nullptr;     ///< per-prediction, batched path
  obs::Histogram* batch_rows_ = nullptr;
};

}  // namespace hpcpower::serve

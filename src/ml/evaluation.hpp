#pragma once
// Train/validate harness implementing the paper's evaluation protocol:
// 80/20 random splits repeated ten times, absolute-percent-error CDFs
// (Fig 14), and per-user mean error (Fig 15).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/regressor.hpp"
#include "stats/ecdf.hpp"

namespace hpcpower::ml {

struct EvaluationConfig {
  double train_fraction = 0.8;
  std::size_t repeats = 10;
  std::uint64_t seed = 42;
};

struct EvaluationResult {
  std::string model;
  /// Absolute percent errors pooled over all repeats' validation rows.
  std::vector<double> errors;
  /// Mean absolute percent error per user (pooled over repeats).
  std::map<std::uint32_t, double> per_user_mean_error;

  [[nodiscard]] stats::Ecdf error_cdf() const { return stats::Ecdf(errors); }
  [[nodiscard]] double mean_error() const;
  /// Fraction of predictions with error below `threshold` (e.g. 0.10).
  [[nodiscard]] double fraction_below(double threshold) const;
  /// Fraction of users whose mean error is below `threshold`.
  [[nodiscard]] double user_fraction_below(double threshold) const;
  [[nodiscard]] std::vector<double> per_user_errors() const;
};

/// Runs `factory()`-created models across the repeated splits.
/// The factory is invoked once per repeat (models must be re-fittable anyway,
/// but a fresh instance keeps repeats independent).
[[nodiscard]] EvaluationResult evaluate_model(
    const Dataset& data, const std::function<std::unique_ptr<Regressor>()>& factory,
    const EvaluationConfig& config);

/// Convenience: evaluates the paper's three models (BDT, KNN, FLDA) plus the
/// baselines, returning results keyed by model name.
[[nodiscard]] std::vector<EvaluationResult> evaluate_paper_models(
    const Dataset& data, const EvaluationConfig& config, bool include_baselines = false);

}  // namespace hpcpower::ml

#pragma once
// Baseline predictors used for ablations and sanity checks.

#include <unordered_map>

#include "ml/regressor.hpp"

namespace hpcpower::ml {

/// Predicts the global training mean; the floor any real model must beat.
class GlobalMeanRegressor final : public Regressor {
 public:
  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "GlobalMean"; }

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

/// Predicts the per-user training mean (falls back to the global mean for
/// unseen users). The paper's "users are monotonous" hypothesis (RQ7) in
/// model form - it fails because users are not monotonous.
class UserMeanRegressor final : public Regressor {
 public:
  /// `user_feature` is the column carrying the user id (default 0).
  explicit UserMeanRegressor(std::size_t user_feature = 0)
      : user_feature_(user_feature) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "UserMean"; }

 private:
  std::size_t user_feature_;
  double global_mean_ = 0.0;
  std::unordered_map<long long, double> user_mean_;
  bool fitted_ = false;
};

}  // namespace hpcpower::ml

#include "ml/baselines.hpp"

#include <cmath>
#include <stdexcept>

namespace hpcpower::ml {

void GlobalMeanRegressor::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("GlobalMeanRegressor: empty training set");
  double sum = 0.0;
  for (const double y : train.targets()) sum += y;
  mean_ = sum / static_cast<double>(train.size());
  fitted_ = true;
}

double GlobalMeanRegressor::predict(std::span<const double>) const {
  if (!fitted_) throw std::logic_error("GlobalMeanRegressor: predict before fit");
  return mean_;
}

void UserMeanRegressor::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("UserMeanRegressor: empty training set");
  if (user_feature_ >= train.dim())
    throw std::invalid_argument("UserMeanRegressor: user feature out of range");
  user_mean_.clear();
  std::unordered_map<long long, std::size_t> counts;
  double sum = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto user = static_cast<long long>(std::llround(train.row(i)[user_feature_]));
    user_mean_[user] += train.target(i);
    ++counts[user];
    sum += train.target(i);
  }
  for (auto& [user, total] : user_mean_)
    total /= static_cast<double>(counts[user]);
  global_mean_ = sum / static_cast<double>(train.size());
  fitted_ = true;
}

double UserMeanRegressor::predict(std::span<const double> features) const {
  if (!fitted_) throw std::logic_error("UserMeanRegressor: predict before fit");
  const auto user = static_cast<long long>(std::llround(features[user_feature_]));
  const auto it = user_mean_.find(user);
  return it != user_mean_.end() ? it->second : global_mean_;
}

}  // namespace hpcpower::ml

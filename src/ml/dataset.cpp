#include "ml/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/strings.hpp"

namespace hpcpower::ml {

void Dataset::add_row(std::span<const double> features, double target,
                      std::uint32_t group) {
  if (dim_ == 0) dim_ = features.size();
  if (features.size() != dim_)
    throw std::invalid_argument("Dataset::add_row: feature dimension mismatch");
  x_.insert(x_.end(), features.begin(), features.end());
  y_.push_back(target);
  group_.push_back(group);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(dim_);
  out.x_.reserve(indices.size() * dim_);
  out.y_.reserve(indices.size());
  out.group_.reserve(indices.size());
  for (const std::size_t i : indices) {
    assert(i < size());
    const auto r = row(i);
    out.x_.insert(out.x_.end(), r.begin(), r.end());
    out.y_.push_back(y_[i]);
    out.group_.push_back(group_[i]);
  }
  return out;
}

Dataset::Scaling Dataset::compute_scaling() const {
  Scaling s;
  s.mean.assign(dim_, 0.0);
  s.stddev.assign(dim_, 1.0);
  if (empty()) return s;
  const auto n = static_cast<double>(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    for (std::size_t d = 0; d < dim_; ++d) s.mean[d] += r[d];
  }
  for (double& m : s.mean) m /= n;
  std::vector<double> var(dim_, 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = r[d] - s.mean[d];
      var[d] += diff * diff;
    }
  }
  for (std::size_t d = 0; d < dim_; ++d)
    s.stddev[d] = std::max(std::sqrt(var[d] / n), 1e-9);
  return s;
}

Split make_split(const Dataset& data, double train_fraction, util::Rng& rng) {
  if (data.empty()) throw std::invalid_argument("make_split: empty dataset");
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("make_split: train_fraction must be in (0,1)");

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  const auto n_train = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(data.size())));
  Split split;
  split.train.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_train));
  split.validation.assign(order.begin() + static_cast<std::ptrdiff_t>(n_train),
                          order.end());

  // Enforce user coverage: validation rows from users unseen in training move
  // to the training side.
  std::unordered_set<std::uint32_t> train_users;
  train_users.reserve(split.train.size());
  for (const std::size_t i : split.train) train_users.insert(data.group(i));
  std::vector<std::size_t> kept;
  kept.reserve(split.validation.size());
  for (const std::size_t i : split.validation) {
    if (train_users.contains(data.group(i))) {
      kept.push_back(i);
    } else {
      split.train.push_back(i);
      train_users.insert(data.group(i));
    }
  }
  split.validation = std::move(kept);
  return split;
}

std::vector<Split> make_repeated_splits(const Dataset& data, double train_fraction,
                                        std::size_t repeats, std::uint64_t seed) {
  std::vector<Split> out;
  out.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Rng rng(util::derive_stream(seed, util::format("split-%zu", r)));
    out.push_back(make_split(data, train_fraction, rng));
  }
  return out;
}

double absolute_percent_error(double actual, double predicted) noexcept {
  if (actual == 0.0) return predicted == 0.0 ? 0.0 : 1.0;
  return std::abs(predicted - actual) / std::abs(actual);
}

}  // namespace hpcpower::ml

#include "ml/random_forest.hpp"

#include <stdexcept>

#include "util/prng.hpp"

namespace hpcpower::ml {

void RandomForestRegressor::fit(const Dataset& train) {
  if (train.empty())
    throw std::invalid_argument("RandomForestRegressor: empty training set");
  if (config_.num_trees == 0)
    throw std::invalid_argument("RandomForestRegressor: need at least one tree");
  trees_.clear();
  trees_.reserve(config_.num_trees);

  const auto sample_size = static_cast<std::size_t>(
      std::max(1.0, config_.sample_fraction * static_cast<double>(train.size())));
  util::Rng rng(util::derive_stream(config_.seed, "random-forest"));
  std::vector<std::size_t> indices(sample_size);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    for (auto& idx : indices) idx = rng.uniform_index(train.size());
    const Dataset bootstrap = train.subset(indices);
    DecisionTreeRegressor tree(config_.tree);
    tree.fit(bootstrap);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::predict(std::span<const double> features) const {
  if (trees_.empty())
    throw std::logic_error("RandomForestRegressor: predict before fit");
  double sum = 0.0;
  for (const DecisionTreeRegressor& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace hpcpower::ml

#pragma once
// Bagged decision-tree ensemble (random forest regression).
//
// Not one of the paper's three models: included as an extension ablation.
// The paper argues a single lightweight tree suffices for three features;
// the forest quantifies how little an ensemble adds in that regime (see
// bench_ablation_features).

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace hpcpower::ml {

struct RandomForestConfig {
  std::size_t num_trees = 20;
  /// Bootstrap sample fraction per tree. Plain bagging: with only three
  /// features, per-split feature subsetting decorrelates little and hurts.
  double sample_fraction = 1.0;
  DecisionTreeConfig tree;
  std::uint64_t seed = 42;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(RandomForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "RandomForest"; }

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace hpcpower::ml

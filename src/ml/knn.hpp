#pragma once
// K-nearest-neighbour regression on z-scored features.
//
// The paper's KNN sits between FLDA and BDT in Fig 14: its Euclidean metric
// mixes neighbouring user ids and job scales, so "small distance" does not
// always mean "same job template".

#include <vector>

#include "ml/regressor.hpp"

namespace hpcpower::ml {

struct KnnConfig {
  std::size_t k = 5;
  /// Inverse-distance weighting of the k neighbours (uniform otherwise).
  bool distance_weighted = true;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

 private:
  KnnConfig config_;
  std::size_t dim_ = 0;
  std::vector<double> x_;  // z-scored training features, row major
  std::vector<double> y_;
  Dataset::Scaling scaling_;
};

}  // namespace hpcpower::ml

#pragma once
// K-nearest-neighbour regression on z-scored features.
//
// The paper's KNN sits between FLDA and BDT in Fig 14: its Euclidean metric
// mixes neighbouring user ids and job scales, so "small distance" does not
// always mean "same job template".

#include <vector>

#include "ml/regressor.hpp"

namespace hpcpower::ml {

struct KnnConfig {
  std::size_t k = 5;
  /// Inverse-distance weighting of the k neighbours (uniform otherwise).
  bool distance_weighted = true;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

  /// Complete fitted state (training rows are the model), for model
  /// snapshots (serve/snapshot.hpp). Includes the config because k and the
  /// weighting mode change predict(), not just fit().
  struct State {
    KnnConfig config;
    std::size_t dim = 0;
    std::vector<double> x;  ///< z-scored features, row major
    std::vector<double> y;
    Dataset::Scaling scaling;
  };
  [[nodiscard]] State state() const { return {config_, dim_, x_, y_, scaling_}; }
  /// Throws std::invalid_argument on an inconsistent state (size mismatches,
  /// k == 0, non-positive stddev), leaving the model untouched.
  void restore(const State& s);

 private:
  KnnConfig config_;
  std::size_t dim_ = 0;
  std::vector<double> x_;  // z-scored training features, row major
  std::vector<double> y_;
  Dataset::Scaling scaling_;
};

}  // namespace hpcpower::ml

#pragma once
// CART regression tree ("Binary Decision Tree" in the paper, its best model).
//
// Axis-aligned binary splits chosen to maximize the reduction of the sum of
// squared errors; exact split search over sorted feature values. With the
// three pre-execution features the tree effectively learns the (user, nodes,
// wall time) -> template power mapping, which is why it wins in Fig 14.

#include <cstdint>
#include <vector>

#include "ml/regressor.hpp"

namespace hpcpower::ml {

struct DecisionTreeConfig {
  std::uint32_t max_depth = 24;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Minimum SSE reduction (absolute) required to keep a split.
  double min_impurity_decrease = 1e-7;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  struct Node {
    // Internal nodes: feature/threshold and child links; leaves: value.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint16_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  explicit DecisionTreeRegressor(DecisionTreeConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "BDT"; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept;

  /// Complete fitted state, for model snapshots (serve/snapshot.hpp).
  /// Restoring the same state reproduces predict() bit-identically.
  struct State {
    std::vector<Node> nodes;
  };
  [[nodiscard]] State state() const { return {nodes_}; }
  /// Validates structural invariants (children in range and strictly after
  /// their parent, so the tree is acyclic with root 0; leaves have no
  /// children; every feature index < `dim`). Throws std::invalid_argument on
  /// any violation, leaving the model untouched — a corrupt snapshot must
  /// fail loudly, never half-load.
  void restore(const State& s, std::size_t dim);

 private:
  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, std::uint32_t depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::uint32_t depth_ = 0;
};

}  // namespace hpcpower::ml

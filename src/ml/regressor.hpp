#pragma once
// Common interface of the paper's prediction models.

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"

namespace hpcpower::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset. Implementations must be re-fittable (a second
  /// call replaces the previous model).
  virtual void fit(const Dataset& train) = 0;

  /// Predicts the target for one feature row. Requires a prior fit().
  [[nodiscard]] virtual double predict(std::span<const double> features) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hpcpower::ml

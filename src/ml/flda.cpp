#include "ml/flda.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "linalg/eigen.hpp"

namespace hpcpower::ml {

void FldaRegressor::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("FldaRegressor: empty training set");
  if (config_.num_classes < 2)
    throw std::invalid_argument("FldaRegressor: need at least 2 classes");
  dim_ = train.dim();
  scaling_ = train.compute_scaling();
  const std::size_t n = train.size();

  // Equal-frequency binning of the target into classes.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return train.target(a) < train.target(b);
  });
  const std::size_t classes = std::min(config_.num_classes, n);
  std::vector<std::size_t> label(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    label[order[pos]] = std::min(classes - 1, pos * classes / n);

  // Z-scored features.
  std::vector<double> z(n * dim_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = train.row(i);
    for (std::size_t d = 0; d < dim_; ++d)
      z[i * dim_ + d] = (r[d] - scaling_.mean[d]) / scaling_.stddev[d];
  }

  // Class means / counts and the global mean.
  std::vector<linalg::Vector> mean_c(classes, linalg::Vector(dim_, 0.0));
  std::vector<std::size_t> count_c(classes, 0);
  linalg::Vector mean_all(dim_, 0.0);
  class_means_y_.assign(classes, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = label[i];
    ++count_c[c];
    class_means_y_[c] += train.target(i);
    for (std::size_t d = 0; d < dim_; ++d) {
      mean_c[c][d] += z[i * dim_ + d];
      mean_all[d] += z[i * dim_ + d];
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    const double cnt = std::max<double>(1.0, static_cast<double>(count_c[c]));
    class_means_y_[c] /= cnt;
    for (double& v : mean_c[c]) v /= cnt;
  }
  for (double& v : mean_all) v /= static_cast<double>(n);

  // Scatter matrices.
  linalg::Matrix sw(dim_, dim_), sb(dim_, dim_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = label[i];
    for (std::size_t a = 0; a < dim_; ++a) {
      const double da = z[i * dim_ + a] - mean_c[c][a];
      for (std::size_t b = a; b < dim_; ++b) {
        const double db = z[i * dim_ + b] - mean_c[c][b];
        sw(a, b) += da * db;
      }
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    const auto cnt = static_cast<double>(count_c[c]);
    for (std::size_t a = 0; a < dim_; ++a) {
      const double da = mean_c[c][a] - mean_all[a];
      for (std::size_t b = a; b < dim_; ++b) {
        const double db = mean_c[c][b] - mean_all[b];
        sb(a, b) += cnt * da * db;
      }
    }
  }
  for (std::size_t a = 0; a < dim_; ++a)
    for (std::size_t b = 0; b < a; ++b) {
      sw(a, b) = sw(b, a);
      sb(a, b) = sb(b, a);
    }
  for (std::size_t d = 0; d < dim_; ++d)
    sw(d, d) += config_.regularization * static_cast<double>(n);

  // Fisher directions: top eigenvectors of Sb v = lambda Sw v.
  const auto eig = linalg::eigen_generalized(sb, sw);
  if (!eig) throw std::runtime_error("FldaRegressor: within-class scatter not SPD");
  const std::size_t n_disc = std::min(dim_, classes - 1);
  discriminants_.assign(n_disc * dim_, 0.0);
  for (std::size_t k = 0; k < n_disc; ++k)
    for (std::size_t d = 0; d < dim_; ++d)
      discriminants_[k * dim_ + d] = eig->vectors(d, k);

  // Projected class centroids.
  class_centroids_.assign(classes, std::vector<double>(n_disc, 0.0));
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t k = 0; k < n_disc; ++k) {
      double dot = 0.0;
      for (std::size_t d = 0; d < dim_; ++d)
        dot += discriminants_[k * dim_ + d] * mean_c[c][d];
      class_centroids_[c][k] = dot;
    }
}

void FldaRegressor::restore(const State& s) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("FldaRegressor::restore: ") + what);
  };
  if (s.dim == 0) fail("feature dimension is zero");
  if (s.class_means_y.empty()) fail("no classes");
  if (s.class_centroids.size() != s.class_means_y.size())
    fail("centroid/class count mismatch");
  if (s.scaling.mean.size() != s.dim || s.scaling.stddev.size() != s.dim)
    fail("scaling dimension mismatch");
  for (const double sd : s.scaling.stddev)
    if (!(sd > 0.0) || !std::isfinite(sd)) fail("non-positive scaling stddev");
  if (s.discriminants.size() % s.dim != 0) fail("discriminant matrix size mismatch");
  const std::size_t n_disc = s.discriminants.size() / s.dim;
  if (n_disc == 0 || n_disc > s.dim) fail("discriminant count out of range");
  for (const auto& c : s.class_centroids)
    if (c.size() != n_disc) fail("centroid dimension mismatch");
  dim_ = s.dim;
  scaling_ = s.scaling;
  discriminants_ = s.discriminants;
  class_centroids_ = s.class_centroids;
  class_means_y_ = s.class_means_y;
}

std::vector<double> FldaRegressor::project(std::span<const double> z) const {
  const std::size_t n_disc = num_discriminants();
  std::vector<double> out(n_disc, 0.0);
  for (std::size_t k = 0; k < n_disc; ++k) {
    double dot = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) dot += discriminants_[k * dim_ + d] * z[d];
    out[k] = dot;
  }
  return out;
}

double FldaRegressor::predict(std::span<const double> features) const {
  if (class_means_y_.empty()) throw std::logic_error("FldaRegressor: predict before fit");
  if (features.size() != dim_)
    throw std::invalid_argument("FldaRegressor: feature dimension mismatch");
  std::vector<double> z(dim_);
  for (std::size_t d = 0; d < dim_; ++d)
    z[d] = (features[d] - scaling_.mean[d]) / scaling_.stddev[d];
  const std::vector<double> p = project(z);

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_class = 0;
  for (std::size_t c = 0; c < class_centroids_.size(); ++c) {
    double d2 = 0.0;
    for (std::size_t k = 0; k < p.size(); ++k) {
      const double diff = p[k] - class_centroids_[c][k];
      d2 += diff * diff;
    }
    if (d2 < best) {
      best = d2;
      best_class = c;
    }
  }
  return class_means_y_[best_class];
}

}  // namespace hpcpower::ml

#include "ml/evaluation.hpp"

#include <memory>

#include "ml/baselines.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flda.hpp"
#include "ml/knn.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"
#include "util/parallel.hpp"

namespace hpcpower::ml {

double EvaluationResult::mean_error() const { return stats::mean(errors); }

double EvaluationResult::fraction_below(double threshold) const {
  if (errors.empty()) return 0.0;
  std::size_t below = 0;
  for (const double e : errors) below += (e < threshold);
  return static_cast<double>(below) / static_cast<double>(errors.size());
}

double EvaluationResult::user_fraction_below(double threshold) const {
  if (per_user_mean_error.empty()) return 0.0;
  std::size_t below = 0;
  for (const auto& [user, err] : per_user_mean_error) below += (err < threshold);
  return static_cast<double>(below) / static_cast<double>(per_user_mean_error.size());
}

std::vector<double> EvaluationResult::per_user_errors() const {
  std::vector<double> out;
  out.reserve(per_user_mean_error.size());
  for (const auto& [user, err] : per_user_mean_error) out.push_back(err);
  return out;
}

EvaluationResult evaluate_model(
    const Dataset& data, const std::function<std::unique_ptr<Regressor>()>& factory,
    const EvaluationConfig& config) {
  HPCPOWER_SPAN("ml.evaluate");
  EvaluationResult result;
  const auto splits =
      make_repeated_splits(data, config.train_fraction, config.repeats, config.seed);

  // Cross-validation folds are independent: each split already carries its
  // own PRNG stream keyed by the fold index (see make_repeated_splits), so
  // folds run concurrently into per-fold slots and reduce in fold order —
  // results are bit-identical at every thread count (DESIGN.md §5).
  struct FoldResult {
    std::string model;
    std::vector<double> errors;
    std::map<std::uint32_t, double> user_error_sum;
    std::map<std::uint32_t, std::size_t> user_error_count;
  };
  std::vector<FoldResult> folds(splits.size());
  util::parallel_for(splits.size(), [&](std::size_t f) {
    HPCPOWER_SPAN("ml.fold");
    const Split& split = splits[f];
    FoldResult& fold = folds[f];
    const Dataset train = data.subset(split.train);
    auto model = factory();
    fold.model = model->name();
    model->fit(train);
    fold.errors.reserve(split.validation.size());
    for (const std::size_t i : split.validation) {
      const double predicted = model->predict(data.row(i));
      const double err = absolute_percent_error(data.target(i), predicted);
      fold.errors.push_back(err);
      fold.user_error_sum[data.group(i)] += err;
      ++fold.user_error_count[data.group(i)];
    }
  });

  std::map<std::uint32_t, double> user_error_sum;
  std::map<std::uint32_t, std::size_t> user_error_count;
  for (FoldResult& fold : folds) {
    if (result.model.empty()) result.model = std::move(fold.model);
    result.errors.insert(result.errors.end(), fold.errors.begin(), fold.errors.end());
    for (const auto& [user, sum] : fold.user_error_sum) user_error_sum[user] += sum;
    for (const auto& [user, count] : fold.user_error_count)
      user_error_count[user] += count;
  }

  for (const auto& [user, total] : user_error_sum)
    result.per_user_mean_error[user] = total / static_cast<double>(user_error_count[user]);
  return result;
}

std::vector<EvaluationResult> evaluate_paper_models(const Dataset& data,
                                                    const EvaluationConfig& config,
                                                    bool include_baselines) {
  std::vector<EvaluationResult> out;
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<DecisionTreeRegressor>(); }, config));
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<KnnRegressor>(); }, config));
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<FldaRegressor>(); }, config));
  if (include_baselines) {
    out.push_back(evaluate_model(
        data, [] { return std::make_unique<UserMeanRegressor>(); }, config));
    out.push_back(evaluate_model(
        data, [] { return std::make_unique<GlobalMeanRegressor>(); }, config));
  }
  return out;
}

}  // namespace hpcpower::ml

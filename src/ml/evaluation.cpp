#include "ml/evaluation.hpp"

#include <memory>

#include "ml/baselines.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flda.hpp"
#include "ml/knn.hpp"
#include "stats/descriptive.hpp"

namespace hpcpower::ml {

double EvaluationResult::mean_error() const { return stats::mean(errors); }

double EvaluationResult::fraction_below(double threshold) const {
  if (errors.empty()) return 0.0;
  std::size_t below = 0;
  for (const double e : errors) below += (e < threshold);
  return static_cast<double>(below) / static_cast<double>(errors.size());
}

double EvaluationResult::user_fraction_below(double threshold) const {
  if (per_user_mean_error.empty()) return 0.0;
  std::size_t below = 0;
  for (const auto& [user, err] : per_user_mean_error) below += (err < threshold);
  return static_cast<double>(below) / static_cast<double>(per_user_mean_error.size());
}

std::vector<double> EvaluationResult::per_user_errors() const {
  std::vector<double> out;
  out.reserve(per_user_mean_error.size());
  for (const auto& [user, err] : per_user_mean_error) out.push_back(err);
  return out;
}

EvaluationResult evaluate_model(
    const Dataset& data, const std::function<std::unique_ptr<Regressor>()>& factory,
    const EvaluationConfig& config) {
  EvaluationResult result;
  const auto splits =
      make_repeated_splits(data, config.train_fraction, config.repeats, config.seed);

  std::map<std::uint32_t, double> user_error_sum;
  std::map<std::uint32_t, std::size_t> user_error_count;

  for (const Split& split : splits) {
    const Dataset train = data.subset(split.train);
    auto model = factory();
    if (result.model.empty()) result.model = model->name();
    model->fit(train);
    for (const std::size_t i : split.validation) {
      const double predicted = model->predict(data.row(i));
      const double err = absolute_percent_error(data.target(i), predicted);
      result.errors.push_back(err);
      user_error_sum[data.group(i)] += err;
      ++user_error_count[data.group(i)];
    }
  }

  for (const auto& [user, total] : user_error_sum)
    result.per_user_mean_error[user] = total / static_cast<double>(user_error_count[user]);
  return result;
}

std::vector<EvaluationResult> evaluate_paper_models(const Dataset& data,
                                                    const EvaluationConfig& config,
                                                    bool include_baselines) {
  std::vector<EvaluationResult> out;
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<DecisionTreeRegressor>(); }, config));
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<KnnRegressor>(); }, config));
  out.push_back(evaluate_model(
      data, [] { return std::make_unique<FldaRegressor>(); }, config));
  if (include_baselines) {
    out.push_back(evaluate_model(
        data, [] { return std::make_unique<UserMeanRegressor>(); }, config));
    out.push_back(evaluate_model(
        data, [] { return std::make_unique<GlobalMeanRegressor>(); }, config));
  }
  return out;
}

}  // namespace hpcpower::ml

#pragma once
// Tabular dataset and the paper's evaluation splits.
//
// Features for power prediction are exactly the three quantities available
// *before* a job executes: user id, number of nodes, requested wall time
// (Sec 5, RQ9). Targets are per-node power in watts.

#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.hpp"

namespace hpcpower::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t dim) : dim_(dim) {}

  void add_row(std::span<const double> features, double target, std::uint32_t group);

  [[nodiscard]] std::size_t size() const noexcept { return y_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return y_.empty(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {x_.data() + i * dim_, dim_};
  }
  [[nodiscard]] double target(std::size_t i) const noexcept { return y_[i]; }
  /// Grouping key (user id) used by group-aware splitting and per-user error.
  [[nodiscard]] std::uint32_t group(std::size_t i) const noexcept { return group_[i]; }
  [[nodiscard]] const std::vector<double>& targets() const noexcept { return y_; }

  /// Subset by row indices.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Per-feature mean/stddev (stddev floored at a tiny epsilon).
  struct Scaling {
    std::vector<double> mean;
    std::vector<double> stddev;
  };
  [[nodiscard]] Scaling compute_scaling() const;

 private:
  std::size_t dim_ = 0;
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<std::uint32_t> group_;
};

/// One train/validation split (row indices into the source dataset).
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// The paper's protocol: 80/20 random split, repeated; any validation row
/// whose user is absent from the training side is moved to training (the
/// system cannot predict users it has never seen).
[[nodiscard]] Split make_split(const Dataset& data, double train_fraction,
                               util::Rng& rng);

[[nodiscard]] std::vector<Split> make_repeated_splits(const Dataset& data,
                                                      double train_fraction,
                                                      std::size_t repeats,
                                                      std::uint64_t seed);

/// |predicted - actual| / actual (the paper's absolute prediction error).
[[nodiscard]] double absolute_percent_error(double actual, double predicted) noexcept;

}  // namespace hpcpower::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace hpcpower::ml {

namespace {
struct BestSplit {
  double gain = 0.0;
  std::uint16_t feature = 0;
  double threshold = 0.0;
  bool found = false;
};

/// Exact best split of rows [begin, end) of `indices` for one feature:
/// sort by feature value, scan prefix sums of targets.
void consider_feature(const Dataset& data, std::vector<std::size_t>& indices,
                      std::size_t begin, std::size_t end, std::uint16_t feature,
                      std::size_t min_leaf, BestSplit& best) {
  const std::size_t n = end - begin;
  std::sort(indices.begin() + static_cast<std::ptrdiff_t>(begin),
            indices.begin() + static_cast<std::ptrdiff_t>(end),
            [&](std::size_t a, std::size_t b) {
              return data.row(a)[feature] < data.row(b)[feature];
            });

  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i) total += data.target(indices[i]);

  // SSE(parent) - SSE(children) = sum_l^2/n_l + sum_r^2/n_r - sum^2/n.
  const double parent_term = total * total / static_cast<double>(n);
  double left_sum = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += data.target(indices[begin + i]);
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    // Only split between distinct feature values.
    const double v = data.row(indices[begin + i])[feature];
    const double v_next = data.row(indices[begin + i + 1])[feature];
    if (v == v_next) continue;
    if (n_left < min_leaf || n_right < min_leaf) continue;
    const double right_sum = total - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(n_left) +
                        right_sum * right_sum / static_cast<double>(n_right) -
                        parent_term;
    if (gain > best.gain) {
      best.gain = gain;
      best.feature = feature;
      best.threshold = 0.5 * (v + v_next);
      best.found = true;
    }
  }
}
}  // namespace

void DecisionTreeRegressor::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("DecisionTreeRegressor: empty training set");
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);
  nodes_.reserve(2 * train.size() / std::max<std::size_t>(config_.min_samples_leaf, 1));
  (void)build(train, indices, 0, indices.size(), 0);
}

std::int32_t DecisionTreeRegressor::build(const Dataset& data,
                                          std::vector<std::size_t>& indices,
                                          std::size_t begin, std::size_t end,
                                          std::uint32_t depth) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += data.target(indices[i]);
  const double mean = sum / static_cast<double>(n);

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || n < config_.min_samples_split) return make_leaf();

  BestSplit best;
  best.gain = config_.min_impurity_decrease;
  for (std::uint16_t f = 0; f < static_cast<std::uint16_t>(data.dim()); ++f)
    consider_feature(data, indices, begin, end, f, config_.min_samples_leaf, best);
  if (!best.found) return make_leaf();

  // Partition rows around the winning threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return data.row(i)[best.feature] <= best.threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // numeric degenerate

  const auto self = static_cast<std::int32_t>(nodes_.size());
  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.value = mean;
  nodes_.push_back(node);

  const std::int32_t left = build(data, indices, begin, mid, depth + 1);
  const std::int32_t right = build(data, indices, mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

double DecisionTreeRegressor::predict(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTreeRegressor: predict before fit");
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.is_leaf()) return node.value;
    idx = static_cast<std::size_t>(features[node.feature] <= node.threshold
                                       ? node.left
                                       : node.right);
  }
}

void DecisionTreeRegressor::restore(const State& s, std::size_t dim) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("DecisionTreeRegressor::restore: ") +
                                what);
  };
  if (s.nodes.empty()) fail("empty node table");
  if (dim == 0) fail("feature dimension is zero");
  const auto n = static_cast<std::int32_t>(s.nodes.size());
  std::uint32_t max_depth = 0;
  // Children strictly after their parent makes the table acyclic with root 0
  // (the invariant fit() produces); depth is recomputed, not trusted.
  std::vector<std::uint32_t> depth_of(s.nodes.size(), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    const Node& node = s.nodes[static_cast<std::size_t>(i)];
    if (node.is_leaf()) {
      if (node.right >= 0) fail("leaf with a right child");
      continue;
    }
    if (node.right < 0) fail("internal node missing a right child");
    if (node.left <= i || node.left >= n || node.right <= i || node.right >= n)
      fail("child index out of range or not after its parent");
    if (static_cast<std::size_t>(node.feature) >= dim)
      fail("split feature index out of range");
    if (!std::isfinite(node.threshold)) fail("non-finite split threshold");
    const std::uint32_t d = depth_of[static_cast<std::size_t>(i)] + 1;
    depth_of[static_cast<std::size_t>(node.left)] = d;
    depth_of[static_cast<std::size_t>(node.right)] = d;
    max_depth = std::max(max_depth, d);
  }
  nodes_ = s.nodes;
  depth_ = max_depth;
}

std::size_t DecisionTreeRegressor::leaf_count() const noexcept {
  std::size_t leaves = 0;
  for (const Node& n : nodes_) leaves += n.is_leaf();
  return leaves;
}

}  // namespace hpcpower::ml

#pragma once
// Fisher's Linear Discriminant Analysis, adapted to regression by
// discretizing power into classes (the paper's third model).
//
// Targets are binned into equal-frequency classes; Fisher directions are the
// generalized eigenvectors of (between-class scatter, within-class scatter);
// prediction projects a feature row into discriminant space, picks the
// nearest class centroid, and returns that class's mean power. A linear
// method like this cannot carve up Emmy's many-user feature space (Fig 14's
// finding), which is exactly the behaviour this implementation reproduces.

#include <vector>

#include "linalg/matrix.hpp"
#include "ml/regressor.hpp"

namespace hpcpower::ml {

struct FldaConfig {
  std::size_t num_classes = 12;
  /// Tikhonov regularization added to the within-class scatter diagonal.
  double regularization = 1e-6;
};

class FldaRegressor final : public Regressor {
 public:
  explicit FldaRegressor(FldaConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "FLDA"; }

  [[nodiscard]] std::size_t num_classes() const noexcept { return class_means_y_.size(); }
  [[nodiscard]] std::size_t num_discriminants() const noexcept {
    return discriminants_.empty() ? 0 : discriminants_.size() / dim_;
  }

  /// Complete fitted state, for model snapshots (serve/snapshot.hpp).
  struct State {
    std::size_t dim = 0;
    Dataset::Scaling scaling;
    std::vector<double> discriminants;               ///< n_disc x dim, row major
    std::vector<std::vector<double>> class_centroids;
    std::vector<double> class_means_y;
  };
  [[nodiscard]] State state() const {
    return {dim_, scaling_, discriminants_, class_centroids_, class_means_y_};
  }
  /// Throws std::invalid_argument on an inconsistent state (dimension or
  /// class-count mismatches, non-positive stddev), leaving the model
  /// untouched.
  void restore(const State& s);

 private:
  [[nodiscard]] std::vector<double> project(std::span<const double> z) const;

  FldaConfig config_;
  std::size_t dim_ = 0;
  Dataset::Scaling scaling_;
  std::vector<double> discriminants_;        // n_disc x dim, row major
  std::vector<std::vector<double>> class_centroids_;  // projected class means
  std::vector<double> class_means_y_;        // power per class
};

}  // namespace hpcpower::ml

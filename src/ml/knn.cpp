#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hpcpower::ml {

void KnnRegressor::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("KnnRegressor: empty training set");
  if (config_.k == 0) throw std::invalid_argument("KnnRegressor: k must be positive");
  dim_ = train.dim();
  scaling_ = train.compute_scaling();
  x_.resize(train.size() * dim_);
  y_.assign(train.targets().begin(), train.targets().end());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto r = train.row(i);
    for (std::size_t d = 0; d < dim_; ++d)
      x_[i * dim_ + d] = (r[d] - scaling_.mean[d]) / scaling_.stddev[d];
  }
}

void KnnRegressor::restore(const State& s) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("KnnRegressor::restore: ") + what);
  };
  if (s.config.k == 0) fail("k must be positive");
  if (s.dim == 0) fail("feature dimension is zero");
  if (s.y.empty()) fail("empty training targets");
  if (s.x.size() != s.y.size() * s.dim) fail("feature matrix size mismatch");
  if (s.scaling.mean.size() != s.dim || s.scaling.stddev.size() != s.dim)
    fail("scaling dimension mismatch");
  for (const double sd : s.scaling.stddev)
    if (!(sd > 0.0) || !std::isfinite(sd)) fail("non-positive scaling stddev");
  config_ = s.config;
  dim_ = s.dim;
  x_ = s.x;
  y_ = s.y;
  scaling_ = s.scaling;
}

double KnnRegressor::predict(std::span<const double> features) const {
  if (y_.empty()) throw std::logic_error("KnnRegressor: predict before fit");
  if (features.size() != dim_)
    throw std::invalid_argument("KnnRegressor: feature dimension mismatch");

  std::vector<double> q(dim_);
  for (std::size_t d = 0; d < dim_; ++d)
    q[d] = (features[d] - scaling_.mean[d]) / scaling_.stddev[d];

  const std::size_t k = std::min(config_.k, y_.size());
  // Bounded max-heap of (distance^2, target) pairs over the training rows.
  std::vector<std::pair<double, double>> heap;
  heap.reserve(k + 1);
  const std::size_t n = y_.size();
  for (std::size_t i = 0; i < n; ++i) {
    double d2 = 0.0;
    const double* xi = &x_[i * dim_];
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = xi[d] - q[d];
      d2 += diff * diff;
    }
    if (heap.size() < k) {
      heap.emplace_back(d2, y_[i]);
      std::push_heap(heap.begin(), heap.end());
    } else if (d2 < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d2, y_[i]};
      std::push_heap(heap.begin(), heap.end());
    }
  }

  if (!config_.distance_weighted) {
    double sum = 0.0;
    for (const auto& [d2, y] : heap) sum += y;
    return sum / static_cast<double>(heap.size());
  }
  // Inverse-distance weights; an exact match dominates.
  double wsum = 0.0, vsum = 0.0;
  for (const auto& [d2, y] : heap) {
    const double w = 1.0 / (std::sqrt(d2) + 1e-9);
    wsum += w;
    vsum += w * y;
  }
  return vsum / wsum;
}

}  // namespace hpcpower::ml

#pragma once
// Special functions needed for hypothesis testing.
//
// The Spearman-correlation p-values in Table 2 need the Student-t survival
// function, which reduces to the regularized incomplete beta function.

namespace hpcpower::stats {

/// log Gamma(x) for x > 0.
[[nodiscard]] double log_gamma(double x);

/// Regularized incomplete beta I_x(a, b) for a,b > 0, x in [0,1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// CDF of Student's t with `dof` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double dof);

/// Two-sided p-value for a t statistic.
[[nodiscard]] double student_t_two_sided_p(double t, double dof);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Halley step); |error| < 1e-12 over (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace hpcpower::stats

#include "stats/concentration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace hpcpower::stats {

namespace {
std::vector<double> sorted_descending(std::span<const double> values) {
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

std::size_t top_count(std::size_t n, double top_fraction) {
  if (top_fraction <= 0.0) return 0;
  if (top_fraction >= 1.0) return n;
  return static_cast<std::size_t>(
      std::ceil(top_fraction * static_cast<double>(n)) + 1e-9);
}
}  // namespace

double top_share(std::span<const double> values, double top_fraction) {
  if (values.empty()) throw std::invalid_argument("top_share: empty input");
  const std::vector<double> v = sorted_descending(values);
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const std::size_t k = top_count(v.size(), top_fraction);
  const double top = std::accumulate(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), 0.0);
  return top / total;
}

std::vector<std::pair<double, double>> top_share_curve(std::span<const double> values,
                                                       std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (values.empty() || points == 0) return out;
  const std::vector<double> v = sorted_descending(values);
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  out.reserve(points);
  double running = 0.0;
  std::size_t consumed = 0;
  for (std::size_t p = 1; p <= points; ++p) {
    const double frac = static_cast<double>(p) / static_cast<double>(points);
    const std::size_t want = top_count(v.size(), frac);
    while (consumed < want) running += v[consumed++];
    out.emplace_back(frac, total > 0.0 ? running / total : 0.0);
  }
  return out;
}

double gini(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("gini: empty input");
  std::vector<double> v(values.begin(), values.end());
  for (double x : v)
    if (x < 0.0) throw std::invalid_argument("gini: negative value");
  std::sort(v.begin(), v.end());
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const auto n = static_cast<double>(v.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * v[i];
  return weighted / (n * total);
}

double top_set_overlap(std::span<const double> a, std::span<const double> b,
                       double top_fraction) {
  if (a.size() != b.size()) throw std::invalid_argument("top_set_overlap: size mismatch");
  if (a.empty()) throw std::invalid_argument("top_set_overlap: empty input");
  const std::size_t k = top_count(a.size(), top_fraction);
  if (k == 0) return 0.0;

  const auto top_indices = [k](std::span<const double> values) {
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return values[i] > values[j]; });
    order.resize(k);
    return std::unordered_set<std::size_t>(order.begin(), order.end());
  };

  const auto sa = top_indices(a);
  const auto sb = top_indices(b);
  std::size_t shared = 0;
  for (std::size_t idx : sa) shared += sb.count(idx);
  return static_cast<double>(shared) / static_cast<double>(k);
}

}  // namespace hpcpower::stats

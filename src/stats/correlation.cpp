#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/special.hpp"

namespace hpcpower::stats {

namespace {
double correlation_p_value(double r, std::size_t n) {
  if (n < 3) return 1.0;
  const double r2 = std::min(r * r, 1.0 - 1e-15);
  const double dof = static_cast<double>(n - 2);
  const double t = r * std::sqrt(dof / (1.0 - r2));
  return student_t_two_sided_p(t, dof);
}
}  // namespace

CorrelationResult pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("pearson: need at least 2 points");
  const std::size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  CorrelationResult out;
  out.n = n;
  if (sxx <= 0.0 || syy <= 0.0) {
    out.coefficient = 0.0;
    out.p_value = 1.0;
    return out;
  }
  out.coefficient = sxy / std::sqrt(sxx * syy);
  out.coefficient = std::clamp(out.coefficient, -1.0, 1.0);
  out.p_value = correlation_p_value(out.coefficient, n);
  return out;
}

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average 1-based rank of the tie run [i, j].
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

CorrelationResult spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("spearman: need at least 2 points");
  const std::vector<double> rx = average_ranks(x);
  const std::vector<double> ry = average_ranks(y);
  // Pearson on ranks handles ties correctly.
  CorrelationResult out = pearson(rx, ry);
  out.p_value = correlation_p_value(out.coefficient, out.n);
  return out;
}

}  // namespace hpcpower::stats

#pragma once
// Nonparametric bootstrap confidence intervals, used by EXPERIMENTS.md to
// report sampling uncertainty on reproduced headline numbers.

#include <functional>
#include <span>

#include "util/prng.hpp"

namespace hpcpower::stats {

struct BootstrapResult {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // percentile CI lower bound
  double hi = 0.0;     // percentile CI upper bound
  std::size_t resamples = 0;
};

/// Percentile-method bootstrap CI for an arbitrary statistic.
/// `confidence` in (0,1), e.g. 0.95.
[[nodiscard]] BootstrapResult bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double confidence, util::Rng& rng);

/// Convenience: CI for the mean.
[[nodiscard]] BootstrapResult bootstrap_mean_ci(std::span<const double> values,
                                                std::size_t resamples, double confidence,
                                                util::Rng& rng);

}  // namespace hpcpower::stats

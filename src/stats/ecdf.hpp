#pragma once
// Empirical CDFs — the paper reports most distributions as CDF plots
// (Figs 7, 9, 12, 14, 15).

#include <span>
#include <vector>

namespace hpcpower::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::span<const double> values);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x) = P[X <= x].
  [[nodiscard]] double evaluate(double x) const noexcept;
  /// Smallest x with F(x) >= q, q in (0, 1]; q<=0 returns min.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Fraction of mass strictly above x.
  [[nodiscard]] double fraction_above(double x) const noexcept { return 1.0 - evaluate(x); }

  [[nodiscard]] const std::vector<double>& sorted_values() const noexcept { return sorted_; }

  /// Evenly spaced (x, F(x)) pairs for plotting/printing, endpoints included.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Kolmogorov-Smirnov distance between two ECDFs (property tests).
[[nodiscard]] double ks_distance(const Ecdf& a, const Ecdf& b);

}  // namespace hpcpower::stats

#pragma once
// Concentration analysis for Fig 11: "20% of users consume 85% of node-hours
// and energy". Lorenz-style top-share curves, Gini coefficient, and overlap
// between the top sets of two rankings.

#include <cstdint>
#include <span>
#include <vector>

namespace hpcpower::stats {

/// Fraction of the total contributed by the largest `top_fraction` of items.
/// Example: top_share(v, 0.2) == 0.85 reproduces the paper's headline.
[[nodiscard]] double top_share(std::span<const double> values, double top_fraction);

/// Points of the "top x% of items -> y% of total" curve (descending sort),
/// evaluated at `points` evenly spaced fractions in (0, 1].
[[nodiscard]] std::vector<std::pair<double, double>> top_share_curve(
    std::span<const double> values, std::size_t points);

/// Gini coefficient in [0, 1); 0 = perfectly equal. Values must be >= 0.
[[nodiscard]] double gini(std::span<const double> values);

/// Jaccard-style overlap of the top-`top_fraction` index sets of two value
/// vectors over the same items: |A intersect B| / |A|. The paper reports
/// ~90% overlap between top node-hour users and top energy users.
[[nodiscard]] double top_set_overlap(std::span<const double> a, std::span<const double> b,
                                     double top_fraction);

}  // namespace hpcpower::stats

#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace hpcpower::stats {

Ecdf::Ecdf(std::span<const double> values) : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::evaluate(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) throw std::out_of_range("quantile of empty ECDF");
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())) - 1.0);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Ecdf::mean() const noexcept { return stats::mean(sorted_); }

double Ecdf::min() const {
  if (sorted_.empty()) throw std::out_of_range("min of empty ECDF");
  return sorted_.front();
}

double Ecdf::max() const {
  if (sorted_.empty()) throw std::out_of_range("max of empty ECDF");
  return sorted_.back();
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, evaluate(x));
  }
  return out;
}

double ks_distance(const Ecdf& a, const Ecdf& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_distance: empty ECDF");
  double worst = 0.0;
  for (double x : a.sorted_values())
    worst = std::max(worst, std::abs(a.evaluate(x) - b.evaluate(x)));
  for (double x : b.sorted_values())
    worst = std::max(worst, std::abs(a.evaluate(x) - b.evaluate(x)));
  return worst;
}

}  // namespace hpcpower::stats

#pragma once
// Fixed-bin histograms and normalized PDF estimates (Figs 3 and 10 are PDFs).

#include <span>
#include <vector>

namespace hpcpower::stats {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); values outside are clamped into
  /// the edge bins so total mass is preserved.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Probability mass per bin (sums to 1).
  [[nodiscard]] std::vector<double> pmf() const;
  /// Probability density per bin (integrates to 1 over [lo, hi]).
  [[nodiscard]] std::vector<double> pdf() const;
  /// Index of the most populated bin.
  [[nodiscard]] std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Freedman-Diaconis bin count suggestion (clamped to [min_bins, max_bins]).
[[nodiscard]] std::size_t suggest_bins(std::span<const double> values,
                                       std::size_t min_bins = 10,
                                       std::size_t max_bins = 200);

}  // namespace hpcpower::stats

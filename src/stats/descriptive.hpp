#pragma once
// Descriptive statistics: streaming (Welford) and batch summaries.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hpcpower::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n). Zero for n < 1.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divide by n-1). Zero for n < 2.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// stddev / mean; zero when the mean is zero.
  [[nodiscard]] double coefficient_of_variation() const noexcept;

  /// Complete mutable state, for checkpoint serialization (streaming ingest).
  /// Restoring the same words reproduces the accumulator bit-identically.
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] State state() const noexcept {
    return {static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }
  void restore(const State& s) noexcept {
    n_ = static_cast<std::size_t>(s.count);
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a batch of values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;       // population
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

[[nodiscard]] double mean(std::span<const double> values) noexcept;
/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;
[[nodiscard]] double median(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1]. Values need not be sorted.
[[nodiscard]] double quantile(std::span<const double> values, double q);
/// Quantile of an already ascending-sorted range (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Weighted mean; weights must be non-negative with positive total.
[[nodiscard]] double weighted_mean(std::span<const double> values,
                                   std::span<const double> weights);

}  // namespace hpcpower::stats

#pragma once
// Pearson and Spearman correlation with significance tests (Table 2).

#include <span>
#include <vector>

namespace hpcpower::stats {

struct CorrelationResult {
  double coefficient = 0.0;  // r or rho
  double p_value = 1.0;      // two-sided, t approximation
  std::size_t n = 0;
};

/// Pearson product-moment correlation; p-value from the exact-under-normality
/// t distribution with n-2 dof.
[[nodiscard]] CorrelationResult pearson(std::span<const double> x,
                                        std::span<const double> y);

/// Spearman rank correlation with average ranks for ties (the paper's
/// Table 2 statistic); p-value via the t approximation.
[[nodiscard]] CorrelationResult spearman(std::span<const double> x,
                                         std::span<const double> y);

/// Average (fractional) ranks, 1-based, ties averaged.
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> values);

}  // namespace hpcpower::stats

#include "stats/streaming_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcpower::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("P2Quantile: q must lie in (0, 1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i)
        positions_[i] = static_cast<std::int64_t>(i) + 1;
    }
    return;
  }

  // Locate the cell containing x, extending the extreme markers if needed.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  ++count_;
  for (std::size_t i = k + 1; i < 5; ++i) ++positions_[i];
  // Desired positions drift by their per-observation increments.
  const double n = static_cast<double>(count_);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + (n - 1.0) * (q_ / 2.0);
  desired_[2] = 1.0 + (n - 1.0) * q_;
  desired_[3] = 1.0 + (n - 1.0) * ((1.0 + q_) / 2.0);
  desired_[4] = n;

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - static_cast<double>(positions_[i]);
    const std::int64_t below = positions_[i] - positions_[i - 1];
    const std::int64_t above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1) || (d <= -1.0 && below > 1)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) prediction of the marker height.
      const double np = static_cast<double>(positions_[i]);
      const double nm = static_cast<double>(positions_[i - 1]);
      const double nn = static_cast<double>(positions_[i + 1]);
      const double hp = heights_[i];
      double candidate =
          hp + s / (nn - nm) *
                   ((np - nm + s) * (heights_[i + 1] - hp) / (nn - np) +
                    (nn - np - s) * (hp - heights_[i - 1]) / (np - nm));
      if (!(candidate > heights_[i - 1] && candidate < heights_[i + 1])) {
        // Parabolic estimate left the bracket: fall back to linear.
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        candidate = hp + s * (heights_[j] - hp) /
                             (static_cast<double>(positions_[j]) - np);
      }
      heights_[i] = candidate;
      positions_[i] += s > 0.0 ? 1 : -1;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return heights_[2];
  // Exact linear-interpolated sample quantile of the buffered head.
  std::array<double, 5> head{};
  std::copy(heights_.begin(), heights_.begin() + count_, head.begin());
  std::sort(head.begin(), head.begin() + count_);
  const double pos = q_ * (static_cast<double>(count_) - 1.0);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
  const double frac = pos - static_cast<double>(lo);
  return head[lo] + frac * (head[hi] - head[lo]);
}

P2Quantile::State P2Quantile::state() const noexcept {
  State s;
  s.count = count_;
  s.heights = heights_;
  s.positions = positions_;
  s.desired = desired_;
  return s;
}

void P2Quantile::restore(const State& s) {
  if (s.count >= 5) {
    for (std::size_t i = 1; i < 5; ++i) {
      if (s.positions[i] <= s.positions[i - 1])
        throw std::invalid_argument("P2Quantile: non-increasing marker positions");
    }
    if (s.positions[0] != 1 ||
        s.positions[4] != static_cast<std::int64_t>(s.count))
      throw std::invalid_argument("P2Quantile: marker positions disagree with count");
  }
  count_ = s.count;
  heights_ = s.heights;
  positions_ = s.positions;
  desired_ = s.desired;
}

}  // namespace hpcpower::stats

#include "stats/descriptive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hpcpower::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const noexcept { return std::sqrt(sample_variance()); }

double RunningStats::coefficient_of_variation() const noexcept {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.median = quantile_sorted(sorted, 0.5);
  s.p05 = quantile_sorted(sorted, 0.05);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  return s;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.stddev();
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty range");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double weighted_mean(std::span<const double> values, std::span<const double> weights) {
  if (values.size() != weights.size())
    throw std::invalid_argument("weighted_mean: size mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("weighted_mean: negative weight");
    num += values[i] * weights[i];
    den += weights[i];
  }
  if (den <= 0.0) throw std::invalid_argument("weighted_mean: zero total weight");
  return num / den;
}

}  // namespace hpcpower::stats

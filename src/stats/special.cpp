#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hpcpower::stats {

double log_gamma(double x) {
  if (x <= 0.0) throw std::domain_error("log_gamma requires x > 0");
  return std::lgamma(x);
}

namespace {
// Continued fraction for the incomplete beta (Numerical-Recipes-style modified
// Lentz algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}
}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::domain_error("incomplete_beta requires a,b > 0");
  if (x < 0.0 || x > 1.0) throw std::domain_error("incomplete_beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (dof <= 0.0) throw std::domain_error("student_t_cdf requires dof > 0");
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double dof) {
  if (dof <= 0.0) throw std::domain_error("p-value requires dof > 0");
  if (std::isinf(t)) return 0.0;
  const double x = dof / (dof + t * t);
  return incomplete_beta(0.5 * dof, 0.5, x);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::domain_error("normal_quantile requires p in (0,1)");
  }
  // Acklam's approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement using the closed-form CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace hpcpower::stats

#pragma once
// Streaming quantile estimation: the P² algorithm (Jain & Chlamtac, 1985).
//
// Tracks one quantile of a stream in O(1) memory with five markers whose
// heights converge on the quantile as observations arrive. Exact for the
// first five observations, then a deterministic parabolic/linear marker
// update per value — no randomness, no allocation, and the full state is
// five (height, position, desired-position) triples, so it serializes into
// a streaming checkpoint and restores bit-identically (see state()).
//
// Used by the streaming ingest daemon (src/stream) to keep per-shard power
// quantiles while shedding per-sample detail under overload: the shed rows
// still contribute to the sketch even though they never reach a table.

#include <array>
#include <cstddef>
#include <cstdint>

namespace hpcpower::stats {

/// One-quantile P² estimator. Copyable, O(1) per add().
class P2Quantile {
 public:
  /// `q` must lie in (0, 1); throws std::invalid_argument otherwise.
  explicit P2Quantile(double q);

  void add(double x) noexcept;

  [[nodiscard]] double quantile() const noexcept { return q_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Current estimate. With fewer than five observations this is the exact
  /// sample quantile of what arrived so far; zero before any observation.
  [[nodiscard]] double value() const noexcept;

  /// Complete mutable state, for checkpoint serialization. Restoring the
  /// same words into an estimator constructed with the same q reproduces
  /// the estimator bit-identically.
  struct State {
    std::uint64_t count = 0;
    std::array<double, 5> heights{};
    std::array<std::int64_t, 5> positions{};
    std::array<double, 5> desired{};
  };
  [[nodiscard]] State state() const noexcept;
  /// Throws std::invalid_argument on an inconsistent state (count vs
  /// positions) so a corrupt checkpoint fails loudly.
  void restore(const State& s);

 private:
  double q_ = 0.5;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};        // marker heights (sorted)
  std::array<std::int64_t, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};         // desired marker positions
};

}  // namespace hpcpower::stats

#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace hpcpower::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double value) noexcept {
  double idx = (value - lo_) / width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram bin");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return out;
}

std::vector<double> Histogram::pdf() const {
  std::vector<double> out = pmf();
  for (double& v : out) v /= width_;
  return out;
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::distance(counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

std::size_t suggest_bins(std::span<const double> values, std::size_t min_bins,
                         std::size_t max_bins) {
  if (values.size() < 2) return min_bins;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
  const double range = sorted.back() - sorted.front();
  if (iqr <= 0.0 || range <= 0.0) return min_bins;
  const double h = 2.0 * iqr / std::cbrt(static_cast<double>(values.size()));
  const auto bins = static_cast<std::size_t>(std::ceil(range / h));
  return std::clamp(bins, min_bins, max_bins);
}

}  // namespace hpcpower::stats

#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace hpcpower::stats {

BootstrapResult bootstrap_ci(std::span<const double> values,
                             const std::function<double(std::span<const double>)>& statistic,
                             std::size_t resamples, double confidence, util::Rng& rng) {
  if (values.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
  if (resamples == 0) throw std::invalid_argument("bootstrap_ci: need resamples > 0");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap_ci: confidence must be in (0,1)");

  BootstrapResult out;
  out.point = statistic(values);
  out.resamples = resamples;

  std::vector<double> resample(values.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& slot : resample)
      slot = values[rng.uniform_index(values.size())];
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = 1.0 - confidence;
  out.lo = quantile_sorted(stats, alpha / 2.0);
  out.hi = quantile_sorted(stats, 1.0 - alpha / 2.0);
  return out;
}

BootstrapResult bootstrap_mean_ci(std::span<const double> values, std::size_t resamples,
                                  double confidence, util::Rng& rng) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return mean(v); }, resamples, confidence, rng);
}

}  // namespace hpcpower::stats

#include "util/parallel.hpp"

namespace hpcpower::util {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (global_thread_count() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  global_pool().parallel_for(n, fn);
}

namespace {
double pairwise_sum_impl(const double* values, std::size_t n) noexcept {
  if (n <= 8) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += values[i];
    return sum;
  }
  const std::size_t half = n / 2;
  return pairwise_sum_impl(values, half) + pairwise_sum_impl(values + half, n - half);
}
}  // namespace

double pairwise_sum(std::span<const double> values) noexcept {
  return pairwise_sum_impl(values.data(), values.size());
}

}  // namespace hpcpower::util

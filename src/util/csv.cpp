#include "util/csv.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hpcpower::util {

namespace {
bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_.put(',');
    if (needs_quoting(fields[i])) {
      out_ << quote(fields[i]);
    } else {
      out_ << fields[i];
    }
  }
  out_.put('\n');
}

std::string CsvWriter::to_field(double v) {
  if (std::isnan(v)) return "nan";
  char buf[40];
  // %.10g keeps round-trip fidelity for trace values without bloating files.
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

const std::string& CsvRow::at(std::string_view column) const {
  if (header_ == nullptr) throw std::out_of_range("CSV has no header");
  const auto it = header_->find(std::string(column));
  if (it == header_->end())
    throw std::out_of_range("no such CSV column: " + std::string(column));
  return fields_.at(it->second);
}

double CsvRow::as_double(std::string_view column) const {
  const std::string& f = at(column);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
  if (ec != std::errc() || ptr != f.data() + f.size())
    throw std::invalid_argument("CSV field not a double: '" + f + "' in column " +
                                std::string(column));
  return v;
}

std::int64_t CsvRow::as_int(std::string_view column) const {
  const std::string& f = at(column);
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
  if (ec != std::errc() || ptr != f.data() + f.size())
    throw std::invalid_argument("CSV field not an integer: '" + f + "'");
  return v;
}

std::uint64_t CsvRow::as_uint(std::string_view column) const {
  const std::string& f = at(column);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
  if (ec != std::errc() || ptr != f.data() + f.size())
    throw std::invalid_argument("CSV field not an unsigned integer: '" + f + "'");
  return v;
}

CsvReader::CsvReader(std::istream& in, CsvReadOptions options)
    : in_(in), options_(options) {
  if (options_.has_header) {
    if (auto record = parse_record()) {
      header_names_ = std::move(*record);
      for (std::size_t i = 0; i < header_names_.size(); ++i)
        header_index_.emplace(header_names_[i], i);
    }
  }
}

std::optional<CsvRow> CsvReader::next() {
  for (;;) {
    auto record = parse_record();
    if (!record) return std::nullopt;
    if (!header_names_.empty() && record->size() != header_names_.size()) {
      const std::string what = format(
          "CSV line %zu: expected %zu fields, got %zu", line_,
          header_names_.size(), record->size());
      if (!options_.lenient) throw std::invalid_argument(what);
      ++skipped_rows_;
      counters().add("csv.rows_skipped");
      log_warn(what + " (row skipped)");
      continue;
    }
    return CsvRow(std::move(*record),
                  header_index_.empty() ? nullptr : &header_index_, line_);
  }
}

std::optional<std::vector<std::string>> CsvReader::parse_record() {
  if (!in_.good()) return std::nullopt;
  line_ = next_line_;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in_.get()) != EOF) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (ch == '\n') ++next_line_;
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          field.push_back('"');
          in_.get();
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      return fields;
    } else if (ch != '\r') {
      field.push_back(ch);
    }
  }
  if (!saw_any) return std::nullopt;
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace hpcpower::util

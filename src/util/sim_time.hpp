#pragma once
// Simulation time.
//
// The paper's telemetry is sampled once per minute, so the natural clock of
// the whole reproduction is an integer minute count since campaign start.
// MinuteTime is a strong type to keep minutes from mixing with node counts,
// watts, and other integers.

#include <compare>
#include <cstdint>
#include <string>

namespace hpcpower::util {

/// Minutes since the start of the simulated measurement campaign.
class MinuteTime {
 public:
  constexpr MinuteTime() noexcept = default;
  constexpr explicit MinuteTime(std::int64_t minutes) noexcept : minutes_(minutes) {}

  [[nodiscard]] constexpr std::int64_t minutes() const noexcept { return minutes_; }
  [[nodiscard]] constexpr double hours() const noexcept {
    return static_cast<double>(minutes_) / 60.0;
  }
  [[nodiscard]] constexpr double days() const noexcept {
    return static_cast<double>(minutes_) / (60.0 * 24.0);
  }

  constexpr auto operator<=>(const MinuteTime&) const noexcept = default;

  constexpr MinuteTime operator+(MinuteTime rhs) const noexcept {
    return MinuteTime(minutes_ + rhs.minutes_);
  }
  constexpr MinuteTime operator-(MinuteTime rhs) const noexcept {
    return MinuteTime(minutes_ - rhs.minutes_);
  }
  constexpr MinuteTime& operator+=(MinuteTime rhs) noexcept {
    minutes_ += rhs.minutes_;
    return *this;
  }

  static constexpr MinuteTime from_hours(double h) noexcept {
    return MinuteTime(static_cast<std::int64_t>(h * 60.0 + 0.5));
  }
  static constexpr MinuteTime from_days(double d) noexcept {
    return MinuteTime(static_cast<std::int64_t>(d * 24.0 * 60.0 + 0.5));
  }

 private:
  std::int64_t minutes_ = 0;
};

/// "12d 03:45" style rendering for logs and reports.
[[nodiscard]] std::string format_duration(MinuteTime t);

/// Calendar-ish label for campaign offsets assuming an Oct 1 start
/// (the paper's campaign ran Oct'18-Feb'19); used only for display.
[[nodiscard]] std::string campaign_label(MinuteTime t);

}  // namespace hpcpower::util

#pragma once
// Minimal RFC-4180-ish CSV reading/writing used by the trace module.
//
// Supports quoted fields (embedded commas, quotes, and newlines), a header
// row, and typed column accessors. Designed for streaming large trace files
// without materializing the whole file.
//
// The reader is hardened against real-world dirty files: rows with the wrong
// column count raise a line-numbered error (or are skipped with a warning in
// lenient mode, counted under the "csv.rows_skipped" counter), and numeric
// accessors reject trailing garbage instead of silently truncating it.

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hpcpower::util {

/// Writes one CSV row at a time; quotes fields only when required.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);

  /// Variadic convenience: accepts strings and arithmetic values.
  template <typename... Ts>
  void write(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    write_row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(float v) { return to_field(static_cast<double>(v)); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_field(T v) {
    return std::to_string(v);
  }

  std::ostream& out_;
};

/// A parsed CSV row with access by index or by header name.
class CsvRow {
 public:
  CsvRow(std::vector<std::string> fields,
         const std::unordered_map<std::string, std::size_t>* header,
         std::size_t line = 0)
      : fields_(std::move(fields)), header_(header), line_(line) {}

  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }
  /// 1-based line number where this row started in the stream (0 if unknown).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] const std::string& at(std::size_t i) const { return fields_.at(i); }
  /// Throws std::out_of_range if the column does not exist.
  [[nodiscard]] const std::string& at(std::string_view column) const;

  /// Strict numeric accessors: the whole field must parse (no trailing
  /// garbage, no embedded whitespace). Throw std::invalid_argument otherwise.
  [[nodiscard]] double as_double(std::string_view column) const;
  [[nodiscard]] std::int64_t as_int(std::string_view column) const;
  [[nodiscard]] std::uint64_t as_uint(std::string_view column) const;

 private:
  std::vector<std::string> fields_;
  const std::unordered_map<std::string, std::size_t>* header_;
  std::size_t line_ = 0;
};

struct CsvReadOptions {
  bool has_header = true;
  /// With a header: rows whose field count differs from the header's are an
  /// error. Lenient mode logs a warning, bumps the "csv.rows_skipped"
  /// counter, and moves on; strict mode throws with the line number.
  bool lenient = false;
};

/// Streaming CSV reader. If `has_header` is true the first row names columns.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, bool has_header = true)
      : CsvReader(in, CsvReadOptions{has_header, false}) {}
  CsvReader(std::istream& in, CsvReadOptions options);

  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  /// Returns the next data row, or nullopt at end of stream. Throws
  /// std::invalid_argument on a malformed row unless lenient.
  [[nodiscard]] std::optional<CsvRow> next();

  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_names_; }
  [[nodiscard]] bool has_column(std::string_view name) const noexcept {
    return header_index_.contains(std::string(name));
  }
  /// Number of malformed rows skipped so far (lenient mode only).
  [[nodiscard]] std::size_t skipped_rows() const noexcept { return skipped_rows_; }

 private:
  std::optional<std::vector<std::string>> parse_record();

  std::istream& in_;
  CsvReadOptions options_;
  std::vector<std::string> header_names_;
  std::unordered_map<std::string, std::size_t> header_index_;
  std::size_t line_ = 0;         // 1-based line of the last record's start
  std::size_t next_line_ = 1;    // line the next record will start on
  std::size_t skipped_rows_ = 0;
};

}  // namespace hpcpower::util

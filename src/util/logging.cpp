#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

#include "util/strings.hpp"

namespace hpcpower::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

std::mutex& counter_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, std::uint64_t, std::less<>>& counter_map() {
  static std::map<std::string, std::uint64_t, std::less<>> counters;
  return counters;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// Fixed-depth per-thread context stack. Overflowing pushes are counted but
// not stored, so deeply nested spans degrade gracefully instead of writing
// out of bounds.
constexpr int kMaxContextDepth = 64;
thread_local const char* t_context[kMaxContextDepth];
thread_local int t_context_depth = 0;
thread_local std::string t_thread_label;
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void push_log_context(const char* name) noexcept {
  if (t_context_depth < kMaxContextDepth) t_context[t_context_depth] = name;
  ++t_context_depth;
}

void pop_log_context() noexcept {
  if (t_context_depth > 0) --t_context_depth;
}

const char* current_log_context() noexcept {
  const int depth = std::min(t_context_depth, kMaxContextDepth);
  return depth > 0 ? t_context[depth - 1] : nullptr;
}

std::string format_log_line(LogLevel level, const std::string& message) {
  if (const char* context = current_log_context())
    return format("[hpcpower %s %s] %s", level_name(level), context, message.c_str());
  return format("[hpcpower %s] %s", level_name(level), message.c_str());
}

void set_thread_label(std::string label) { t_thread_label = std::move(label); }

const std::string& thread_label() noexcept {
  static const std::string kMainLabel = "main";
  return t_thread_label.empty() ? kMainLabel : t_thread_label;
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string line = format_log_line(level, message);
  const std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard lock(counter_mutex());
  auto& map = counter_map();
  const auto it = map.find(name);
  if (it == map.end()) {
    map.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  const std::lock_guard lock(counter_mutex());
  const auto& map = counter_map();
  const auto it = map.find(name);
  return it == map.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot() const {
  const std::lock_guard lock(counter_mutex());
  const auto& map = counter_map();
  return {map.begin(), map.end()};
}

void CounterRegistry::reset() {
  const std::lock_guard lock(counter_mutex());
  counter_map().clear();
}

CounterRegistry& counters() noexcept {
  static CounterRegistry registry;
  return registry;
}

}  // namespace hpcpower::util

#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hpcpower::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[hpcpower %s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace hpcpower::util

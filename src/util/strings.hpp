#pragma once
// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::util {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats watts/percent values for report tables ("149.3 W", "71.1%").
[[nodiscard]] std::string format_watts(double watts);
[[nodiscard]] std::string format_percent(double fraction);

/// Renders a fixed-width ASCII bar of `value` within [0, max_value]
/// (used by benches to sketch the paper's figures in the terminal).
[[nodiscard]] std::string ascii_bar(double value, double max_value, int width);

}  // namespace hpcpower::util

#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hpcpower::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_watts(double watts) { return format("%.1f W", watts); }

std::string format_percent(double fraction) { return format("%.1f%%", fraction * 100.0); }

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int filled = static_cast<int>(frac * width + 0.5);
  std::string bar(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(width - filled), '.');
  return bar;
}

}  // namespace hpcpower::util

#pragma once
// Deterministic parallel-execution helpers over the process-wide pool.
//
// The library-wide determinism contract (DESIGN.md §5, enforced by
// tests/test_parallel_determinism.cpp): every result is bit-identical
// regardless of HPCPOWER_THREADS. Three rules make that hold:
//   1. parallel_for work items write only to disjoint, pre-sized output
//      slots (never append to shared containers);
//   2. every floating-point accumulation is reduced in a fixed shape that
//      depends only on the problem size, never on the thread count: either
//      per-item slots folded left-to-right, fixed-size blocks merged in
//      block order (blocked_accumulate), or a fixed pairwise tree
//      (pairwise_sum);
//   3. randomized work derives its PRNG stream from the work-item index
//      (derive_stream / stateless_*), never from the executing thread.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace hpcpower::util {

/// Runs fn(i) for i in [0, n) on the global pool. Serial (and pool-free) when
/// the configured thread count is 1, so HPCPOWER_THREADS=1 is a true serial
/// reference run.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Sum over a fixed pairwise tree (recursive halving, sequential below 8
/// elements). The tree shape depends only on values.size(), so the result is
/// reproducible and independent of thread count; the pairwise association
/// also bounds rounding error at O(log n) vs O(n) for a running sum.
[[nodiscard]] double pairwise_sum(std::span<const double> values) noexcept;

/// Default block length for blocked_accumulate. Fixed (never derived from the
/// thread count) so the reduction tree is invariant across configurations.
inline constexpr std::size_t kAccumulateBlock = 1024;

/// Parallel accumulation with a thread-count-independent shape: the index
/// range [0, n) is cut into fixed-size blocks, `fill(acc, begin, end)`
/// accumulates one block into its own Acc slot (blocks run in parallel), and
/// `merge(total, block_acc)` folds the per-block accumulators left-to-right.
/// A range that fits one block is accumulated directly, bit-identical to a
/// plain sequential loop.
template <class Acc, class FillBlock, class Merge>
[[nodiscard]] Acc blocked_accumulate(std::size_t n, FillBlock&& fill, Merge&& merge,
                                     std::size_t block = kAccumulateBlock) {
  Acc total{};
  if (n == 0) return total;
  if (n <= block) {
    fill(total, std::size_t{0}, n);
    return total;
  }
  const std::size_t blocks = (n + block - 1) / block;
  std::vector<Acc> partial(blocks);
  parallel_for(blocks, [&](std::size_t b) {
    fill(partial[b], b * block, std::min(n, (b + 1) * block));
  });
  total = std::move(partial[0]);
  for (std::size_t b = 1; b < blocks; ++b) merge(total, partial[b]);
  return total;
}

}  // namespace hpcpower::util

#include "util/options.hpp"

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

#include <cstdio>
#include <stdexcept>

namespace hpcpower::util {

Options& Options::add_flag(std::string name, std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.is_flag = true;
  specs_.emplace(std::move(name), std::move(spec));
  return *this;
}

Options& Options::add_option(std::string name, std::string help, std::string default_value) {
  Spec spec;
  spec.help = std::move(help);
  spec.value = std::move(default_value);
  specs_.emplace(std::move(name), std::move(spec));
  return *this;
}

Options& Options::add_threads_option() {
  return add_option("threads",
                    "worker threads (0 = all cores, 1 = serial; default: "
                    "HPCPOWER_THREADS, else all cores)",
                    "");
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--"))
      throw std::invalid_argument("unexpected argument: " + std::string(arg));
    arg.remove_prefix(2);
    std::string name(arg);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end())
      throw std::invalid_argument("unknown option --" + name + "\n" + help_text());
    Spec& spec = it->second;
    spec.provided = true;
    if (spec.is_flag) {
      if (inline_value)
        throw std::invalid_argument("flag --" + name + " does not take a value");
      spec.flag_set = true;
    } else if (inline_value) {
      spec.value = std::move(*inline_value);
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + name + " requires a value");
      spec.value = argv[++i];
    }
  }
  return true;
}

const Options::Spec& Options::find(std::string_view name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::out_of_range("option not registered: " + std::string(name));
  return it->second;
}

bool Options::flag(std::string_view name) const { return find(name).flag_set; }

bool Options::provided(std::string_view name) const { return find(name).provided; }

std::size_t Options::threads(std::string_view name) const {
  const Spec& spec = find(name);
  if (spec.provided) {
    try {
      return parse_thread_count(spec.value);  // --threads wins over the env
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("--" + std::string(name) + ": " + e.what());
    }
  }
  if (!spec.value.empty()) return parse_thread_count(spec.value);
  return thread_count_from_env();
}

const std::string& Options::str(std::string_view name) const { return find(name).value; }

std::int64_t Options::integer(std::string_view name) const {
  return std::stoll(find(name).value);
}

double Options::number(std::string_view name) const { return std::stod(find(name).value); }

std::uint64_t Options::seed(std::string_view name) const {
  return std::stoull(find(name).value);
}

std::string Options::help_text() const {
  std::string out = program_ + " - " + description_ + "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out += format("  --%-18s %s", name.c_str(), spec.help.c_str());
    if (!spec.is_flag && !spec.value.empty())
      out += format(" (default: %s)", spec.value.c_str());
    out += "\n";
  }
  out += "  --help               show this message\n";
  return out;
}

}  // namespace hpcpower::util

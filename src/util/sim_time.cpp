#include "util/sim_time.hpp"

#include "util/strings.hpp"

#include <array>
#include <cstdlib>

namespace hpcpower::util {

std::string format_duration(MinuteTime t) {
  std::int64_t m = t.minutes();
  const char* sign = "";
  if (m < 0) {
    sign = "-";
    m = -m;
  }
  const std::int64_t days = m / (24 * 60);
  const std::int64_t hours = (m / 60) % 24;
  const std::int64_t mins = m % 60;
  if (days > 0) return format("%s%lldd %02lld:%02lld", sign, static_cast<long long>(days),
                              static_cast<long long>(hours), static_cast<long long>(mins));
  return format("%s%02lld:%02lld", sign, static_cast<long long>(hours),
                static_cast<long long>(mins));
}

std::string campaign_label(MinuteTime t) {
  // Month lengths for Oct'18..Feb'19 (the paper's campaign window), repeated
  // cyclically if a simulation runs longer than five months.
  static constexpr std::array<std::pair<const char*, int>, 5> kMonths = {{
      {"Oct", 31}, {"Nov", 30}, {"Dec", 31}, {"Jan", 31}, {"Feb", 28},
  }};
  std::int64_t day = t.minutes() / (24 * 60);
  if (day < 0) day = 0;
  for (std::size_t i = 0;; i = (i + 1) % kMonths.size()) {
    const auto [name, len] = kMonths[i];
    if (day < len) return format("%s %02lld", name, static_cast<long long>(day + 1));
    day -= len;
  }
}

}  // namespace hpcpower::util

#pragma once
// Deterministic pseudo-random number generation for reproducible simulation.
//
// The whole study pipeline must be bit-reproducible for a given seed: every
// figure bench, every test, and every example derives its randomness from a
// single root seed through named sub-streams (see derive_stream). We use
// xoshiro256** (public-domain, Blackman & Vigna) seeded via splitmix64,
// which is both fast and statistically strong enough for Monte-Carlo use.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hpcpower::util {

/// splitmix64 step; used for seeding and for hashing stream names.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to split parallel streams.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Random variate generator bound to one engine.
///
/// All distributions are implemented in-house (not <random>) so that the
/// generated sequences are identical across standard-library vendors.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept : eng_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller with caching.
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Exponential with given rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Poisson with mean lambda >= 0 (Knuth for small, PTRS-like normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;
  /// Zipf-distributed rank in [1, n] with exponent s > 0 (rejection-inversion).
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;
  /// Truncated normal: resamples until within [lo, hi]; falls back to clamping
  /// after 64 rejections to stay O(1) in pathological configurations.
  [[nodiscard]] double truncated_normal(double mean, double stddev, double lo,
                                        double hi) noexcept;

  /// Samples an index according to non-negative `weights` (linear scan; for
  /// repeated sampling from the same weights use DiscreteSampler).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  Xoshiro256& engine() noexcept { return eng_; }

 private:
  Xoshiro256 eng_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stateless counter-based randomness: pure functions of (seed, a, b).
/// Used where a value must be reproducible without storing a stream, e.g.
/// per-(job, minute, node) telemetry noise.
[[nodiscard]] double stateless_uniform(std::uint64_t seed, std::uint64_t a,
                                       std::uint64_t b) noexcept;
/// Standard normal via Box-Muller over two stateless uniforms.
[[nodiscard]] double stateless_normal(std::uint64_t seed, std::uint64_t a,
                                      std::uint64_t b) noexcept;
/// Uniform index in [0, n) as a pure function of the inputs. Requires n > 0.
[[nodiscard]] std::uint64_t stateless_index(std::uint64_t seed, std::uint64_t a,
                                            std::uint64_t b, std::uint64_t n) noexcept;

/// Derives a child seed from a root seed and a stream name, so independent
/// simulation components (arrivals, power noise, ML splits, ...) consume
/// decorrelated streams while staying reproducible from one root seed.
[[nodiscard]] std::uint64_t derive_stream(std::uint64_t root_seed,
                                          std::string_view stream_name) noexcept;

/// Walker alias-method sampler for repeated draws from a fixed discrete
/// distribution in O(1) per draw.
class DiscreteSampler {
 public:
  /// Builds alias tables from non-negative weights (at least one positive).
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  /// Normalized probability of outcome i (for testing).
  [[nodiscard]] double probability(std::size_t i) const noexcept { return norm_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
  std::vector<double> norm_;
};

}  // namespace hpcpower::util

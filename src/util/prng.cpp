#include "util/prng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace hpcpower::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL,
                                            0x77710069854EE241ULL, 0x39109BB02ACBE635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(eng_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection for unbiased bounded integers.
  std::uint64_t x = eng_();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = eng_();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 to avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost shape by 1 and correct with a power of a uniform (Marsaglia-Tsang).
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // arrival counts where lambda is large and tails are not load-bearing.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  assert(n >= 1 && s > 0.0);
  // Rejection-inversion (Hörmann & Derflinger) specialized for s != 1 and s == 1.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(std::clamp(x + 0.5, 1.0, nd));
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k;
  }
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) noexcept {
  assert(lo <= hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

namespace {
std::uint64_t mix3(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = seed;
  state ^= 0x9E3779B97F4A7C15ULL + a;
  (void)splitmix64(state);
  state ^= 0xD1B54A32D192ED03ULL + b;
  return splitmix64(state);
}
}  // namespace

double stateless_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<double>(mix3(seed, a, b) >> 11) * 0x1.0p-53;
}

double stateless_normal(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = mix3(seed, a, b);
  double u1 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t stateless_index(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                              std::uint64_t n) noexcept {
  assert(n > 0);
  const __uint128_t m = static_cast<__uint128_t>(mix3(seed, a, b)) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_stream(std::uint64_t root_seed, std::string_view stream_name) noexcept {
  // FNV-1a over the name, mixed with the root seed through splitmix64.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : stream_name) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  std::uint64_t state = root_seed ^ hash;
  (void)splitmix64(state);
  return splitmix64(state);
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  assert(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const std::size_t i = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace hpcpower::util

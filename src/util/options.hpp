#pragma once
// Tiny command-line option parser for benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
// options raise an error listing registered options, so every bench binary
// self-documents with --help.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::util {

class Options {
 public:
  Options(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  Options& add_flag(std::string name, std::string help);
  Options& add_option(std::string name, std::string help, std::string default_value);
  /// Registers the standard `--threads` option (worker-thread count). The
  /// default is empty, meaning "fall back to HPCPOWER_THREADS, else all
  /// cores" - see threads().
  Options& add_threads_option();

  /// Parses argv. Returns false if --help was requested (help text printed).
  /// Throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  /// True when the option was explicitly given on the command line.
  [[nodiscard]] bool provided(std::string_view name) const;
  [[nodiscard]] const std::string& str(std::string_view name) const;
  [[nodiscard]] std::int64_t integer(std::string_view name) const;
  [[nodiscard]] double number(std::string_view name) const;
  [[nodiscard]] std::uint64_t seed(std::string_view name = "seed") const;
  /// Resolves the worker-thread count (0 = all cores, 1 = serial). The flag
  /// value wins over the HPCPOWER_THREADS environment variable; with neither
  /// set, returns 0. Throws std::invalid_argument on malformed values.
  [[nodiscard]] std::size_t threads(std::string_view name = "threads") const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string value;   // current (default or parsed)
    bool flag_set = false;
    bool provided = false;  // explicitly given on the command line
  };

  const Spec& find(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec, std::less<>> specs_;
};

}  // namespace hpcpower::util

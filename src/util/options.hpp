#pragma once
// Tiny command-line option parser for benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
// options raise an error listing registered options, so every bench binary
// self-documents with --help.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::util {

class Options {
 public:
  Options(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  Options& add_flag(std::string name, std::string help);
  Options& add_option(std::string name, std::string help, std::string default_value);

  /// Parses argv. Returns false if --help was requested (help text printed).
  /// Throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  [[nodiscard]] const std::string& str(std::string_view name) const;
  [[nodiscard]] std::int64_t integer(std::string_view name) const;
  [[nodiscard]] double number(std::string_view name) const;
  [[nodiscard]] std::uint64_t seed(std::string_view name = "seed") const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string value;   // current (default or parsed)
    bool flag_set = false;
  };

  const Spec& find(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec, std::less<>> specs_;
};

}  // namespace hpcpower::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hpcpower::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions land in the packaged_task's future
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n < 2 * threads) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hpcpower::util

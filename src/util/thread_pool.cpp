#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hpcpower::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      // Label the worker so log lines and trace events are attributable.
      set_thread_label(format("worker-%zu", i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto future = packaged->get_future();
  post([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // submit() wraps tasks in a packaged_task that captures exceptions
  }
}

// Shared between the caller and its helper tasks. Owned by shared_ptr so a
// helper that is only dequeued after the loop finished (all chunks claimed)
// still finds live state; such a stale helper returns without touching fn.
struct ThreadPool::ForState {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t running_helpers = 0;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  /// Claims and executes chunks until the range is exhausted. On an
  /// exception, records it keyed by item index (lowest wins, so the
  /// propagated error does not depend on thread scheduling when a single
  /// deterministic item throws) and cancels all unclaimed chunks.
  void run_chunks() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard lock(mutex);
          if (i < first_error_index) {
            first_error_index = i;
            error = std::current_exception();
          }
          next.store(n);
          return;
        }
      }
    }
  }
};

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n < 2 * threads) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->chunk = std::max<std::size_t>(1, n / (threads * 8));
  state->fn = fn;
  const std::size_t helpers = threads - 1;
  for (std::size_t t = 0; t < helpers; ++t) {
    post([state] {
      {
        const std::lock_guard lock(state->mutex);
        // All chunks already claimed (the caller and earlier helpers drained
        // the range): nothing to do. This is what makes nested parallel_for
        // deadlock-free - helpers are an optimization, never a dependency.
        if (state->next.load(std::memory_order_relaxed) >= state->n) return;
        ++state->running_helpers;
      }
      state->run_chunks();
      {
        const std::lock_guard lock(state->mutex);
        if (--state->running_helpers == 0) state->done_cv.notify_all();
      }
    });
  }
  state->run_chunks();  // the caller participates: no idle blocking, no deadlock
  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->running_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

// ---- process-wide parallelism configuration --------------------------------

namespace {

constexpr std::size_t kThreadsUnset = std::numeric_limits<std::size_t>::max();

struct GlobalPoolState {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;
  std::size_t requested = kThreadsUnset;  // raw request; 0 = hardware
  bool atexit_registered = false;
};

GlobalPoolState& global_state() {
  static GlobalPoolState state;
  return state;
}

/// Resolves the raw request (reading the environment on first use).
std::size_t resolved_request_locked(GlobalPoolState& state) {
  if (state.requested == kThreadsUnset) state.requested = thread_count_from_env();
  if (state.requested == 0)
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return state.requested;
}

}  // namespace

std::size_t parse_thread_count(std::string_view text) {
  const auto fail = [&](const char* why) -> std::size_t {
    throw std::invalid_argument(
        format("invalid thread count '%.*s': %s (expected 0 = all cores, "
               "1 = serial, or a positive integer <= %zu)",
               static_cast<int>(text.size()), text.data(), why, kMaxThreadCount));
  };
  if (text.empty()) return fail("empty");
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) return fail("out of range");
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return fail("not a non-negative integer");
  if (value > kMaxThreadCount) return fail("out of range");
  return value;
}

std::size_t thread_count_from_env() {
  const char* raw = std::getenv("HPCPOWER_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  try {
    return parse_thread_count(raw);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("HPCPOWER_THREADS: ") + e.what());
  }
}

void set_global_thread_count(std::size_t threads) {
  std::unique_ptr<ThreadPool> doomed;
  {
    auto& state = global_state();
    const std::lock_guard lock(state.mutex);
    state.requested = threads;
    const std::size_t want = resolved_request_locked(state);
    if (state.pool && state.pool->thread_count() != want)
      doomed = std::move(state.pool);
  }
  // Joined outside the lock so late helper tasks that need the registry
  // mutex (none today, but cheap insurance) cannot deadlock.
  doomed.reset();
}

std::size_t global_thread_count() {
  auto& state = global_state();
  const std::lock_guard lock(state.mutex);
  return resolved_request_locked(state);
}

ThreadPool& global_pool() {
  auto& state = global_state();
  const std::lock_guard lock(state.mutex);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(resolved_request_locked(state));
    if (!state.atexit_registered) {
      state.atexit_registered = true;
      // Join before static destruction: a task still queued at exit runs to
      // completion here, while the globals it references (constructed before
      // this registration) are still alive.
      std::atexit([] { shutdown_global_pool(); });
    }
  }
  return *state.pool;
}

void shutdown_global_pool() {
  std::unique_ptr<ThreadPool> doomed;
  {
    auto& state = global_state();
    const std::lock_guard lock(state.mutex);
    doomed = std::move(state.pool);
  }
  doomed.reset();  // drains the queue and joins workers deterministically
}

}  // namespace hpcpower::util

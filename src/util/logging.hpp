#pragma once
// Leveled stderr logging with a process-wide threshold, plus a process-wide
// named-counter registry and the per-thread log-context stack.
//
// Simulation and analysis code logs progress at Info; tests set the threshold
// to Warn to keep output clean. Not a general logging framework on purpose.
//
// Counters exist so that rare-event code paths (telemetry faults, ingest
// repairs, skipped CSV rows) are *countable* by tests and reports instead of
// having their stderr output scraped. Names are dotted lowercase, e.g.
// "telemetry.samples.glitch" or "csv.rows_skipped".
//
// The log context is the low-level half of the observability layer's spans
// (obs/span.hpp): obs::Span pushes its name here so every stderr line can be
// attributed to the innermost active phase. It lives in util (not obs)
// because the logger itself reads it and util must stay dependency-free.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcpower::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

// ---- per-thread log context (innermost active span) -----------------------

/// Pushes `name` onto this thread's context stack; the innermost name is
/// prefixed to every log line the thread emits. `name` must outlive the
/// scope (obs::Span passes string literals). Pushes beyond the fixed depth
/// are counted but not stored, so push/pop always balance.
void push_log_context(const char* name) noexcept;
void pop_log_context() noexcept;
/// Innermost active context name, or nullptr outside any context.
[[nodiscard]] const char* current_log_context() noexcept;

/// Renders one log line ("[hpcpower WARN telemetry.tick] message") without
/// emitting it; log() uses this, and tests assert on it directly.
[[nodiscard]] std::string format_log_line(LogLevel level, const std::string& message);

/// Per-thread label for traces and diagnostics. Defaults to "main"; the
/// thread pool labels its workers "worker-<i>".
void set_thread_label(std::string label);
[[nodiscard]] const std::string& thread_label() noexcept;

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

/// Thread-safe registry of monotonically increasing named counters.
class CounterRegistry {
 public:
  /// Adds `delta` to the named counter, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Current value; zero for counters never touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// All counters, sorted by name (for reports and debugging).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  /// Removes every counter. Tests call this to isolate expectations.
  void reset();
};

/// The process-wide counter registry.
[[nodiscard]] CounterRegistry& counters() noexcept;

}  // namespace hpcpower::util

#pragma once
// Leveled stderr logging with a process-wide threshold.
//
// Simulation and analysis code logs progress at Info; tests set the threshold
// to Warn to keep output clean. Not a general logging framework on purpose.

#include <string>

namespace hpcpower::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace hpcpower::util

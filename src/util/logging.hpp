#pragma once
// Leveled stderr logging with a process-wide threshold, plus a process-wide
// named-counter registry.
//
// Simulation and analysis code logs progress at Info; tests set the threshold
// to Warn to keep output clean. Not a general logging framework on purpose.
//
// Counters exist so that rare-event code paths (telemetry faults, ingest
// repairs, skipped CSV rows) are *countable* by tests and reports instead of
// having their stderr output scraped. Names are dotted lowercase, e.g.
// "telemetry.samples.glitch" or "csv.rows_skipped".

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcpower::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

/// Thread-safe registry of monotonically increasing named counters.
class CounterRegistry {
 public:
  /// Adds `delta` to the named counter, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Current value; zero for counters never touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// All counters, sorted by name (for reports and debugging).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  /// Removes every counter. Tests call this to isolate expectations.
  void reset();
};

/// The process-wide counter registry.
[[nodiscard]] CounterRegistry& counters() noexcept;

}  // namespace hpcpower::util

#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The analysis passes (per-job temporal/spatial metrics, ML cross-validation
// repeats) are embarrassingly parallel across jobs; this pool provides
// deterministic-result parallelism: work items write to disjoint output
// slots, so results are identical regardless of thread count.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hpcpower::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Work is chunked
  /// to keep scheduling overhead low. Exceptions from fn propagate (first one
  /// wins). Runs inline when n is small or the pool has one thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool for library internals; sized from hardware_concurrency.
ThreadPool& global_pool();

}  // namespace hpcpower::util

#pragma once
// Fixed-size thread pool with a re-entrant parallel_for helper, plus the
// process-wide parallelism configuration (HPCPOWER_THREADS).
//
// Determinism contract: the analysis passes (per-minute telemetry synthesis,
// per-job temporal/spatial metrics, ML cross-validation folds) are
// embarrassingly parallel; this pool provides deterministic-result
// parallelism. Work items write to disjoint output slots and every
// floating-point reduction happens in a fixed order chosen by the caller, so
// results are bit-identical regardless of thread count. The contract is
// enforced by tests/test_parallel_determinism.cpp; the sharding rules are
// documented in DESIGN.md §5.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>
#include <vector>

namespace hpcpower::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains the queue (pending tasks run to completion) and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Fire-and-forget enqueue without the packaged_task/future overhead.
  /// The task must not throw (exceptions would terminate the worker).
  void post(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Work is chunked
  /// to keep scheduling overhead low; the calling thread participates in
  /// execution, so parallel_for may be nested inside pool tasks without
  /// deadlock (helpers that never get scheduled are skipped and the caller
  /// drains the range itself). If several work items throw, the exception
  /// with the lowest index propagates and the remaining unclaimed chunks are
  /// cancelled; the pool stays usable. Runs inline when n is small or the
  /// pool has one thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct ForState;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// ---- process-wide parallelism configuration --------------------------------
//
// Thread-count resolution, highest precedence first:
//   1. set_global_thread_count() (benches/tests; Options::threads() feeds it),
//   2. the HPCPOWER_THREADS environment variable,
//   3. hardware_concurrency.
// The value 0 means "all hardware threads"; 1 selects the serial reference
// path (no pool is created at all).

/// Parses a thread-count string: a base-10 non-negative integer, at most
/// kMaxThreadCount. Throws std::invalid_argument with a descriptive message
/// on empty/non-numeric/negative/absurd input.
inline constexpr std::size_t kMaxThreadCount = 1024;
[[nodiscard]] std::size_t parse_thread_count(std::string_view text);

/// Reads HPCPOWER_THREADS; returns 0 (= all cores) when unset. Throws
/// std::invalid_argument (naming the variable) when set but invalid.
[[nodiscard]] std::size_t thread_count_from_env();

/// Overrides the process-wide thread count (0 = hardware). If a global pool
/// of a different size exists it is joined and rebuilt lazily on next use.
/// Must not be called concurrently with global-pool work, nor from inside a
/// pool task.
void set_global_thread_count(std::size_t threads);

/// The resolved process-wide thread count (>= 1).
[[nodiscard]] std::size_t global_thread_count();

/// Process-wide pool for library internals, sized per global_thread_count().
/// First use registers an atexit hook that joins the pool before static
/// destruction, so tasks still queued at exit cannot use freed globals.
[[nodiscard]] ThreadPool& global_pool();

/// Deterministic teardown: drains pending tasks and joins all workers.
/// Idempotent; a later global_pool() call recreates the pool. Demos and tests
/// call this before exiting so teardown never races static destruction. Must
/// not be called from inside a pool task.
void shutdown_global_pool();

}  // namespace hpcpower::util

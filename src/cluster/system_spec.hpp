#pragma once
// System models for the two clusters under study (paper Table 1).
//
// Everything the analysis needs about a machine is captured here: node count,
// node-level TDP (PKG + DRAM), how nodes share chassis, the micro-architecture
// power scaling that makes the same application draw different power on Emmy
// (22 nm IvyBridge) vs Meggie (14 nm Broadwell), and display metadata for the
// Table 1 bench.

#include <cstdint>
#include <string>
#include <vector>

namespace hpcpower::cluster {

/// Identifier for the studied systems; Custom supports user-defined specs.
enum class SystemId { kEmmy, kMeggie, kCustom };

[[nodiscard]] const char* system_name(SystemId id) noexcept;

struct SystemSpec {
  SystemId id = SystemId::kCustom;
  std::string name;

  // Capacity / power (Table 1).
  std::uint32_t node_count = 0;
  double node_tdp_watts = 0.0;       // CPU + DRAM TDP per node
  std::uint32_t nodes_per_chassis = 4;

  // Micro-architecture model. `arch_power_scale` multiplies an application's
  // reference per-node power draw; Meggie's 14 nm Broadwell parts run the
  // same codes at lower power than Emmy's 22 nm IvyBridge parts.
  double arch_power_scale = 1.0;
  // Idle (unloaded) PKG+DRAM draw as a fraction of TDP; RAPL never reads 0.
  double idle_power_fraction = 0.18;
  // Std-dev of the static per-node manufacturing variability factor.
  double manufacturing_sigma = 0.045;

  // Descriptive fields surfaced by the Table 1 reproduction.
  std::string enclosure;
  std::string mainboard;
  std::string processors;
  std::string turbo_smt;
  std::string main_memory;
  std::string interconnect;
  std::string network_topology;
  std::string operating_system;
  std::string batch_system;
  double linpack_tflops = 0.0;
  double linpack_power_kw = 0.0;
  std::string inflow_temperature;
  std::string cooling;

  /// Total provisioned power budget: every node at TDP (the worst-case
  /// provisioning the paper says facilities pay for).
  [[nodiscard]] double provisioned_power_watts() const noexcept {
    return static_cast<double>(node_count) * node_tdp_watts;
  }
};

/// Emmy: 560 IvyBridge nodes, 210 W node TDP, Torque/Maui (Table 1).
[[nodiscard]] SystemSpec emmy_spec();

/// Meggie: 728 Broadwell nodes, 195 W node TDP, Slurm (Table 1).
[[nodiscard]] SystemSpec meggie_spec();

/// Both studied systems, Emmy first.
[[nodiscard]] std::vector<SystemSpec> studied_systems();

/// Renders the spec as Table 1 style "field: value" lines.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> spec_rows(
    const SystemSpec& spec);

}  // namespace hpcpower::cluster

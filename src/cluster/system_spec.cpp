#include "cluster/system_spec.hpp"

#include "util/strings.hpp"

namespace hpcpower::cluster {

const char* system_name(SystemId id) noexcept {
  switch (id) {
    case SystemId::kEmmy: return "Emmy";
    case SystemId::kMeggie: return "Meggie";
    case SystemId::kCustom: return "Custom";
  }
  return "?";
}

SystemSpec emmy_spec() {
  SystemSpec s;
  s.id = SystemId::kEmmy;
  s.name = "Emmy";
  s.node_count = 560;
  s.node_tdp_watts = 210.0;
  s.nodes_per_chassis = 4;
  s.arch_power_scale = 1.0;   // reference architecture (22 nm IvyBridge)
  s.idle_power_fraction = 0.20;
  s.manufacturing_sigma = 0.025;
  s.enclosure =
      "Supermicro SuperServer 6027TR-HTQRF, 1x 1620 W PSU, 4x 8cm PWM fans "
      "(shared by 4 compute nodes)";
  s.mainboard = "Supermicro X9DRT-IBQF";
  s.processors = "2x Intel Xeon E5-2660 v2";
  s.turbo_smt = "enabled / enabled";
  s.main_memory = "8x 8 GB DDR3-1600";
  s.interconnect = "on-board Mellanox QDR Infiniband HCA";
  s.network_topology = "fat-tree";
  s.operating_system = "CentOS 7.6";
  s.batch_system = "Torque-4.2.10 with maui-3.3.2";
  s.linpack_tflops = 191.0;
  s.linpack_power_kw = 170.0;
  s.inflow_temperature = "26-28 degC";
  s.cooling = "rear door coolers";
  return s;
}

SystemSpec meggie_spec() {
  SystemSpec s;
  s.id = SystemId::kMeggie;
  s.name = "Meggie";
  s.node_count = 728;
  s.node_tdp_watts = 195.0;
  s.nodes_per_chassis = 4;
  // 14 nm Broadwell + aggressive power optimizations: the paper measures the
  // same applications drawing noticeably less per-node power than on Emmy.
  s.arch_power_scale = 0.80;
  s.idle_power_fraction = 0.17;
  s.manufacturing_sigma = 0.022;
  s.enclosure =
      "Intel H2312XXLR2, 2x 1600 W PSU, 12x 4cm RWM fans (shared by 4 compute nodes)";
  s.mainboard = "Intel S2600KPR";
  s.processors = "2x Intel E5-2630 v4";
  s.turbo_smt = "enabled / disabled";
  s.main_memory = "8x 8 GB DDR4-2133";
  s.interconnect = "100 GBit Intel OmniPath as x16 PCIe card";
  s.network_topology = "1:2 blocking";
  s.operating_system = "CentOS 7.6";
  s.batch_system = "Slurm 17.11";
  s.linpack_tflops = 472.0;
  s.linpack_power_kw = 210.0;
  s.inflow_temperature = "28-30 degC";
  s.cooling = "rear door coolers";
  return s;
}

std::vector<SystemSpec> studied_systems() { return {emmy_spec(), meggie_spec()}; }

std::vector<std::pair<std::string, std::string>> spec_rows(const SystemSpec& spec) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("number of nodes", std::to_string(spec.node_count));
  rows.emplace_back("enclosures", spec.enclosure);
  rows.emplace_back("mainboards", spec.mainboard);
  rows.emplace_back("processors", spec.processors);
  rows.emplace_back("node TDP", util::format("%.0f W", spec.node_tdp_watts));
  rows.emplace_back("turbo mode / SMT", spec.turbo_smt);
  rows.emplace_back("main memory", spec.main_memory);
  rows.emplace_back("local storage", "none");
  rows.emplace_back("high speed interconnect", spec.interconnect);
  rows.emplace_back("network topology", spec.network_topology);
  rows.emplace_back("operating system", spec.operating_system);
  rows.emplace_back("batch queuing system", spec.batch_system);
  rows.emplace_back("node access", "job-exclusive");
  rows.emplace_back("LINPACK performance",
                    util::format("%.0f TFlops/s", spec.linpack_tflops));
  rows.emplace_back("total LINPACK power",
                    util::format("%.0f kW", spec.linpack_power_kw));
  rows.emplace_back("inflow temperatures", spec.inflow_temperature);
  rows.emplace_back("cooling", spec.cooling);
  return rows;
}

}  // namespace hpcpower::cluster

#include "cluster/node.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hpcpower::cluster {

NodePopulation::NodePopulation(const SystemSpec& spec, util::Rng& rng) {
  nodes_.reserve(spec.node_count);
  for (NodeId id = 0; id < spec.node_count; ++id) {
    Node n;
    n.id = id;
    n.chassis = id / std::max<std::uint32_t>(1, spec.nodes_per_chassis);
    n.power_factor = rng.truncated_normal(1.0, spec.manufacturing_sigma,
                                          1.0 - 3.0 * spec.manufacturing_sigma,
                                          1.0 + 3.0 * spec.manufacturing_sigma);
    nodes_.push_back(n);
  }
}

double NodePopulation::mean_power_factor() const noexcept {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.power_factor;
  return sum / static_cast<double>(nodes_.size());
}

NodeAllocator::NodeAllocator(std::uint32_t node_count)
    : total_(node_count), state_(node_count, State::kFree) {
  free_.resize(node_count);
  // Pop from the back; seed so node 0 is allocated first.
  for (std::uint32_t i = 0; i < node_count; ++i) free_[i] = node_count - 1 - i;
}

std::vector<NodeId> NodeAllocator::allocate(std::uint32_t count) {
  if (count > free_.size()) return {};
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId id = free_.back();
    free_.pop_back();
    state_[id] = State::kBusy;
    out.push_back(id);
  }
  return out;
}

void NodeAllocator::release(const std::vector<NodeId>& nodes) {
  for (NodeId id : nodes) {
    if (id >= total_ || state_[id] != State::kBusy)
      throw std::logic_error("NodeAllocator::release: node not allocated");
    state_[id] = State::kFree;
    free_.push_back(id);
  }
}

void NodeAllocator::drain(NodeId id) {
  if (id >= total_ || state_[id] != State::kFree)
    throw std::logic_error("NodeAllocator::drain: node not free");
  // Drained nodes are rare, so a linear erase keeps the stack's allocation
  // order intact for the remaining free nodes (checkpoint bit-identity).
  const auto it = std::find(free_.begin(), free_.end(), id);
  free_.erase(it);
  state_[id] = State::kDrained;
  ++drained_;
}

void NodeAllocator::undrain(NodeId id) {
  if (id >= total_ || state_[id] != State::kDrained)
    throw std::logic_error("NodeAllocator::undrain: node not drained");
  state_[id] = State::kFree;
  free_.push_back(id);
  --drained_;
}

void NodeAllocator::restore(const std::vector<NodeId>& free_order,
                            const std::vector<NodeId>& drained) {
  if (free_order.size() + drained.size() > total_)
    throw std::logic_error("NodeAllocator::restore: more nodes than exist");
  std::fill(state_.begin(), state_.end(), State::kBusy);
  free_ = free_order;
  for (NodeId id : free_) {
    if (id >= total_ || state_[id] != State::kBusy)
      throw std::logic_error("NodeAllocator::restore: bad free list");
    state_[id] = State::kFree;
  }
  drained_ = 0;
  for (NodeId id : drained) {
    if (id >= total_ || state_[id] != State::kBusy)
      throw std::logic_error("NodeAllocator::restore: bad drained list");
    state_[id] = State::kDrained;
    ++drained_;
  }
}

}  // namespace hpcpower::cluster

#include "cluster/node.hpp"

#include <numeric>
#include <stdexcept>

namespace hpcpower::cluster {

NodePopulation::NodePopulation(const SystemSpec& spec, util::Rng& rng) {
  nodes_.reserve(spec.node_count);
  for (NodeId id = 0; id < spec.node_count; ++id) {
    Node n;
    n.id = id;
    n.chassis = id / std::max<std::uint32_t>(1, spec.nodes_per_chassis);
    n.power_factor = rng.truncated_normal(1.0, spec.manufacturing_sigma,
                                          1.0 - 3.0 * spec.manufacturing_sigma,
                                          1.0 + 3.0 * spec.manufacturing_sigma);
    nodes_.push_back(n);
  }
}

double NodePopulation::mean_power_factor() const noexcept {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.power_factor;
  return sum / static_cast<double>(nodes_.size());
}

NodeAllocator::NodeAllocator(std::uint32_t node_count)
    : total_(node_count), is_free_(node_count, true) {
  free_.resize(node_count);
  // Pop from the back; seed so node 0 is allocated first.
  for (std::uint32_t i = 0; i < node_count; ++i) free_[i] = node_count - 1 - i;
}

std::vector<NodeId> NodeAllocator::allocate(std::uint32_t count) {
  if (count > free_.size()) return {};
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId id = free_.back();
    free_.pop_back();
    is_free_[id] = false;
    out.push_back(id);
  }
  return out;
}

void NodeAllocator::release(const std::vector<NodeId>& nodes) {
  for (NodeId id : nodes) {
    if (id >= total_ || is_free_[id])
      throw std::logic_error("NodeAllocator::release: node not allocated");
    is_free_[id] = true;
    free_.push_back(id);
  }
}

}  // namespace hpcpower::cluster

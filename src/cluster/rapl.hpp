#pragma once
// RAPL-style power domain model.
//
// The paper measures node power as the sum of the PKG (CPU socket) and DRAM
// RAPL domains, sampled as one-minute averages. This model splits a node's
// total draw between the two domains according to the workload's memory
// intensity, and can apply a per-domain power cap (RAPL's power limiting is
// what production power-management tools actuate).

namespace hpcpower::cluster {

/// One averaged RAPL reading for one node over one sampling interval.
struct RaplSample {
  double pkg_watts = 0.0;
  double dram_watts = 0.0;

  [[nodiscard]] double total() const noexcept { return pkg_watts + dram_watts; }
};

/// Splits node power into PKG/DRAM domains.
///
/// `memory_intensity` in [0,1] shifts draw toward DRAM: compute-bound codes
/// (LINPACK, MD) sit near 0.1-0.2; memory-bandwidth-bound CFD codes near
/// 0.4-0.6.
[[nodiscard]] RaplSample split_domains(double node_watts, double memory_intensity) noexcept;

/// Per-node power cap. Capping clamps each domain proportionally so the node
/// total does not exceed `cap_watts` (mimics RAPL package+DRAM limits).
/// Returns the capped sample and reports whether clamping occurred.
struct CappedSample {
  RaplSample sample;
  bool throttled = false;
};
[[nodiscard]] CappedSample apply_power_cap(const RaplSample& sample,
                                           double cap_watts) noexcept;

/// Performance degradation model under a cap: running below the demanded
/// power stretches runtime roughly inversely (power ~ work rate for the
/// capped region above idle). Returns the slowdown factor (>= 1).
[[nodiscard]] double cap_slowdown(double demanded_watts, double cap_watts,
                                  double idle_watts) noexcept;

}  // namespace hpcpower::cluster

#pragma once
// Node population with per-node manufacturing variability.
//
// Manufacturing variability is one of the two causes the paper names for the
// surprising spatial power spread inside a single job (Sec 4). Each node gets
// a persistent multiplicative power factor drawn once at "installation".

#include <cstdint>
#include <vector>

#include "cluster/system_spec.hpp"
#include "util/prng.hpp"

namespace hpcpower::cluster {

using NodeId = std::uint32_t;

struct Node {
  NodeId id = 0;
  std::uint32_t chassis = 0;
  /// Persistent power multiplier from process variation (mean ~1.0). The
  /// same code on the same input draws `power_factor` times the reference
  /// power on this node.
  double power_factor = 1.0;
};

class NodePopulation {
 public:
  /// Draws every node's power factor from a truncated normal
  /// N(1, manufacturing_sigma) clipped to +/- 3 sigma.
  NodePopulation(const SystemSpec& spec, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Mean of all power factors (should be ~1).
  [[nodiscard]] double mean_power_factor() const noexcept;

 private:
  std::vector<Node> nodes_;
};

/// Tracks node availability for the scheduler. Nodes are interchangeable for
/// placement (both systems expose flat exclusive-node allocation), but
/// identities matter because power factors are per-node.
class NodeAllocator {
 public:
  explicit NodeAllocator(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t total_count() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t busy_count() const noexcept {
    return total_ - free_count();
  }

  /// Allocates `count` nodes; returns empty if not enough are free.
  [[nodiscard]] std::vector<NodeId> allocate(std::uint32_t count);
  /// Returns nodes to the free pool. Double-free is rejected.
  void release(const std::vector<NodeId>& nodes);

 private:
  std::uint32_t total_;
  std::vector<NodeId> free_;       // stack of free node ids
  std::vector<bool> is_free_;
};

}  // namespace hpcpower::cluster

#pragma once
// Node population with per-node manufacturing variability.
//
// Manufacturing variability is one of the two causes the paper names for the
// surprising spatial power spread inside a single job (Sec 4). Each node gets
// a persistent multiplicative power factor drawn once at "installation".

#include <cstdint>
#include <vector>

#include "cluster/system_spec.hpp"
#include "util/prng.hpp"

namespace hpcpower::cluster {

using NodeId = std::uint32_t;

struct Node {
  NodeId id = 0;
  std::uint32_t chassis = 0;
  /// Persistent power multiplier from process variation (mean ~1.0). The
  /// same code on the same input draws `power_factor` times the reference
  /// power on this node.
  double power_factor = 1.0;
};

class NodePopulation {
 public:
  /// Draws every node's power factor from a truncated normal
  /// N(1, manufacturing_sigma) clipped to +/- 3 sigma.
  NodePopulation(const SystemSpec& spec, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Mean of all power factors (should be ~1).
  [[nodiscard]] double mean_power_factor() const noexcept;

 private:
  std::vector<Node> nodes_;
};

/// Tracks node availability for the scheduler. Nodes are interchangeable for
/// placement (both systems expose flat exclusive-node allocation), but
/// identities matter because power factors are per-node. A node is in exactly
/// one of three states: free (allocatable), busy (held by a job), or drained
/// (failed / under repair — invisible to placement until undrained).
class NodeAllocator {
 public:
  explicit NodeAllocator(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t total_count() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t drained_count() const noexcept { return drained_; }
  [[nodiscard]] std::uint32_t busy_count() const noexcept {
    return total_ - free_count() - drained_;
  }

  /// Allocates `count` nodes; returns empty if not enough are free.
  [[nodiscard]] std::vector<NodeId> allocate(std::uint32_t count);
  /// Returns nodes to the free pool. Double-free is rejected.
  void release(const std::vector<NodeId>& nodes);

  /// Takes a free node out of service (failed node after its job was killed).
  /// The node must currently be free.
  void drain(NodeId id);
  /// Returns a repaired node to the free pool. The node must be drained.
  void undrain(NodeId id);
  [[nodiscard]] bool is_drained(NodeId id) const { return state_.at(id) == State::kDrained; }

  /// Exact free-stack order (back is allocated first). Allocation identity
  /// depends on this order, so checkpoints must serialize and restore it
  /// verbatim for resumed campaigns to place jobs bit-identically.
  [[nodiscard]] const std::vector<NodeId>& free_order() const noexcept { return free_; }

  /// Rebuilds the allocator from a checkpoint: `free_order` verbatim (stack
  /// order preserved), `drained` out of service, every other node busy.
  void restore(const std::vector<NodeId>& free_order,
               const std::vector<NodeId>& drained);

 private:
  enum class State : std::uint8_t { kFree, kBusy, kDrained };

  std::uint32_t total_;
  std::uint32_t drained_ = 0;
  std::vector<NodeId> free_;       // stack of free node ids
  std::vector<State> state_;
};

}  // namespace hpcpower::cluster

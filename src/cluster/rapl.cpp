#include "cluster/rapl.hpp"

#include <algorithm>

namespace hpcpower::cluster {

RaplSample split_domains(double node_watts, double memory_intensity) noexcept {
  const double mem = std::clamp(memory_intensity, 0.0, 1.0);
  // DRAM domain share grows with memory intensity but saturates: even fully
  // bandwidth-bound codes keep the majority of draw in the package.
  const double dram_share = 0.08 + 0.30 * mem;
  RaplSample s;
  s.dram_watts = node_watts * dram_share;
  s.pkg_watts = node_watts - s.dram_watts;
  return s;
}

CappedSample apply_power_cap(const RaplSample& sample, double cap_watts) noexcept {
  CappedSample out;
  out.sample = sample;
  const double total = sample.total();
  if (cap_watts <= 0.0 || total <= cap_watts || total <= 0.0) return out;
  const double scale = cap_watts / total;
  out.sample.pkg_watts *= scale;
  out.sample.dram_watts *= scale;
  out.throttled = true;
  return out;
}

double cap_slowdown(double demanded_watts, double cap_watts, double idle_watts) noexcept {
  if (cap_watts <= 0.0 || demanded_watts <= cap_watts) return 1.0;
  // Work rate scales with dynamic power (above idle). Capping to below idle
  // would stall entirely; clamp to a large-but-finite slowdown instead.
  const double dynamic_demand = std::max(demanded_watts - idle_watts, 1e-9);
  const double dynamic_available = cap_watts - idle_watts;
  if (dynamic_available <= 1e-9) return 100.0;
  return std::min(100.0, dynamic_demand / dynamic_available);
}

}  // namespace hpcpower::cluster

#include "trace/system_series.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

const std::vector<std::string>& system_series_columns() {
  static const std::vector<std::string> kColumns = {"minute", "busy_nodes",
                                                    "total_power_w"};
  return kColumns;
}

void write_system_series(std::ostream& out, const telemetry::SystemSeries& series) {
  if (series.total_power_w.size() != series.busy_nodes.size())
    throw std::invalid_argument("system series: ragged series");
  util::CsvWriter w(out);
  w.write_row(system_series_columns());
  for (std::size_t m = 0; m < series.total_power_w.size(); ++m)
    w.write(m, series.busy_nodes[m], series.total_power_w[m]);
}

telemetry::SystemSeries read_system_series(std::istream& in) {
  util::CsvReader reader(in);
  if (reader.header() != system_series_columns())
    throw std::invalid_argument("system series: schema mismatch");
  telemetry::SystemSeries series;
  std::size_t row_no = 0;
  std::size_t expected_minute = 0;
  while (auto row = reader.next()) {
    ++row_no;
    try {
      const auto minute = row->as_uint("minute");
      if (minute != expected_minute)
        throw std::invalid_argument(
            util::format("non-contiguous minute %llu (expected %zu)",
                         static_cast<unsigned long long>(minute), expected_minute));
      ++expected_minute;
      series.busy_nodes.push_back(
          static_cast<std::uint32_t>(row->as_uint("busy_nodes")));
      series.total_power_w.push_back(row->as_double("total_power_w"));
    } catch (const std::exception& e) {
      throw std::invalid_argument(
          util::format("system series row %zu: %s", row_no, e.what()));
    }
  }
  return series;
}

void save_system_series(const std::string& path,
                        const telemetry::SystemSeries& series) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_system_series(out, series);
  if (!out) throw std::runtime_error("write failed: " + path);
}

telemetry::SystemSeries load_system_series(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_system_series(in);
}

}  // namespace hpcpower::trace

#include "trace/system_series.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

const std::vector<std::string>& system_series_columns() {
  static const std::vector<std::string> kColumns = {"minute", "busy_nodes",
                                                    "total_power_w"};
  return kColumns;
}

void write_system_series(std::ostream& out, const telemetry::SystemSeries& series) {
  if (series.total_power_w.size() != series.busy_nodes.size())
    throw std::invalid_argument("system series: ragged series");
  util::CsvWriter w(out);
  w.write_row(system_series_columns());
  for (std::size_t m = 0; m < series.total_power_w.size(); ++m)
    w.write(m, series.busy_nodes[m], series.total_power_w[m]);
}

telemetry::SystemSeries read_system_series(std::istream& in) {
  util::CsvReader reader(in);
  if (reader.header() != system_series_columns())
    throw std::invalid_argument("system series: schema mismatch");
  telemetry::SystemSeries series;
  std::size_t row_no = 0;
  std::size_t expected_minute = 0;
  while (auto row = reader.next()) {
    ++row_no;
    try {
      const auto minute = row->as_uint("minute");
      if (minute != expected_minute)
        throw std::invalid_argument(
            util::format("non-contiguous minute %llu (expected %zu)",
                         static_cast<unsigned long long>(minute), expected_minute));
      ++expected_minute;
      series.busy_nodes.push_back(
          static_cast<std::uint32_t>(row->as_uint("busy_nodes")));
      series.total_power_w.push_back(row->as_double("total_power_w"));
    } catch (const std::exception& e) {
      throw std::invalid_argument(
          util::format("system series row %zu: %s", row_no, e.what()));
    }
  }
  return series;
}

namespace {
const std::vector<storage::ColumnSpec>& system_series_hpcb_schema() {
  using storage::ColumnType;
  static const std::vector<storage::ColumnSpec> kSchema = {
      {"minute", ColumnType::kInt64Delta},
      {"busy_nodes", ColumnType::kInt64Delta},
      {"total_power_w", ColumnType::kFloat64Xor},
  };
  return kSchema;
}
}  // namespace

void write_system_series_hpcb(std::ostream& out, const telemetry::SystemSeries& series,
                              std::size_t rows_per_block) {
  if (series.total_power_w.size() != series.busy_nodes.size())
    throw std::invalid_argument("system series: ragged series");
  storage::Table table;
  table.schema = system_series_hpcb_schema();
  table.columns.resize(table.schema.size());
  for (std::size_t m = 0; m < series.total_power_w.size(); ++m) {
    table.columns[0].i64.push_back(static_cast<std::int64_t>(m));
    table.columns[1].i64.push_back(static_cast<std::int64_t>(series.busy_nodes[m]));
    table.columns[2].f64.push_back(series.total_power_w[m]);
  }
  storage::write_hpcb(out, table, rows_per_block);
}

telemetry::SystemSeries read_system_series_hpcb(std::istream& in,
                                                storage::ReadStats* stats) {
  // Always strict: a system series with missing minutes is not a usable
  // series (the CSV reader enforces the same contiguity).
  const storage::Table table = storage::read_hpcb(in, {}, stats);
  if (!schema_compatible(table.schema, system_series_hpcb_schema()))
    throw std::invalid_argument("system series: schema mismatch");
  telemetry::SystemSeries series;
  for (std::size_t i = 0; i < table.rows(); ++i) {
    const std::int64_t minute = table.columns[0].i64[i];
    if (minute != static_cast<std::int64_t>(i))
      throw std::invalid_argument(
          util::format("system series row %zu: non-contiguous minute %lld", i,
                       static_cast<long long>(minute)));
    const std::int64_t busy = table.columns[1].i64[i];
    if (busy < 0 || busy > 0xFFFFFFFF)
      throw std::invalid_argument(
          util::format("system series row %zu: busy_nodes out of range", i));
    series.busy_nodes.push_back(static_cast<std::uint32_t>(busy));
    series.total_power_w.push_back(table.columns[2].f64[i]);
  }
  return series;
}

void save_system_series(const std::string& path,
                        const telemetry::SystemSeries& series,
                        TraceFormat format) {
  const TraceFormat resolved = resolve_save_format(format, path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  if (resolved == TraceFormat::kHpcb)
    write_system_series_hpcb(out, series);
  else
    write_system_series(out, series);
  if (!out) throw std::runtime_error("write failed: " + path);
}

telemetry::SystemSeries load_system_series(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  if (resolve_load_format(TraceFormat::kAuto, in) == TraceFormat::kHpcb)
    return read_system_series_hpcb(in);
  return read_system_series(in);
}

}  // namespace hpcpower::trace

#pragma once
// Trace replay: reconstruct a schedulable job stream from a job table.
//
// Closes the open-data loop: a job table (ours, or a CSV export of a real
// dataset like the paper's Zenodo release) can be replayed through the
// scheduler + telemetry pipeline, e.g. to evaluate what-if policies (power
// caps, different scheduling) against recorded workloads. Power behaviour is
// rebuilt from the recorded aggregates: base level from the mean power,
// temporal shape approximated from the recorded temporal std and peak.

#include <string>
#include <vector>

#include "cluster/system_spec.hpp"
#include "telemetry/job_record.hpp"
#include "workload/generator.hpp"

namespace hpcpower::trace {

struct ReplayOptions {
  std::uint64_t seed = 42;
  /// Re-submit at recorded submit times (true) or at recorded start times
  /// (false; removes queueing effects so placement matches the trace).
  bool use_submit_times = true;
};

/// Builds JobRequests from job records. Records are replayed against the
/// given system spec (idle/TDP bounds come from it). Truncated records are
/// skipped. The result is sorted by submit time and ready for
/// sched::CampaignSimulator.
[[nodiscard]] std::vector<workload::JobRequest> replay_jobs(
    const std::vector<telemetry::JobRecord>& records,
    const cluster::SystemSpec& spec, const ReplayOptions& options = {});

/// Replays straight from a job-table file in either container format (CSV or
/// .hpcb, auto-detected by magic bytes — see trace/format.hpp). `lenient` is
/// forwarded to the table reader.
[[nodiscard]] std::vector<workload::JobRequest> replay_jobs_from_file(
    const std::string& path, const cluster::SystemSpec& spec,
    const ReplayOptions& options = {}, bool lenient = false);

}  // namespace hpcpower::trace

#pragma once
// System-series trace format: the per-minute machine-level data behind
// Figs 1-2 (busy nodes, total power), released alongside the job table.

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/pipeline.hpp"

namespace hpcpower::trace {

[[nodiscard]] const std::vector<std::string>& system_series_columns();

void write_system_series(std::ostream& out, const telemetry::SystemSeries& series);

/// Parses a system-series file. Throws std::invalid_argument on schema or
/// row errors.
[[nodiscard]] telemetry::SystemSeries read_system_series(std::istream& in);

void save_system_series(const std::string& path,
                        const telemetry::SystemSeries& series);
[[nodiscard]] telemetry::SystemSeries load_system_series(const std::string& path);

}  // namespace hpcpower::trace

#pragma once
// System-series trace format: the per-minute machine-level data behind
// Figs 1-2 (busy nodes, total power), released alongside the job table.

#include <iosfwd>
#include <string>
#include <vector>

#include "storage/hpcb.hpp"
#include "telemetry/pipeline.hpp"
#include "trace/format.hpp"

namespace hpcpower::trace {

[[nodiscard]] const std::vector<std::string>& system_series_columns();

void write_system_series(std::ostream& out, const telemetry::SystemSeries& series);

/// Parses a system-series file. Throws std::invalid_argument on schema or
/// row errors.
[[nodiscard]] telemetry::SystemSeries read_system_series(std::istream& in);

/// .hpcb (binary columnar) writer/reader for the same series; minutes must
/// be contiguous from zero, as in the CSV reader.
void write_system_series_hpcb(std::ostream& out, const telemetry::SystemSeries& series,
                              std::size_t rows_per_block = storage::kDefaultRowsPerBlock);
[[nodiscard]] telemetry::SystemSeries read_system_series_hpcb(
    std::istream& in, storage::ReadStats* stats = nullptr);

/// Saving resolves kAuto from the extension (".hpcb" → binary, else CSV);
/// loading auto-detects the format from the file's magic bytes.
void save_system_series(const std::string& path,
                        const telemetry::SystemSeries& series,
                        TraceFormat format = TraceFormat::kAuto);
[[nodiscard]] telemetry::SystemSeries load_system_series(const std::string& path);

}  // namespace hpcpower::trace

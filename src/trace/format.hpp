#pragma once
// Trace container format selection shared by every trace table.
//
// Two on-disk formats carry the same tables: text CSV (human-greppable,
// lossy at %.10g) and the .hpcb binary columnar container (bit-exact,
// smaller, parallel-decodable; storage/hpcb.hpp). Loaders never need to be
// told which one they were handed — the .hpcb magic is sniffed from the
// first bytes and anything else is treated as CSV. Savers resolve kAuto
// from the file extension (".hpcb" → binary, everything else → CSV).

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/hpcb.hpp"

namespace hpcpower::trace {

enum class TraceFormat {
  kAuto,  ///< sniff magic on load, use the file extension on save
  kCsv,
  kHpcb,
};

[[nodiscard]] const char* trace_format_name(TraceFormat format) noexcept;

/// Parses "auto" / "csv" / "hpcb" (as used by --format flags).
[[nodiscard]] std::optional<TraceFormat> parse_trace_format(std::string_view name);

/// Resolves kAuto for a load by sniffing the stream's leading magic bytes
/// (position restored). Never returns kAuto.
[[nodiscard]] TraceFormat resolve_load_format(TraceFormat format, std::istream& in);

/// Resolves kAuto for a save from the path's extension (".hpcb" → binary).
/// Never returns kAuto.
[[nodiscard]] TraceFormat resolve_save_format(TraceFormat format,
                                              const std::string& path);

/// True when a file's schema matches the expected table shape: same column
/// names in the same order, and the same int/float class per column. The
/// concrete float codec (raw vs xor-varint) is an encoding detail a writer
/// is free to choose, so readers must accept either.
[[nodiscard]] bool schema_compatible(const std::vector<storage::ColumnSpec>& actual,
                                     const std::vector<storage::ColumnSpec>& expected);

}  // namespace hpcpower::trace

#pragma once
// Job-table trace format.
//
// CSV schema mirroring the paper's released dataset (Zenodo 3666632): one row
// per job, execution-wide averages, with the time/space-resolved columns
// present only for instrumented jobs (empty otherwise). Round-trips through
// read_job_table/write_job_table without loss (to the printed precision).

#include <iosfwd>
#include <string>
#include <vector>

#include "storage/hpcb.hpp"
#include "telemetry/job_record.hpp"
#include "trace/format.hpp"

namespace hpcpower::trace {

/// Column names of the job table, in file order.
[[nodiscard]] const std::vector<std::string>& job_table_columns();

void write_job_table(std::ostream& out, const std::vector<telemetry::JobRecord>& records);

/// Parses a job table. Throws std::invalid_argument on schema mismatch or
/// malformed rows (with the source line number in the message). `lenient`
/// skips malformed or semantically invalid rows (end < start, zero nodes)
/// with a warning instead, counting them under "csv.rows_skipped".
[[nodiscard]] std::vector<telemetry::JobRecord> read_job_table(std::istream& in,
                                                               bool lenient = false);

/// .hpcb (binary columnar) writer/reader for the same table. Enums travel as
/// range-checked integer columns, the optional detail block as a has_detail
/// flag plus zero-filled columns; doubles are bit-exact, unlike the %.6g CSV
/// round trip. `lenient` skips corrupt blocks and semantically invalid rows
/// with counted warnings ("storage.*") instead of throwing.
void write_job_table_hpcb(std::ostream& out,
                          const std::vector<telemetry::JobRecord>& records,
                          std::size_t rows_per_block = storage::kDefaultRowsPerBlock);
[[nodiscard]] std::vector<telemetry::JobRecord> read_job_table_hpcb(
    std::istream& in, bool lenient = false, storage::ReadStats* stats = nullptr);

/// Convenience file wrappers. Throw std::runtime_error on I/O failure.
/// Saving resolves kAuto from the extension (".hpcb" → binary, else CSV);
/// loading auto-detects the format from the file's magic bytes.
void save_job_table(const std::string& path,
                    const std::vector<telemetry::JobRecord>& records,
                    TraceFormat format = TraceFormat::kAuto);
[[nodiscard]] std::vector<telemetry::JobRecord> load_job_table(const std::string& path,
                                                               bool lenient = false);

}  // namespace hpcpower::trace

#pragma once
// Job-table trace format.
//
// CSV schema mirroring the paper's released dataset (Zenodo 3666632): one row
// per job, execution-wide averages, with the time/space-resolved columns
// present only for instrumented jobs (empty otherwise). Round-trips through
// read_job_table/write_job_table without loss (to the printed precision).

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/job_record.hpp"

namespace hpcpower::trace {

/// Column names of the job table, in file order.
[[nodiscard]] const std::vector<std::string>& job_table_columns();

void write_job_table(std::ostream& out, const std::vector<telemetry::JobRecord>& records);

/// Parses a job table. Throws std::invalid_argument on schema mismatch or
/// malformed rows (with the source line number in the message). `lenient`
/// skips malformed or semantically invalid rows (end < start, zero nodes)
/// with a warning instead, counting them under "csv.rows_skipped".
[[nodiscard]] std::vector<telemetry::JobRecord> read_job_table(std::istream& in,
                                                               bool lenient = false);

/// Convenience file wrappers. Throw std::runtime_error on I/O failure.
void save_job_table(const std::string& path,
                    const std::vector<telemetry::JobRecord>& records);
[[nodiscard]] std::vector<telemetry::JobRecord> load_job_table(const std::string& path,
                                                               bool lenient = false);

}  // namespace hpcpower::trace

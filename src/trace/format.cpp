#include "trace/format.hpp"

#include <istream>

#include "storage/hpcb.hpp"

namespace hpcpower::trace {

const char* trace_format_name(TraceFormat format) noexcept {
  switch (format) {
    case TraceFormat::kAuto: return "auto";
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kHpcb: return "hpcb";
  }
  return "?";
}

std::optional<TraceFormat> parse_trace_format(std::string_view name) {
  if (name == "auto") return TraceFormat::kAuto;
  if (name == "csv") return TraceFormat::kCsv;
  if (name == "hpcb") return TraceFormat::kHpcb;
  return std::nullopt;
}

TraceFormat resolve_load_format(TraceFormat format, std::istream& in) {
  if (format != TraceFormat::kAuto) return format;
  return storage::sniff_hpcb(in) ? TraceFormat::kHpcb : TraceFormat::kCsv;
}

TraceFormat resolve_save_format(TraceFormat format, const std::string& path) {
  if (format != TraceFormat::kAuto) return format;
  const std::string_view ext = ".hpcb";
  if (path.size() >= ext.size() &&
      std::string_view(path).substr(path.size() - ext.size()) == ext)
    return TraceFormat::kHpcb;
  return TraceFormat::kCsv;
}

bool schema_compatible(const std::vector<storage::ColumnSpec>& actual,
                       const std::vector<storage::ColumnSpec>& expected) {
  if (actual.size() != expected.size()) return false;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].name != expected[i].name) return false;
    if (storage::is_float_column(actual[i].type) !=
        storage::is_float_column(expected[i].type))
      return false;
  }
  return true;
}

}  // namespace hpcpower::trace

#include "trace/job_table.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sched/exit_status.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

namespace {
constexpr int kSchemaVersion = 2;

cluster::SystemId parse_system(const std::string& name) {
  if (name == "Emmy") return cluster::SystemId::kEmmy;
  if (name == "Meggie") return cluster::SystemId::kMeggie;
  return cluster::SystemId::kCustom;
}

/// The v1 schema, before exit_status/attempt existed. Old exports remain
/// readable: missing columns default to a clean first attempt.
const std::vector<std::string>& legacy_job_table_columns() {
  static const std::vector<std::string> kColumns = {
      "job_id",          "system",           "user_id",
      "app_id",          "submit_min",       "start_min",
      "end_min",         "nnodes",           "walltime_req_min",
      "backfilled",      "truncated",        "mean_node_power_w",
      "temporal_std_w",  "peak_node_power_w", "mean_pkg_w",
      "mean_dram_w",     "energy_kwh",       "node_energy_min_kwh",
      "node_energy_max_kwh",
      "peak_overshoot",  "frac_time_above_10pct", "avg_spatial_spread_w",
      "spread_fraction_of_power", "frac_time_above_avg_spread",
  };
  return kColumns;
}
}  // namespace

const std::vector<std::string>& job_table_columns() {
  static const std::vector<std::string> kColumns = {
      "job_id",          "system",           "user_id",
      "app_id",          "submit_min",       "start_min",
      "end_min",         "nnodes",           "walltime_req_min",
      "backfilled",      "truncated",        "exit_status",
      "attempt",         "mean_node_power_w",
      "temporal_std_w",  "peak_node_power_w", "mean_pkg_w",
      "mean_dram_w",     "energy_kwh",       "node_energy_min_kwh",
      "node_energy_max_kwh",
      // Instrumented-only columns (empty when no detail was collected):
      "peak_overshoot",  "frac_time_above_10pct", "avg_spatial_spread_w",
      "spread_fraction_of_power", "frac_time_above_avg_spread",
  };
  return kColumns;
}

void write_job_table(std::ostream& out, const std::vector<telemetry::JobRecord>& records) {
  out << "# hpcpower job table v" << kSchemaVersion << "\n";
  util::CsvWriter w(out);
  w.write_row(job_table_columns());
  for (const telemetry::JobRecord& r : records) {
    std::vector<std::string> row;
    row.reserve(job_table_columns().size());
    row.push_back(std::to_string(r.job_id));
    row.push_back(cluster::system_name(r.system));
    row.push_back(std::to_string(r.user_id));
    row.push_back(std::to_string(r.app));
    row.push_back(std::to_string(r.submit.minutes()));
    row.push_back(std::to_string(r.start.minutes()));
    row.push_back(std::to_string(r.end.minutes()));
    row.push_back(std::to_string(r.nnodes));
    row.push_back(std::to_string(r.walltime_req_min));
    row.push_back(r.backfilled ? "1" : "0");
    row.push_back(r.truncated_by_horizon ? "1" : "0");
    row.emplace_back(sched::exit_status_name(r.exit));
    row.push_back(std::to_string(r.attempt));
    row.push_back(util::format("%.6g", r.mean_node_power_w));
    row.push_back(util::format("%.6g", r.temporal_std_w));
    row.push_back(util::format("%.6g", r.peak_node_power_w));
    row.push_back(util::format("%.6g", r.mean_pkg_w));
    row.push_back(util::format("%.6g", r.mean_dram_w));
    row.push_back(util::format("%.8g", r.energy_kwh));
    row.push_back(util::format("%.8g", r.node_energy_min_kwh));
    row.push_back(util::format("%.8g", r.node_energy_max_kwh));
    if (r.detail) {
      row.push_back(util::format("%.6g", r.detail->peak_overshoot));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_10pct));
      row.push_back(util::format("%.6g", r.detail->avg_spatial_spread_w));
      row.push_back(util::format("%.6g", r.detail->spread_fraction_of_power));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_avg_spread));
    } else {
      for (int i = 0; i < 5; ++i) row.emplace_back();
    }
    w.write_row(row);
  }
}

std::vector<telemetry::JobRecord> read_job_table(std::istream& in, bool lenient) {
  // Optional "# hpcpower job table" comment line.
  bool had_comment = false;
  if (in.peek() == '#') {
    std::string comment;
    std::getline(in, comment);
    had_comment = true;
    if (comment.find("hpcpower job table") == std::string::npos)
      throw std::invalid_argument("job table: unrecognized header comment");
  }
  util::CsvReader reader(in, util::CsvReadOptions{true, lenient});
  const bool legacy = reader.header() == legacy_job_table_columns();
  if (!legacy && reader.header() != job_table_columns())
    throw std::invalid_argument("job table: schema mismatch");

  std::vector<telemetry::JobRecord> out;
  while (auto row = reader.next()) {
    // CsvReader counts lines from its own first line; the comment shifts all
    // file positions down by one.
    const std::size_t line = row->line() + (had_comment ? 1 : 0);
    try {
      telemetry::JobRecord r;
      r.job_id = row->as_uint("job_id");
      r.system = parse_system(row->at("system"));
      r.user_id = static_cast<workload::UserId>(row->as_uint("user_id"));
      r.app = static_cast<workload::AppId>(row->as_uint("app_id"));
      r.submit = util::MinuteTime(row->as_int("submit_min"));
      r.start = util::MinuteTime(row->as_int("start_min"));
      r.end = util::MinuteTime(row->as_int("end_min"));
      r.nnodes = static_cast<std::uint32_t>(row->as_uint("nnodes"));
      r.walltime_req_min = static_cast<std::uint32_t>(row->as_uint("walltime_req_min"));
      r.backfilled = row->as_int("backfilled") != 0;
      r.truncated_by_horizon = row->as_int("truncated") != 0;
      if (!legacy) {
        const auto exit = sched::parse_exit_status(row->at("exit_status"));
        if (!exit)
          throw std::invalid_argument("unknown exit_status '" +
                                      row->at("exit_status") + "'");
        r.exit = *exit;
        r.attempt = static_cast<std::uint32_t>(row->as_uint("attempt"));
        if (r.attempt == 0) throw std::invalid_argument("attempt is zero");
      }
      r.mean_node_power_w = row->as_double("mean_node_power_w");
      r.temporal_std_w = row->as_double("temporal_std_w");
      r.peak_node_power_w = row->as_double("peak_node_power_w");
      r.mean_pkg_w = row->as_double("mean_pkg_w");
      r.mean_dram_w = row->as_double("mean_dram_w");
      r.energy_kwh = row->as_double("energy_kwh");
      r.node_energy_min_kwh = row->as_double("node_energy_min_kwh");
      r.node_energy_max_kwh = row->as_double("node_energy_max_kwh");
      if (r.end < r.start) throw std::invalid_argument("end_min precedes start_min");
      if (r.start < r.submit) throw std::invalid_argument("start_min precedes submit_min");
      if (r.nnodes == 0) throw std::invalid_argument("nnodes is zero");
      if (!row->at("peak_overshoot").empty()) {
        telemetry::DetailMetrics d;
        d.peak_overshoot = row->as_double("peak_overshoot");
        d.frac_time_above_10pct = row->as_double("frac_time_above_10pct");
        d.avg_spatial_spread_w = row->as_double("avg_spatial_spread_w");
        d.spread_fraction_of_power = row->as_double("spread_fraction_of_power");
        d.frac_time_above_avg_spread = row->as_double("frac_time_above_avg_spread");
        r.detail = d;
      }
      out.push_back(r);
    } catch (const std::exception& e) {
      const std::string what = util::format("job table line %zu: %s", line, e.what());
      if (!lenient) throw std::invalid_argument(what);
      util::counters().add("csv.rows_skipped");
      util::log_warn(what + " (row skipped)");
    }
  }
  return out;
}

void save_job_table(const std::string& path,
                    const std::vector<telemetry::JobRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_job_table(out, records);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<telemetry::JobRecord> load_job_table(const std::string& path, bool lenient) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_job_table(in, lenient);
}

}  // namespace hpcpower::trace

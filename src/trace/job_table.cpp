#include "trace/job_table.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sched/exit_status.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

namespace {
constexpr int kSchemaVersion = 2;

cluster::SystemId parse_system(const std::string& name) {
  if (name == "Emmy") return cluster::SystemId::kEmmy;
  if (name == "Meggie") return cluster::SystemId::kMeggie;
  return cluster::SystemId::kCustom;
}

/// The v1 schema, before exit_status/attempt existed. Old exports remain
/// readable: missing columns default to a clean first attempt.
const std::vector<std::string>& legacy_job_table_columns() {
  static const std::vector<std::string> kColumns = {
      "job_id",          "system",           "user_id",
      "app_id",          "submit_min",       "start_min",
      "end_min",         "nnodes",           "walltime_req_min",
      "backfilled",      "truncated",        "mean_node_power_w",
      "temporal_std_w",  "peak_node_power_w", "mean_pkg_w",
      "mean_dram_w",     "energy_kwh",       "node_energy_min_kwh",
      "node_energy_max_kwh",
      "peak_overshoot",  "frac_time_above_10pct", "avg_spatial_spread_w",
      "spread_fraction_of_power", "frac_time_above_avg_spread",
  };
  return kColumns;
}
}  // namespace

const std::vector<std::string>& job_table_columns() {
  static const std::vector<std::string> kColumns = {
      "job_id",          "system",           "user_id",
      "app_id",          "submit_min",       "start_min",
      "end_min",         "nnodes",           "walltime_req_min",
      "backfilled",      "truncated",        "exit_status",
      "attempt",         "mean_node_power_w",
      "temporal_std_w",  "peak_node_power_w", "mean_pkg_w",
      "mean_dram_w",     "energy_kwh",       "node_energy_min_kwh",
      "node_energy_max_kwh",
      // Instrumented-only columns (empty when no detail was collected):
      "peak_overshoot",  "frac_time_above_10pct", "avg_spatial_spread_w",
      "spread_fraction_of_power", "frac_time_above_avg_spread",
  };
  return kColumns;
}

void write_job_table(std::ostream& out, const std::vector<telemetry::JobRecord>& records) {
  out << "# hpcpower job table v" << kSchemaVersion << "\n";
  util::CsvWriter w(out);
  w.write_row(job_table_columns());
  for (const telemetry::JobRecord& r : records) {
    std::vector<std::string> row;
    row.reserve(job_table_columns().size());
    row.push_back(std::to_string(r.job_id));
    row.push_back(cluster::system_name(r.system));
    row.push_back(std::to_string(r.user_id));
    row.push_back(std::to_string(r.app));
    row.push_back(std::to_string(r.submit.minutes()));
    row.push_back(std::to_string(r.start.minutes()));
    row.push_back(std::to_string(r.end.minutes()));
    row.push_back(std::to_string(r.nnodes));
    row.push_back(std::to_string(r.walltime_req_min));
    row.push_back(r.backfilled ? "1" : "0");
    row.push_back(r.truncated_by_horizon ? "1" : "0");
    row.emplace_back(sched::exit_status_name(r.exit));
    row.push_back(std::to_string(r.attempt));
    row.push_back(util::format("%.6g", r.mean_node_power_w));
    row.push_back(util::format("%.6g", r.temporal_std_w));
    row.push_back(util::format("%.6g", r.peak_node_power_w));
    row.push_back(util::format("%.6g", r.mean_pkg_w));
    row.push_back(util::format("%.6g", r.mean_dram_w));
    row.push_back(util::format("%.8g", r.energy_kwh));
    row.push_back(util::format("%.8g", r.node_energy_min_kwh));
    row.push_back(util::format("%.8g", r.node_energy_max_kwh));
    if (r.detail) {
      row.push_back(util::format("%.6g", r.detail->peak_overshoot));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_10pct));
      row.push_back(util::format("%.6g", r.detail->avg_spatial_spread_w));
      row.push_back(util::format("%.6g", r.detail->spread_fraction_of_power));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_avg_spread));
    } else {
      for (int i = 0; i < 5; ++i) row.emplace_back();
    }
    w.write_row(row);
  }
}

std::vector<telemetry::JobRecord> read_job_table(std::istream& in, bool lenient) {
  // Optional "# hpcpower job table" comment line.
  bool had_comment = false;
  if (in.peek() == '#') {
    std::string comment;
    std::getline(in, comment);
    had_comment = true;
    if (comment.find("hpcpower job table") == std::string::npos)
      throw std::invalid_argument("job table: unrecognized header comment");
  }
  util::CsvReader reader(in, util::CsvReadOptions{true, lenient});
  const bool legacy = reader.header() == legacy_job_table_columns();
  if (!legacy && reader.header() != job_table_columns())
    throw std::invalid_argument("job table: schema mismatch");

  std::vector<telemetry::JobRecord> out;
  while (auto row = reader.next()) {
    // CsvReader counts lines from its own first line; the comment shifts all
    // file positions down by one.
    const std::size_t line = row->line() + (had_comment ? 1 : 0);
    try {
      telemetry::JobRecord r;
      r.job_id = row->as_uint("job_id");
      r.system = parse_system(row->at("system"));
      r.user_id = static_cast<workload::UserId>(row->as_uint("user_id"));
      r.app = static_cast<workload::AppId>(row->as_uint("app_id"));
      r.submit = util::MinuteTime(row->as_int("submit_min"));
      r.start = util::MinuteTime(row->as_int("start_min"));
      r.end = util::MinuteTime(row->as_int("end_min"));
      r.nnodes = static_cast<std::uint32_t>(row->as_uint("nnodes"));
      r.walltime_req_min = static_cast<std::uint32_t>(row->as_uint("walltime_req_min"));
      r.backfilled = row->as_int("backfilled") != 0;
      r.truncated_by_horizon = row->as_int("truncated") != 0;
      if (!legacy) {
        const auto exit = sched::parse_exit_status(row->at("exit_status"));
        if (!exit)
          throw std::invalid_argument("unknown exit_status '" +
                                      row->at("exit_status") + "'");
        r.exit = *exit;
        r.attempt = static_cast<std::uint32_t>(row->as_uint("attempt"));
        if (r.attempt == 0) throw std::invalid_argument("attempt is zero");
      }
      r.mean_node_power_w = row->as_double("mean_node_power_w");
      r.temporal_std_w = row->as_double("temporal_std_w");
      r.peak_node_power_w = row->as_double("peak_node_power_w");
      r.mean_pkg_w = row->as_double("mean_pkg_w");
      r.mean_dram_w = row->as_double("mean_dram_w");
      r.energy_kwh = row->as_double("energy_kwh");
      r.node_energy_min_kwh = row->as_double("node_energy_min_kwh");
      r.node_energy_max_kwh = row->as_double("node_energy_max_kwh");
      if (r.end < r.start) throw std::invalid_argument("end_min precedes start_min");
      if (r.start < r.submit) throw std::invalid_argument("start_min precedes submit_min");
      if (r.nnodes == 0) throw std::invalid_argument("nnodes is zero");
      if (!row->at("peak_overshoot").empty()) {
        telemetry::DetailMetrics d;
        d.peak_overshoot = row->as_double("peak_overshoot");
        d.frac_time_above_10pct = row->as_double("frac_time_above_10pct");
        d.avg_spatial_spread_w = row->as_double("avg_spatial_spread_w");
        d.spread_fraction_of_power = row->as_double("spread_fraction_of_power");
        d.frac_time_above_avg_spread = row->as_double("frac_time_above_avg_spread");
        r.detail = d;
      }
      out.push_back(r);
    } catch (const std::exception& e) {
      const std::string what = util::format("job table line %zu: %s", line, e.what());
      if (!lenient) throw std::invalid_argument(what);
      util::counters().add("csv.rows_skipped");
      util::log_warn(what + " (row skipped)");
    }
  }
  return out;
}

namespace {

/// .hpcb schema of the job table: the v2 CSV columns with enums/bools as
/// integer columns, plus an explicit has_detail flag (CSV encodes "no
/// detail" as empty cells, which a fixed-width column cannot).
const std::vector<storage::ColumnSpec>& job_table_hpcb_schema() {
  using storage::ColumnType;
  static const std::vector<storage::ColumnSpec> kSchema = {
      {"job_id", ColumnType::kInt64Delta},
      {"system", ColumnType::kInt64Delta},
      {"user_id", ColumnType::kInt64Delta},
      {"app_id", ColumnType::kInt64Delta},
      {"submit_min", ColumnType::kInt64Delta},
      {"start_min", ColumnType::kInt64Delta},
      {"end_min", ColumnType::kInt64Delta},
      {"nnodes", ColumnType::kInt64Delta},
      {"walltime_req_min", ColumnType::kInt64Delta},
      {"backfilled", ColumnType::kInt64Delta},
      {"truncated", ColumnType::kInt64Delta},
      {"exit_status", ColumnType::kInt64Delta},
      {"attempt", ColumnType::kInt64Delta},
      {"mean_node_power_w", ColumnType::kFloat64Xor},
      {"temporal_std_w", ColumnType::kFloat64Xor},
      {"peak_node_power_w", ColumnType::kFloat64Xor},
      {"mean_pkg_w", ColumnType::kFloat64Xor},
      {"mean_dram_w", ColumnType::kFloat64Xor},
      {"energy_kwh", ColumnType::kFloat64Xor},
      {"node_energy_min_kwh", ColumnType::kFloat64Xor},
      {"node_energy_max_kwh", ColumnType::kFloat64Xor},
      {"has_detail", ColumnType::kInt64Delta},
      {"peak_overshoot", ColumnType::kFloat64Xor},
      {"frac_time_above_10pct", ColumnType::kFloat64Xor},
      {"avg_spatial_spread_w", ColumnType::kFloat64Xor},
      {"spread_fraction_of_power", ColumnType::kFloat64Xor},
      {"frac_time_above_avg_spread", ColumnType::kFloat64Xor},
  };
  return kSchema;
}

std::int64_t checked_range(std::int64_t v, std::int64_t lo, std::int64_t hi,
                           const char* what) {
  if (v < lo || v > hi)
    throw std::invalid_argument(util::format("%s out of range", what));
  return v;
}

}  // namespace

void write_job_table_hpcb(std::ostream& out,
                          const std::vector<telemetry::JobRecord>& records,
                          std::size_t rows_per_block) {
  storage::Table table;
  table.schema = job_table_hpcb_schema();
  table.columns.resize(table.schema.size());
  for (std::size_t i = 0; i < table.schema.size(); ++i) {
    if (table.schema[i].type == storage::ColumnType::kInt64Delta)
      table.columns[i].i64.reserve(records.size());
    else
      table.columns[i].f64.reserve(records.size());
  }
  for (const telemetry::JobRecord& r : records) {
    std::size_t c = 0;
    const auto put_i = [&](std::int64_t v) { table.columns[c++].i64.push_back(v); };
    const auto put_f = [&](double v) { table.columns[c++].f64.push_back(v); };
    put_i(static_cast<std::int64_t>(r.job_id));
    put_i(static_cast<std::int64_t>(r.system));
    put_i(static_cast<std::int64_t>(r.user_id));
    put_i(static_cast<std::int64_t>(r.app));
    put_i(r.submit.minutes());
    put_i(r.start.minutes());
    put_i(r.end.minutes());
    put_i(static_cast<std::int64_t>(r.nnodes));
    put_i(static_cast<std::int64_t>(r.walltime_req_min));
    put_i(r.backfilled ? 1 : 0);
    put_i(r.truncated_by_horizon ? 1 : 0);
    put_i(static_cast<std::int64_t>(r.exit));
    put_i(static_cast<std::int64_t>(r.attempt));
    put_f(r.mean_node_power_w);
    put_f(r.temporal_std_w);
    put_f(r.peak_node_power_w);
    put_f(r.mean_pkg_w);
    put_f(r.mean_dram_w);
    put_f(r.energy_kwh);
    put_f(r.node_energy_min_kwh);
    put_f(r.node_energy_max_kwh);
    put_i(r.detail ? 1 : 0);
    put_f(r.detail ? r.detail->peak_overshoot : 0.0);
    put_f(r.detail ? r.detail->frac_time_above_10pct : 0.0);
    put_f(r.detail ? r.detail->avg_spatial_spread_w : 0.0);
    put_f(r.detail ? r.detail->spread_fraction_of_power : 0.0);
    put_f(r.detail ? r.detail->frac_time_above_avg_spread : 0.0);
  }
  storage::write_hpcb(out, table, rows_per_block);
}

std::vector<telemetry::JobRecord> read_job_table_hpcb(std::istream& in, bool lenient,
                                                      storage::ReadStats* stats) {
  storage::ReadOptions options;
  options.lenient = lenient;
  const storage::Table table = storage::read_hpcb(in, options, stats);
  if (!schema_compatible(table.schema, job_table_hpcb_schema()))
    throw std::invalid_argument("job table: schema mismatch");
  std::vector<telemetry::JobRecord> out;
  out.reserve(table.rows());
  for (std::size_t i = 0; i < table.rows(); ++i) {
    std::size_t c = 0;
    const auto get_i = [&] { return table.columns[c++].i64[i]; };
    const auto get_f = [&] { return table.columns[c++].f64[i]; };
    try {
      telemetry::JobRecord r;
      r.job_id = static_cast<std::uint64_t>(get_i());
      r.system = static_cast<cluster::SystemId>(
          checked_range(get_i(), 0,
                        static_cast<std::int64_t>(cluster::SystemId::kCustom),
                        "system"));
      r.user_id = static_cast<workload::UserId>(
          checked_range(get_i(), 0, 0xFFFFFFFF, "user_id"));
      r.app = static_cast<workload::AppId>(
          checked_range(get_i(), 0, 0xFFFFFFFF, "app_id"));
      r.submit = util::MinuteTime(get_i());
      r.start = util::MinuteTime(get_i());
      r.end = util::MinuteTime(get_i());
      r.nnodes = static_cast<std::uint32_t>(
          checked_range(get_i(), 1, 0xFFFFFFFF, "nnodes"));
      r.walltime_req_min = static_cast<std::uint32_t>(
          checked_range(get_i(), 0, 0xFFFFFFFF, "walltime_req_min"));
      r.backfilled = checked_range(get_i(), 0, 1, "backfilled") != 0;
      r.truncated_by_horizon = checked_range(get_i(), 0, 1, "truncated") != 0;
      r.exit = static_cast<sched::ExitStatus>(checked_range(
          get_i(), 0, static_cast<std::int64_t>(sched::ExitStatus::kCancelled),
          "exit_status"));
      r.attempt = static_cast<std::uint32_t>(
          checked_range(get_i(), 1, 0xFFFFFFFF, "attempt"));
      r.mean_node_power_w = get_f();
      r.temporal_std_w = get_f();
      r.peak_node_power_w = get_f();
      r.mean_pkg_w = get_f();
      r.mean_dram_w = get_f();
      r.energy_kwh = get_f();
      r.node_energy_min_kwh = get_f();
      r.node_energy_max_kwh = get_f();
      const bool has_detail = checked_range(get_i(), 0, 1, "has_detail") != 0;
      telemetry::DetailMetrics d;
      d.peak_overshoot = get_f();
      d.frac_time_above_10pct = get_f();
      d.avg_spatial_spread_w = get_f();
      d.spread_fraction_of_power = get_f();
      d.frac_time_above_avg_spread = get_f();
      if (has_detail) r.detail = d;
      if (r.end < r.start) throw std::invalid_argument("end_min precedes start_min");
      if (r.start < r.submit) throw std::invalid_argument("start_min precedes submit_min");
      out.push_back(r);
    } catch (const std::exception& e) {
      const std::string what = util::format("job table row %zu: %s", i, e.what());
      if (!lenient) throw std::invalid_argument(what);
      util::counters().add("storage.rows_skipped");
      util::log_warn(what + " (row skipped)");
    }
  }
  return out;
}

void save_job_table(const std::string& path,
                    const std::vector<telemetry::JobRecord>& records,
                    TraceFormat format) {
  const TraceFormat resolved = resolve_save_format(format, path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  if (resolved == TraceFormat::kHpcb)
    write_job_table_hpcb(out, records);
  else
    write_job_table(out, records);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<telemetry::JobRecord> load_job_table(const std::string& path, bool lenient) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  if (resolve_load_format(TraceFormat::kAuto, in) == TraceFormat::kHpcb)
    return read_job_table_hpcb(in, lenient);
  return read_job_table(in, lenient);
}

}  // namespace hpcpower::trace

#include "trace/job_table.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

namespace {
constexpr int kSchemaVersion = 1;

cluster::SystemId parse_system(const std::string& name) {
  if (name == "Emmy") return cluster::SystemId::kEmmy;
  if (name == "Meggie") return cluster::SystemId::kMeggie;
  return cluster::SystemId::kCustom;
}
}  // namespace

const std::vector<std::string>& job_table_columns() {
  static const std::vector<std::string> kColumns = {
      "job_id",          "system",           "user_id",
      "app_id",          "submit_min",       "start_min",
      "end_min",         "nnodes",           "walltime_req_min",
      "backfilled",      "truncated",        "mean_node_power_w",
      "temporal_std_w",  "peak_node_power_w", "mean_pkg_w",
      "mean_dram_w",     "energy_kwh",       "node_energy_min_kwh",
      "node_energy_max_kwh",
      // Instrumented-only columns (empty when no detail was collected):
      "peak_overshoot",  "frac_time_above_10pct", "avg_spatial_spread_w",
      "spread_fraction_of_power", "frac_time_above_avg_spread",
  };
  return kColumns;
}

void write_job_table(std::ostream& out, const std::vector<telemetry::JobRecord>& records) {
  out << "# hpcpower job table v" << kSchemaVersion << "\n";
  util::CsvWriter w(out);
  w.write_row(job_table_columns());
  for (const telemetry::JobRecord& r : records) {
    std::vector<std::string> row;
    row.reserve(job_table_columns().size());
    row.push_back(std::to_string(r.job_id));
    row.push_back(cluster::system_name(r.system));
    row.push_back(std::to_string(r.user_id));
    row.push_back(std::to_string(r.app));
    row.push_back(std::to_string(r.submit.minutes()));
    row.push_back(std::to_string(r.start.minutes()));
    row.push_back(std::to_string(r.end.minutes()));
    row.push_back(std::to_string(r.nnodes));
    row.push_back(std::to_string(r.walltime_req_min));
    row.push_back(r.backfilled ? "1" : "0");
    row.push_back(r.truncated_by_horizon ? "1" : "0");
    row.push_back(util::format("%.6g", r.mean_node_power_w));
    row.push_back(util::format("%.6g", r.temporal_std_w));
    row.push_back(util::format("%.6g", r.peak_node_power_w));
    row.push_back(util::format("%.6g", r.mean_pkg_w));
    row.push_back(util::format("%.6g", r.mean_dram_w));
    row.push_back(util::format("%.8g", r.energy_kwh));
    row.push_back(util::format("%.8g", r.node_energy_min_kwh));
    row.push_back(util::format("%.8g", r.node_energy_max_kwh));
    if (r.detail) {
      row.push_back(util::format("%.6g", r.detail->peak_overshoot));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_10pct));
      row.push_back(util::format("%.6g", r.detail->avg_spatial_spread_w));
      row.push_back(util::format("%.6g", r.detail->spread_fraction_of_power));
      row.push_back(util::format("%.6g", r.detail->frac_time_above_avg_spread));
    } else {
      for (int i = 0; i < 5; ++i) row.emplace_back();
    }
    w.write_row(row);
  }
}

std::vector<telemetry::JobRecord> read_job_table(std::istream& in) {
  // Optional "# hpcpower job table" comment line.
  if (in.peek() == '#') {
    std::string comment;
    std::getline(in, comment);
    if (comment.find("hpcpower job table") == std::string::npos)
      throw std::invalid_argument("job table: unrecognized header comment");
  }
  util::CsvReader reader(in);
  if (reader.header() != job_table_columns())
    throw std::invalid_argument("job table: schema mismatch");

  std::vector<telemetry::JobRecord> out;
  std::size_t row_no = 0;
  while (auto row = reader.next()) {
    ++row_no;
    try {
      telemetry::JobRecord r;
      r.job_id = row->as_uint("job_id");
      r.system = parse_system(row->at("system"));
      r.user_id = static_cast<workload::UserId>(row->as_uint("user_id"));
      r.app = static_cast<workload::AppId>(row->as_uint("app_id"));
      r.submit = util::MinuteTime(row->as_int("submit_min"));
      r.start = util::MinuteTime(row->as_int("start_min"));
      r.end = util::MinuteTime(row->as_int("end_min"));
      r.nnodes = static_cast<std::uint32_t>(row->as_uint("nnodes"));
      r.walltime_req_min = static_cast<std::uint32_t>(row->as_uint("walltime_req_min"));
      r.backfilled = row->as_int("backfilled") != 0;
      r.truncated_by_horizon = row->as_int("truncated") != 0;
      r.mean_node_power_w = row->as_double("mean_node_power_w");
      r.temporal_std_w = row->as_double("temporal_std_w");
      r.peak_node_power_w = row->as_double("peak_node_power_w");
      r.mean_pkg_w = row->as_double("mean_pkg_w");
      r.mean_dram_w = row->as_double("mean_dram_w");
      r.energy_kwh = row->as_double("energy_kwh");
      r.node_energy_min_kwh = row->as_double("node_energy_min_kwh");
      r.node_energy_max_kwh = row->as_double("node_energy_max_kwh");
      if (!row->at("peak_overshoot").empty()) {
        telemetry::DetailMetrics d;
        d.peak_overshoot = row->as_double("peak_overshoot");
        d.frac_time_above_10pct = row->as_double("frac_time_above_10pct");
        d.avg_spatial_spread_w = row->as_double("avg_spatial_spread_w");
        d.spread_fraction_of_power = row->as_double("spread_fraction_of_power");
        d.frac_time_above_avg_spread = row->as_double("frac_time_above_avg_spread");
        r.detail = d;
      }
      out.push_back(r);
    } catch (const std::exception& e) {
      throw std::invalid_argument(
          util::format("job table row %zu: %s", row_no, e.what()));
    }
  }
  return out;
}

void save_job_table(const std::string& path,
                    const std::vector<telemetry::JobRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_job_table(out, records);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<telemetry::JobRecord> load_job_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_job_table(in);
}

}  // namespace hpcpower::trace

#pragma once
// Time-resolved sample trace format: one row per (job, minute, node) RAPL
// reading for instrumented jobs, like the paper's one-month detailed logs.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace hpcpower::trace {

struct PowerSampleRow {
  std::uint64_t job_id = 0;
  std::int64_t minute = 0;       ///< campaign minute of the sample
  std::uint32_t node_index = 0;  ///< job-local node index
  double pkg_w = 0.0;
  double dram_w = 0.0;

  [[nodiscard]] double total_w() const noexcept { return pkg_w + dram_w; }
};

[[nodiscard]] const std::vector<std::string>& sample_table_columns();

void write_sample_table(std::ostream& out, const std::vector<PowerSampleRow>& rows);
[[nodiscard]] std::vector<PowerSampleRow> read_sample_table(std::istream& in);

void save_sample_table(const std::string& path, const std::vector<PowerSampleRow>& rows);
[[nodiscard]] std::vector<PowerSampleRow> load_sample_table(const std::string& path);

}  // namespace hpcpower::trace

#pragma once
// Time-resolved sample trace format: one row per (job, minute, node) RAPL
// reading for instrumented jobs, like the paper's one-month detailed logs.
//
// Production sample tables arrive dirty: rows go missing, carry garbage
// values, appear twice, or land out of order. The read path can run lenient
// (skip malformed rows with a counted warning), and scrub_sample_rows()
// applies the same cleaning rules the monitoring pipeline uses — sort,
// deduplicate, clamp glitches, interpolate short gaps — with an exact
// DataQualityReport of everything it did. inject_sample_faults() is the
// matching deterministic dirt generator for tests and demos.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "storage/hpcb.hpp"
#include "storage/scan.hpp"
#include "telemetry/cleaning.hpp"
#include "telemetry/faults.hpp"
#include "trace/format.hpp"
#include "util/sim_time.hpp"

namespace hpcpower::trace {

struct PowerSampleRow {
  std::uint64_t job_id = 0;
  std::int64_t minute = 0;       ///< campaign minute of the sample
  std::uint32_t node_index = 0;  ///< job-local node index
  double pkg_w = 0.0;
  double dram_w = 0.0;

  [[nodiscard]] double total_w() const noexcept { return pkg_w + dram_w; }
};

[[nodiscard]] const std::vector<std::string>& sample_table_columns();

void write_sample_table(std::ostream& out, const std::vector<PowerSampleRow>& rows);
/// `lenient`: malformed rows are skipped with a warning (counted under
/// "csv.rows_skipped") instead of aborting the parse.
[[nodiscard]] std::vector<PowerSampleRow> read_sample_table(std::istream& in,
                                                            bool lenient = false);

/// .hpcb (binary columnar) writer/reader for the same table; bit-exact for
/// the power columns, unlike the %.10g CSV round trip. `lenient` skips
/// corrupt blocks / out-of-domain rows with counted warnings ("storage.*")
/// instead of throwing; the missing minutes then surface as gap slots in
/// scrub_sample_rows()'s DataQualityReport.
void write_sample_table_hpcb(std::ostream& out, const std::vector<PowerSampleRow>& rows,
                             std::size_t rows_per_block = storage::kDefaultRowsPerBlock);
[[nodiscard]] std::vector<PowerSampleRow> read_sample_table_hpcb(
    std::istream& in, bool lenient = false, storage::ReadStats* stats = nullptr);

/// Inclusive time/job slice of a sample table — the query the paper's
/// time-resolved analyses and the streaming window reconstruction both ask.
struct SampleRange {
  std::optional<std::int64_t> min_minute;
  std::optional<std::int64_t> max_minute;
  std::optional<std::int64_t> min_job_id;
  std::optional<std::int64_t> max_job_id;

  [[nodiscard]] bool contains(const PowerSampleRow& r) const noexcept {
    const auto job = static_cast<std::int64_t>(r.job_id);
    return (!min_minute || r.minute >= *min_minute) &&
           (!max_minute || r.minute <= *max_minute) &&
           (!min_job_id || job >= *min_job_id) &&
           (!max_job_id || job <= *max_job_id);
  }
};

/// Loads only the rows inside `range`. For .hpcb files this is a pruned
/// zone-map scan — blocks outside the range are never decoded (see `stats`
/// for how many); CSV falls back to load-then-filter. Row order and values
/// match filtering a full load exactly.
[[nodiscard]] std::vector<PowerSampleRow> load_sample_table_range(
    const std::string& path, const SampleRange& range, bool lenient = false,
    storage::ScanStats* stats = nullptr);

/// Save in the given format (kAuto: ".hpcb" extension → binary, else CSV).
void save_sample_table(const std::string& path, const std::vector<PowerSampleRow>& rows,
                       TraceFormat format = TraceFormat::kAuto);
/// Load either format, auto-detected from the file's magic bytes.
[[nodiscard]] std::vector<PowerSampleRow> load_sample_table(const std::string& path,
                                                            bool lenient = false);

/// Applies `model` to a clean sample table the way a faulty collector would:
/// drops rows, corrupts values, duplicates rows, and swaps neighbours out of
/// order. Deterministic in the model's seed; the input order must itself be
/// deterministic. Node outages/crashes are keyed by the row's job-local node
/// index (global placement is not recorded in this format).
[[nodiscard]] std::vector<PowerSampleRow> inject_sample_faults(
    const std::vector<PowerSampleRow>& clean, const telemetry::FaultModel& model);

struct ScrubResult {
  std::vector<PowerSampleRow> rows;        ///< cleaned, (job, node, minute)-sorted
  telemetry::DataQualityReport quality;    ///< per-slot ledger (see reconciles())
};

/// Batch cleaning of a (possibly dirty) sample table. Slots are the
/// [first, last] minute span seen per (job, node); within it every slot is
/// classified ok/glitch/gap/duplicate exactly once. Glitches are repaired by
/// hold-last-good, gaps up to `config.max_interpolate_gap_min` by linear
/// interpolation; duplicates and unrepairable slots are dropped.
[[nodiscard]] ScrubResult scrub_sample_rows(std::vector<PowerSampleRow> rows,
                                            const telemetry::CleaningConfig& config,
                                            double node_tdp_watts);

/// File-level ingest: load a sample table in either format (auto-detected)
/// and scrub it. Rows lost to corrupt .hpcb blocks or skipped CSV lines show
/// up as gap slots in the returned DataQualityReport, so file damage and
/// collector faults land in the same ledger.
[[nodiscard]] ScrubResult scrub_sample_file(const std::string& path,
                                            const telemetry::CleaningConfig& config,
                                            double node_tdp_watts,
                                            bool lenient = true);

}  // namespace hpcpower::trace

#include "trace/replay.hpp"

#include <algorithm>
#include <cmath>

#include "trace/job_table.hpp"
#include "util/prng.hpp"

namespace hpcpower::trace {

std::vector<workload::JobRequest> replay_jobs(
    const std::vector<telemetry::JobRecord>& records, const cluster::SystemSpec& spec,
    const ReplayOptions& options) {
  std::vector<workload::JobRequest> out;
  out.reserve(records.size());

  for (const telemetry::JobRecord& r : records) {
    if (r.truncated_by_horizon || r.runtime_min() == 0) continue;

    workload::JobRequest j;
    j.job_id = r.job_id;
    j.user_id = r.user_id;
    j.app = r.app;
    j.submit = options.use_submit_times ? r.submit : r.start;
    j.nnodes = r.nnodes;
    j.walltime_req_min = std::max(r.walltime_req_min, r.runtime_min());
    j.runtime_min = r.runtime_min();

    // Rebuild the power behaviour from recorded aggregates. The mean is
    // matched exactly in expectation; the temporal shape is approximated as
    // a dip process whose std reproduces the recorded temporal std.
    workload::PowerBehavior& b = j.behavior;
    b.idle_watts = spec.idle_power_fraction * spec.node_tdp_watts * 0.9;
    b.max_watts = spec.node_tdp_watts * 1.05;
    b.memory_intensity =
        r.mean_node_power_w > 0.0
            ? std::clamp((r.mean_dram_w / r.mean_node_power_w - 0.08) / 0.30, 0.0, 1.0)
            : 0.2;
    b.job_seed = util::derive_stream(options.seed ^ r.job_id, "replayed-job");

    const double cv =
        r.mean_node_power_w > 0.0 ? r.temporal_std_w / r.mean_node_power_w : 0.0;
    if (r.peak_node_power_w > 1.02 * r.mean_node_power_w && cv > 0.02) {
      // Peak clearly above mean: treat as a phased job whose high level hits
      // the recorded peak and whose time share reproduces the recorded CV:
      // for a two-level process, cv^2 = f(1-f) amp^2 / (1+f amp)^2.
      const double amp =
          std::min(0.6, r.peak_node_power_w / r.mean_node_power_w - 1.0);
      b.phased = true;
      b.phase_amplitude = amp;
      const double ratio = cv / std::max(amp, 1e-6);
      b.phase_time_fraction = std::clamp(ratio * ratio, 0.02, 0.5);
      // base * (1 + f*amp) should equal the recorded mean.
      b.base_watts = r.mean_node_power_w / (1.0 + b.phase_time_fraction * amp);
    } else if (cv > 0.02) {
      // Variation without a peak above mean: dip process.
      b.phased = false;
      b.dip_depth = std::min(0.6, 2.0 * cv);
      const double ratio = cv / std::max(b.dip_depth, 1e-6);
      b.dip_time_fraction = std::clamp(ratio * ratio, 0.02, 0.4);
      b.base_watts =
          r.mean_node_power_w / (1.0 - b.dip_time_fraction * b.dip_depth);
    } else {
      b.phased = false;
      b.base_watts = r.mean_node_power_w;
    }
    b.base_watts = std::clamp(b.base_watts, b.idle_watts + 1.0, b.max_watts - 1.0);

    // Spatial imbalance from the recorded node-energy spread: for n nodes,
    // the expected max-min range of N(0, sigma) factors is ~d2(n) sigma.
    if (r.nnodes > 1) {
      const double spread = r.node_energy_spread_fraction();
      const double d2 = 2.0 * std::sqrt(std::log(static_cast<double>(r.nnodes)) + 1.0);
      b.imbalance_sigma = std::clamp(spread / d2, 0.0, 0.12);
    } else {
      b.imbalance_sigma = 0.0;
    }
    b.temporal_noise_sigma = 0.008;
    b.spatial_noise_sigma = 0.015;
    b.straggler_prob = 0.0;  // already folded into recorded aggregates

    out.push_back(j);
  }

  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.submit < b.submit; });
  return out;
}

std::vector<workload::JobRequest> replay_jobs_from_file(const std::string& path,
                                                        const cluster::SystemSpec& spec,
                                                        const ReplayOptions& options,
                                                        bool lenient) {
  return replay_jobs(load_job_table(path, lenient), spec, options);
}

}  // namespace hpcpower::trace

#include "trace/sample_table.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

const std::vector<std::string>& sample_table_columns() {
  static const std::vector<std::string> kColumns = {"job_id", "minute", "node_index",
                                                    "pkg_w", "dram_w"};
  return kColumns;
}

void write_sample_table(std::ostream& out, const std::vector<PowerSampleRow>& rows) {
  util::CsvWriter w(out);
  w.write_row(sample_table_columns());
  for (const PowerSampleRow& r : rows)
    w.write(r.job_id, r.minute, r.node_index, r.pkg_w, r.dram_w);
}

std::vector<PowerSampleRow> read_sample_table(std::istream& in) {
  util::CsvReader reader(in);
  if (reader.header() != sample_table_columns())
    throw std::invalid_argument("sample table: schema mismatch");
  std::vector<PowerSampleRow> out;
  std::size_t row_no = 0;
  while (auto row = reader.next()) {
    ++row_no;
    try {
      PowerSampleRow r;
      r.job_id = row->as_uint("job_id");
      r.minute = row->as_int("minute");
      r.node_index = static_cast<std::uint32_t>(row->as_uint("node_index"));
      r.pkg_w = row->as_double("pkg_w");
      r.dram_w = row->as_double("dram_w");
      out.push_back(r);
    } catch (const std::exception& e) {
      throw std::invalid_argument(
          util::format("sample table row %zu: %s", row_no, e.what()));
    }
  }
  return out;
}

void save_sample_table(const std::string& path, const std::vector<PowerSampleRow>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_sample_table(out, rows);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<PowerSampleRow> load_sample_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_sample_table(in);
}

}  // namespace hpcpower::trace

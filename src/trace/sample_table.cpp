#include "trace/sample_table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include <limits>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hpcpower::trace {

const std::vector<std::string>& sample_table_columns() {
  static const std::vector<std::string> kColumns = {"job_id", "minute", "node_index",
                                                    "pkg_w", "dram_w"};
  return kColumns;
}

void write_sample_table(std::ostream& out, const std::vector<PowerSampleRow>& rows) {
  util::CsvWriter w(out);
  w.write_row(sample_table_columns());
  for (const PowerSampleRow& r : rows)
    w.write(r.job_id, r.minute, r.node_index, r.pkg_w, r.dram_w);
}

std::vector<PowerSampleRow> read_sample_table(std::istream& in, bool lenient) {
  util::CsvReader reader(in, util::CsvReadOptions{true, lenient});
  if (reader.header() != sample_table_columns())
    throw std::invalid_argument("sample table: schema mismatch");
  std::vector<PowerSampleRow> out;
  while (auto row = reader.next()) {
    try {
      PowerSampleRow r;
      r.job_id = row->as_uint("job_id");
      r.minute = row->as_int("minute");
      r.node_index = static_cast<std::uint32_t>(row->as_uint("node_index"));
      r.pkg_w = row->as_double("pkg_w");
      r.dram_w = row->as_double("dram_w");
      out.push_back(r);
    } catch (const std::exception& e) {
      const std::string what =
          util::format("sample table line %zu: %s", row->line(), e.what());
      if (!lenient) throw std::invalid_argument(what);
      util::counters().add("csv.rows_skipped");
      util::log_warn(what + " (row skipped)");
    }
  }
  return out;
}

void write_sample_table_hpcb(std::ostream& out, const std::vector<PowerSampleRow>& rows,
                             std::size_t rows_per_block) {
  storage::Table table;
  table.schema = {{"job_id", storage::ColumnType::kInt64Delta},
                  {"minute", storage::ColumnType::kInt64Delta},
                  {"node_index", storage::ColumnType::kInt64Delta},
                  {"pkg_w", storage::ColumnType::kFloat64Xor},
                  {"dram_w", storage::ColumnType::kFloat64Xor}};
  table.columns.resize(table.schema.size());
  for (storage::Column& c : table.columns) {
    c.i64.reserve(rows.size());
    c.f64.reserve(rows.size());
  }
  for (const PowerSampleRow& r : rows) {
    table.columns[0].i64.push_back(static_cast<std::int64_t>(r.job_id));
    table.columns[1].i64.push_back(r.minute);
    table.columns[2].i64.push_back(static_cast<std::int64_t>(r.node_index));
    table.columns[3].f64.push_back(r.pkg_w);
    table.columns[4].f64.push_back(r.dram_w);
  }
  storage::write_hpcb(out, table, rows_per_block);
}

namespace {

std::vector<PowerSampleRow> rows_from_sample_table(const storage::Table& table,
                                                   bool lenient) {
  const std::vector<storage::ColumnSpec> expected = {
      {"job_id", storage::ColumnType::kInt64Delta},
      {"minute", storage::ColumnType::kInt64Delta},
      {"node_index", storage::ColumnType::kInt64Delta},
      {"pkg_w", storage::ColumnType::kFloat64Xor},
      {"dram_w", storage::ColumnType::kFloat64Xor}};
  if (!schema_compatible(table.schema, expected))
    throw std::invalid_argument("sample table: schema mismatch");
  std::vector<PowerSampleRow> out;
  out.reserve(table.rows());
  for (std::size_t i = 0; i < table.rows(); ++i) {
    const std::int64_t node = table.columns[2].i64[i];
    if (node < 0 || node > std::numeric_limits<std::uint32_t>::max()) {
      const std::string what = util::format(
          "sample table row %zu: node_index out of range", i);
      if (!lenient) throw std::invalid_argument(what);
      util::counters().add("storage.rows_skipped");
      util::log_warn(what + " (row skipped)");
      continue;
    }
    PowerSampleRow r;
    r.job_id = static_cast<std::uint64_t>(table.columns[0].i64[i]);
    r.minute = table.columns[1].i64[i];
    r.node_index = static_cast<std::uint32_t>(node);
    r.pkg_w = table.columns[3].f64[i];
    r.dram_w = table.columns[4].f64[i];
    out.push_back(r);
  }
  return out;
}

}  // namespace

std::vector<PowerSampleRow> read_sample_table_hpcb(std::istream& in, bool lenient,
                                                   storage::ReadStats* stats) {
  storage::ReadOptions options;
  options.lenient = lenient;
  return rows_from_sample_table(storage::read_hpcb(in, options, stats), lenient);
}

void save_sample_table(const std::string& path, const std::vector<PowerSampleRow>& rows,
                       TraceFormat format) {
  const TraceFormat resolved = resolve_save_format(format, path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  if (resolved == TraceFormat::kHpcb)
    write_sample_table_hpcb(out, rows);
  else
    write_sample_table(out, rows);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<PowerSampleRow> load_sample_table(const std::string& path, bool lenient) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  if (resolve_load_format(TraceFormat::kAuto, in) == TraceFormat::kHpcb)
    return read_sample_table_hpcb(in, lenient);
  return read_sample_table(in, lenient);
}

std::vector<PowerSampleRow> load_sample_table_range(const std::string& path,
                                                    const SampleRange& range,
                                                    bool lenient,
                                                    storage::ScanStats* stats) {
  bool hpcb = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open for reading: " + path);
    hpcb = resolve_load_format(TraceFormat::kAuto, in) == TraceFormat::kHpcb;
  }
  if (!hpcb) {
    // CSV has no block structure to prune; filter a full load.
    if (stats != nullptr) *stats = storage::ScanStats{};
    std::vector<PowerSampleRow> rows = load_sample_table(path, lenient);
    std::erase_if(rows,
                  [&range](const PowerSampleRow& r) { return !range.contains(r); });
    return rows;
  }
  storage::ScanQuery query;
  if (range.min_minute)
    query.where.push_back(storage::make_predicate(
        "minute", storage::PredicateOp::kGe, *range.min_minute));
  if (range.max_minute)
    query.where.push_back(storage::make_predicate(
        "minute", storage::PredicateOp::kLe, *range.max_minute));
  if (range.min_job_id)
    query.where.push_back(storage::make_predicate(
        "job_id", storage::PredicateOp::kGe, *range.min_job_id));
  if (range.max_job_id)
    query.where.push_back(storage::make_predicate(
        "job_id", storage::PredicateOp::kLe, *range.max_job_id));
  storage::ScanOptions options;
  options.lenient = lenient;
  storage::ScanResult result = storage::scan_hpcb_file(path, query, options);
  if (stats != nullptr) *stats = result.stats;
  return rows_from_sample_table(result.table, lenient);
}

std::vector<PowerSampleRow> inject_sample_faults(
    const std::vector<PowerSampleRow>& clean, const telemetry::FaultModel& model) {
  std::vector<PowerSampleRow> out;
  out.reserve(clean.size());
  for (const PowerSampleRow& row : clean) {
    const auto fault = model.classify(row.job_id, row.minute, row.node_index);
    switch (fault) {
      case telemetry::SampleFault::kDropout:
        break;
      case telemetry::SampleFault::kGlitchNan:
      case telemetry::SampleFault::kGlitchNegative:
      case telemetry::SampleFault::kGlitchSpike: {
        PowerSampleRow bad = row;
        bad.pkg_w = model.glitch_value(fault, row.job_id, row.minute, row.node_index);
        bad.dram_w = 0.0;
        out.push_back(bad);
        break;
      }
      case telemetry::SampleFault::kDuplicate:
        out.push_back(row);
        out.push_back(row);
        break;
      case telemetry::SampleFault::kNone:
        out.push_back(row);
        break;
    }
  }
  // Late-arriving records: deterministic adjacent swaps.
  for (std::size_t i = 0; i + 1 < out.size(); ++i)
    if (model.reorder_row(i)) std::swap(out[i], out[i + 1]);
  return out;
}

namespace {
bool row_key_less(const PowerSampleRow& a, const PowerSampleRow& b) noexcept {
  if (a.job_id != b.job_id) return a.job_id < b.job_id;
  if (a.node_index != b.node_index) return a.node_index < b.node_index;
  return a.minute < b.minute;
}
}  // namespace

ScrubResult scrub_sample_rows(std::vector<PowerSampleRow> rows,
                              const telemetry::CleaningConfig& config,
                              double node_tdp_watts) {
  ScrubResult result;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i)
    if (row_key_less(rows[i + 1], rows[i])) ++result.quality.rows_out_of_order;
  std::stable_sort(rows.begin(), rows.end(), row_key_less);

  std::unordered_set<std::uint64_t> jobs;
  auto& q = result.quality;
  std::size_t i = 0;
  while (i < rows.size()) {
    // One (job, node) stream at a time.
    const std::uint64_t job = rows[i].job_id;
    const std::uint32_t node = rows[i].node_index;
    jobs.insert(job);
    std::size_t end = i;
    while (end < rows.size() && rows[end].job_id == job &&
           rows[end].node_index == node)
      ++end;

    telemetry::NodeStreamScrubber scrub;
    std::vector<telemetry::NodeStreamScrubber::Backfill> backfill;
    const std::int64_t first_minute = rows[i].minute;
    std::int64_t prev_minute = first_minute - 1;
    // Last accepted row per minute, for interpolating the DRAM share too.
    double last_dram_fraction = 0.0;

    while (i < end) {
      const std::int64_t minute = rows[i].minute;
      // Every skipped minute inside the span is a gap slot.
      for (std::int64_t m = prev_minute + 1; m < minute; ++m) {
        q.count(scrub.missing(static_cast<std::uint32_t>(m - first_minute)));
      }
      const bool duplicated = i + 1 < end && rows[i + 1].minute == minute;
      const PowerSampleRow& row = rows[i];
      // Consume every row of this slot (a real collector can log more than
      // two copies; all extras are discarded).
      while (i < end && rows[i].minute == minute) ++i;

      backfill.clear();
      const auto out = scrub.observe(static_cast<std::uint32_t>(minute - first_minute),
                                     row.total_w(), duplicated, config,
                                     node_tdp_watts, backfill);
      q.count(out.cls);
      if (out.repaired_glitch) ++q.glitches_repaired;
      const double dram_fraction =
          out.cls == telemetry::SampleClass::kGlitch
              ? last_dram_fraction
              : (row.total_w() > 0.0 ? row.dram_w / row.total_w() : 0.0);
      for (const auto& b : backfill) {
        ++q.samples_interpolated;
        result.rows.push_back({job, first_minute + b.minute, node,
                               b.watts * (1.0 - last_dram_fraction),
                               b.watts * last_dram_fraction});
      }
      if (out.accepted) {
        result.rows.push_back({job, minute, node, *out.accepted * (1.0 - dram_fraction),
                               *out.accepted * dram_fraction});
        last_dram_fraction = dram_fraction;
      }
      prev_minute = minute;
    }
    q.samples_expected +=
        static_cast<std::uint64_t>(prev_minute - first_minute + 1);
  }
  q.jobs_seen = jobs.size();
  // Interpolated rows were appended out of order; restore the canonical sort.
  std::stable_sort(result.rows.begin(), result.rows.end(), row_key_less);
  return result;
}

ScrubResult scrub_sample_file(const std::string& path,
                              const telemetry::CleaningConfig& config,
                              double node_tdp_watts, bool lenient) {
  return scrub_sample_rows(load_sample_table(path, lenient), config,
                           node_tdp_watts);
}

}  // namespace hpcpower::trace

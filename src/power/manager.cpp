#include "power/manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/prng.hpp"

namespace hpcpower::power {

namespace {

constexpr std::uint64_t kMeterFaultDraw = 0;   // b-counter: fault yes/no
constexpr std::uint64_t kMeterFaultKind = 1;   // b-counter: dropout/spike/neg
constexpr std::uint64_t kMeterSpikeScale = 2;  // b-counter: spike magnitude

[[nodiscard]] std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

[[nodiscard]] double bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void expect_tag(std::istringstream& in, const char* tag) {
  std::string word;
  if (!(in >> word) || word != tag) {
    throw std::runtime_error("power checkpoint: expected '" + std::string(tag) +
                             "', got '" + word + "'");
  }
}

template <typename T>
[[nodiscard]] T read_value(std::istringstream& in, const char* what) {
  T v{};
  if (!(in >> v)) {
    throw std::runtime_error("power checkpoint: bad value for " +
                             std::string(what));
  }
  return v;
}

}  // namespace

const char* power_mode_name(PowerMode mode) noexcept {
  switch (mode) {
    case PowerMode::kNormal:
      return "NORMAL";
    case PowerMode::kThrottle:
      return "THROTTLE";
    case PowerMode::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

ClusterPowerManager::ClusterPowerManager(
    const cluster::SystemSpec& spec, PowerManagerConfig config,
    std::shared_ptr<const NodePowerPredictor> predictor, std::uint64_t seed)
    : spec_(spec), config_(config), predictor_(std::move(predictor)) {
  if (!predictor_) {
    predictor_ = std::make_shared<EstimatePredictor>(spec_.node_tdp_watts);
  }
  site_cap_w_ = config_.site_cap_w > 0.0
                    ? config_.site_cap_w
                    : config_.site_cap_fraction * spec_.provisioned_power_watts();
  site_cap_mw_ = std::llround(site_cap_w_ * 1000.0);
  tdp_mw_ = std::llround(spec_.node_tdp_watts * 1000.0);
  const Milliwatts idle_mw =
      std::llround(spec_.idle_power_fraction * spec_.node_tdp_watts * 1000.0);
  // Reserve the idle floor of every node plus a 1 W guard that absorbs the
  // sub-milliwatt rounding between this integer budget and the double
  // summation the facility meter performs.
  pool_mw_ = site_cap_mw_ -
             static_cast<Milliwatts>(spec_.node_count) * idle_mw - 1000;
  pool_mw_ = std::max<Milliwatts>(pool_mw_, 0);
  meter_seed_ = util::derive_stream(seed, "power-site-meter");
  if (config_.quality_window_min > 0) {
    quality_window_.assign(config_.quality_window_min, 0);
  }
  // Publish the initial NORMAL mode so a managed campaign always has the
  // power.mode gauge and the power.manager health probe, even when no mode
  // transition ever happens.
  enter_mode(PowerMode::kNormal);
}

double ClusterPowerManager::admission_estimate_w(
    const workload::JobRequest& job) const {
  double est = predictor_->predict_node_w(job) * (1.0 + config_.guard_band);
  est = std::clamp(est, 1.0, spec_.node_tdp_watts);
  const Milliwatts mw =
      std::clamp<Milliwatts>(std::llround(est * 1000.0), 1000, tdp_mw_);
  return static_cast<double>(mw) / 1000.0;
}

void ClusterPowerManager::on_job_start(const sched::RunningJob& job) {
  Milliwatts grant_mw =
      std::llround(job.request.estimated_node_power_w * 1000.0);
  grant_mw = std::clamp<Milliwatts>(grant_mw, 1, tdp_mw_);
  const auto nnodes = static_cast<std::uint32_t>(job.nodes.size());
  ledger_.grant(grant_mw * nnodes);
  grants_[job.request.job_id] = Grant{grant_mw, grant_mw, nnodes};
  ++jobs_granted_;
}

void ClusterPowerManager::on_job_end(const sched::RunningJob& job) {
  const auto it = grants_.find(job.request.job_id);
  if (it == grants_.end()) return;
  const Grant& g = it->second;
  const Milliwatts withheld =
      (g.grant_mw - std::min(g.grant_mw, g.cap_mw)) * g.nnodes;
  const Milliwatts total = g.grant_mw * g.nnodes;
  ledger_.release(total - withheld, withheld);
  grants_.erase(it);
}

void ClusterPowerManager::set_cap(workload::JobId /*id*/, Grant& g,
                                  Milliwatts new_cap_mw) {
  new_cap_mw = std::max<Milliwatts>(new_cap_mw, 1);
  if (new_cap_mw == g.cap_mw) return;
  const auto withheld = [&g](Milliwatts cap) {
    return (g.grant_mw - std::min(g.grant_mw, cap)) * g.nnodes;
  };
  ledger_.withhold(withheld(new_cap_mw) - withheld(g.cap_mw));
  g.cap_mw = new_cap_mw;
}

void ClusterPowerManager::enter_mode(PowerMode next) {
  mode_ = next;
  // Monitoring-only pushes (DESIGN.md §6): the mode gauge feeds the
  // self-metrics time series and the power.throttle_budget SLO rule; the
  // typed health probe rolls into the OK/DEGRADED/UNHEALTHY verdict.
  obs::metrics().gauge("power.mode").set(static_cast<double>(
      static_cast<int>(next)));
  const obs::HealthStatus status =
      next == PowerMode::kNormal     ? obs::HealthStatus::kOk
      : next == PowerMode::kThrottle ? obs::HealthStatus::kDegraded
                                     : obs::HealthStatus::kUnhealthy;
  obs::health().set("power.manager", status, power_mode_name(next));
}

void ClusterPowerManager::begin_minute(
    util::MinuteTime /*now*/,
    const std::vector<const sched::RunningJob*>& /*running*/) {
  HPCPOWER_SPAN("power.tick");
  ++managed_minutes_;
  switch (mode_) {
    case PowerMode::kNormal:
      ++minutes_normal_;
      break;
    case PowerMode::kThrottle:
      ++minutes_throttle_;
      break;
    case PowerMode::kDegraded:
      ++minutes_degraded_;
      break;
  }

  // The grant table mirrors the running set exactly (jobs are added in
  // on_job_start and removed in on_job_end), in ascending job id. All cap
  // arithmetic below is integer, so the walk is deterministic regardless of
  // the thread count the telemetry tick will use afterwards.
  Milliwatts busy_nodes = 0;
  Milliwatts grant_total = 0;
  for (const auto& [id, g] : grants_) {
    busy_nodes += g.nnodes;
    grant_total += g.grant_mw * g.nnodes;
  }
  const Milliwatts slack = std::max<Milliwatts>(pool_mw_ - grant_total, 0);
  // Integer floor division: the remainder stays as headroom, so the sum of
  // caps over busy nodes never exceeds pool_mw_ in any mode.
  const Milliwatts bonus_per_node = busy_nodes > 0 ? slack / busy_nodes : 0;
  const Milliwatts static_cap =
      spec_.node_count > 0
          ? std::max<Milliwatts>(
                pool_mw_ / static_cast<Milliwatts>(spec_.node_count), 1)
          : 1;

  for (auto& [id, g] : grants_) {
    Milliwatts cap = g.grant_mw;
    switch (mode_) {
      case PowerMode::kNormal:
        cap = std::min(tdp_mw_, g.grant_mw + bonus_per_node);
        break;
      case PowerMode::kThrottle:
        cap = static_cast<Milliwatts>(
            static_cast<double>(g.grant_mw) * config_.throttle_tighten_fraction);
        break;
      case PowerMode::kDegraded:
        cap = std::min(g.grant_mw, static_cap);
        break;
    }
    set_cap(id, g, cap);
  }

  const Milliwatts outstanding = ledger_.outstanding();
  peak_held_mw_ = std::max(peak_held_mw_, outstanding);
  committed_mwmin_ += outstanding;
  tdp_committed_mwmin_ += tdp_mw_ * busy_nodes;
}

void ClusterPowerManager::end_minute(util::MinuteTime now, double true_site_w) {
  ++meter_samples_;
  max_true_site_w_ = std::max(max_true_site_w_, true_site_w);
  if (true_site_w > site_cap_w_) {
    ++cap_violation_minutes_;
    obs::metrics().gauge("power.cap.violation_minutes")
        .set(static_cast<double>(cap_violation_minutes_));
  }

  // Deterministic meter-fault injection keyed by (seed, minute).
  const auto minute = static_cast<std::uint64_t>(now.minutes());
  double measured = true_site_w;
  if (config_.meter_fault_rate > 0.0 &&
      util::stateless_uniform(meter_seed_, minute, kMeterFaultDraw) <
          config_.meter_fault_rate) {
    ++meter_faults_injected_;
    switch (util::stateless_index(meter_seed_, minute, kMeterFaultKind, 3)) {
      case 0:  // dropout
        measured = 0.0;
        break;
      case 1:  // spike, x2..x4
        measured = true_site_w *
                   (2.0 + 2.0 * util::stateless_uniform(meter_seed_, minute,
                                                        kMeterSpikeScale));
        break;
      default:  // sign flip
        measured = -true_site_w;
        break;
    }
  }

  // Plausibility filter: a reading is trusted only when positive, below the
  // physically provisioned draw (with 5% margin), and not an implausible jump
  // from the last trusted reading.
  const bool bad =
      !(measured > 0.0) ||
      measured > 1.05 * spec_.provisioned_power_watts() ||
      (have_last_good_ &&
       std::abs(measured - last_good_w_) > 0.35 * site_cap_w_);
  double filtered = measured;
  if (bad) {
    ++meter_samples_rejected_;
    filtered = have_last_good_ ? last_good_w_ : 0.0;
    clean_streak_ = 0;
  } else {
    last_good_w_ = measured;
    have_last_good_ = true;
    ++clean_streak_;
  }
  max_filtered_site_w_ = std::max(max_filtered_site_w_, filtered);

  // Sliding telemetry-quality window (ring buffer over the last N minutes).
  if (!quality_window_.empty()) {
    const std::uint8_t slot = bad ? 1 : 0;
    if (window_count_ == quality_window_.size()) {
      window_bad_ -= quality_window_[window_pos_];
    } else {
      ++window_count_;
    }
    quality_window_[window_pos_] = slot;
    window_bad_ += slot;
    window_pos_ = (window_pos_ + 1) % static_cast<std::uint32_t>(quality_window_.size());
  }

  // Mode transitions. DEGRADED dominates: with untrustworthy telemetry the
  // filtered signal cannot be used to steer, so the static fallback wins.
  const bool window_full =
      !quality_window_.empty() && window_count_ == quality_window_.size();
  if (mode_ != PowerMode::kDegraded && window_full &&
      static_cast<double>(window_bad_) >
          config_.degraded_enter_bad_fraction *
              static_cast<double>(quality_window_.size())) {
    enter_mode(PowerMode::kDegraded);
    ++degraded_events_;
    throttle_dwell_ = 0;
    return;
  }
  switch (mode_) {
    case PowerMode::kDegraded:
      if (clean_streak_ >= config_.degraded_exit_clean_min) {
        enter_mode(PowerMode::kNormal);
        // Trust is re-earned from scratch: drop the bad-heavy history so the
        // freshly exited mode is not re-tripped by stale window contents.
        std::fill(quality_window_.begin(), quality_window_.end(), 0);
        window_pos_ = 0;
        window_count_ = 0;
        window_bad_ = 0;
      }
      break;
    case PowerMode::kNormal:
      if (filtered > config_.throttle_enter_fraction * site_cap_w_) {
        enter_mode(PowerMode::kThrottle);
        ++throttle_events_;
        throttle_dwell_ = 0;
      }
      break;
    case PowerMode::kThrottle:
      ++throttle_dwell_;
      if (throttle_dwell_ >= config_.throttle_min_dwell_min &&
          filtered < config_.throttle_exit_fraction * site_cap_w_) {
        enter_mode(PowerMode::kNormal);
      }
      break;
  }
}

double ClusterPowerManager::node_cap_w(workload::JobId id) const noexcept {
  const auto it = grants_.find(id);
  if (it == grants_.end()) return 0.0;
  return static_cast<double>(it->second.cap_mw) / 1000.0;
}

PowerReport ClusterPowerManager::report() const {
  PowerReport r;
  r.site_cap_w = site_cap_w_;
  r.pool_w = pool_w();
  r.guard_band = config_.guard_band;
  r.predictor = predictor_->name();
  r.jobs_granted = jobs_granted_;
  r.granted_mw = ledger_.granted();
  r.released_mw = ledger_.released();
  r.held_mw = ledger_.held();
  r.throttled_mw = ledger_.throttled();
  r.ledger_reconciles = ledger_.reconciles();
  r.peak_held_mw = peak_held_mw_;
  r.minutes_normal = minutes_normal_;
  r.minutes_throttle = minutes_throttle_;
  r.minutes_degraded = minutes_degraded_;
  r.throttle_events = throttle_events_;
  r.degraded_events = degraded_events_;
  r.meter_samples = meter_samples_;
  r.meter_faults_injected = meter_faults_injected_;
  r.meter_samples_rejected = meter_samples_rejected_;
  r.max_true_site_w = max_true_site_w_;
  r.max_filtered_site_w = max_filtered_site_w_;
  r.cap_violation_minutes = cap_violation_minutes_;
  if (managed_minutes_ > 0) {
    const auto mins = static_cast<double>(managed_minutes_);
    r.mean_committed_w = static_cast<double>(committed_mwmin_) / 1000.0 / mins;
    r.mean_tdp_committed_w =
        static_cast<double>(tdp_committed_mwmin_) / 1000.0 / mins;
  }
  return r;
}

std::vector<std::string> ClusterPowerManager::checkpoint_lines() const {
  std::vector<std::string> lines;
  std::ostringstream line;
  const auto flush = [&lines, &line]() {
    lines.push_back(line.str());
    line.str(std::string());
    line.clear();
  };

  line << "mode " << static_cast<int>(mode_) << ' ' << throttle_dwell_ << ' '
       << clean_streak_;
  flush();
  line << "meter " << double_bits(last_good_w_) << ' '
       << (have_last_good_ ? 1 : 0) << ' ' << double_bits(max_true_site_w_)
       << ' ' << double_bits(max_filtered_site_w_);
  flush();
  line << "window " << quality_window_.size() << ' ' << window_pos_ << ' '
       << window_count_ << ' ' << window_bad_;
  for (const std::uint8_t b : quality_window_) {
    line << ' ' << static_cast<int>(b);
  }
  flush();
  line << "ledger " << ledger_.granted() << ' ' << ledger_.released() << ' '
       << ledger_.held() << ' ' << ledger_.throttled();
  flush();
  line << "stats " << jobs_granted_ << ' ' << peak_held_mw_ << ' '
       << minutes_normal_ << ' ' << minutes_throttle_ << ' '
       << minutes_degraded_ << ' ' << throttle_events_ << ' '
       << degraded_events_ << ' ' << meter_samples_ << ' '
       << meter_faults_injected_ << ' ' << meter_samples_rejected_ << ' '
       << cap_violation_minutes_ << ' ' << committed_mwmin_ << ' '
       << tdp_committed_mwmin_ << ' ' << managed_minutes_;
  flush();
  line << "grants " << grants_.size();
  flush();
  for (const auto& [id, g] : grants_) {
    line << id << ' ' << g.grant_mw << ' ' << g.cap_mw << ' ' << g.nnodes;
    flush();
  }
  return lines;
}

void ClusterPowerManager::restore(const std::vector<std::string>& lines) {
  if (lines.empty()) {
    throw std::runtime_error(
        "power checkpoint: campaign checkpoint carries no power-manager state");
  }
  std::size_t idx = 0;
  const auto next = [&lines, &idx]() -> std::istringstream {
    if (idx >= lines.size()) {
      throw std::runtime_error("power checkpoint: truncated state");
    }
    return std::istringstream(lines[idx++]);
  };

  {
    auto in = next();
    expect_tag(in, "mode");
    const int raw = read_value<int>(in, "mode");
    if (raw < 0 || raw > 2) {
      throw std::runtime_error("power checkpoint: invalid mode");
    }
    enter_mode(static_cast<PowerMode>(raw));
    throttle_dwell_ = read_value<std::uint32_t>(in, "throttle_dwell");
    clean_streak_ = read_value<std::uint32_t>(in, "clean_streak");
  }
  {
    auto in = next();
    expect_tag(in, "meter");
    last_good_w_ = bits_double(read_value<std::uint64_t>(in, "last_good"));
    have_last_good_ = read_value<int>(in, "have_last_good") != 0;
    max_true_site_w_ = bits_double(read_value<std::uint64_t>(in, "max_true"));
    max_filtered_site_w_ =
        bits_double(read_value<std::uint64_t>(in, "max_filtered"));
  }
  {
    auto in = next();
    expect_tag(in, "window");
    const auto size = read_value<std::size_t>(in, "window size");
    if (size != quality_window_.size()) {
      throw std::runtime_error(
          "power checkpoint: quality window size does not match configuration");
    }
    window_pos_ = read_value<std::uint32_t>(in, "window pos");
    window_count_ = read_value<std::uint32_t>(in, "window count");
    window_bad_ = read_value<std::uint32_t>(in, "window bad");
    for (std::size_t i = 0; i < size; ++i) {
      quality_window_[i] =
          static_cast<std::uint8_t>(read_value<int>(in, "window slot"));
    }
  }
  {
    auto in = next();
    expect_tag(in, "ledger");
    const auto granted = read_value<Milliwatts>(in, "granted");
    const auto released = read_value<Milliwatts>(in, "released");
    const auto held = read_value<Milliwatts>(in, "held");
    const auto throttled = read_value<Milliwatts>(in, "throttled");
    ledger_.restore(granted, released, held, throttled);
    if (!ledger_.reconciles()) {
      throw std::runtime_error("power checkpoint: ledger does not reconcile");
    }
  }
  {
    auto in = next();
    expect_tag(in, "stats");
    jobs_granted_ = read_value<std::uint64_t>(in, "jobs_granted");
    peak_held_mw_ = read_value<Milliwatts>(in, "peak_held");
    minutes_normal_ = read_value<std::uint64_t>(in, "minutes_normal");
    minutes_throttle_ = read_value<std::uint64_t>(in, "minutes_throttle");
    minutes_degraded_ = read_value<std::uint64_t>(in, "minutes_degraded");
    throttle_events_ = read_value<std::uint64_t>(in, "throttle_events");
    degraded_events_ = read_value<std::uint64_t>(in, "degraded_events");
    meter_samples_ = read_value<std::uint64_t>(in, "meter_samples");
    meter_faults_injected_ = read_value<std::uint64_t>(in, "meter_faults");
    meter_samples_rejected_ = read_value<std::uint64_t>(in, "meter_rejected");
    cap_violation_minutes_ = read_value<std::uint64_t>(in, "cap_violations");
    committed_mwmin_ = read_value<std::int64_t>(in, "committed_mwmin");
    tdp_committed_mwmin_ = read_value<std::int64_t>(in, "tdp_committed_mwmin");
    managed_minutes_ = read_value<std::uint64_t>(in, "managed_minutes");
  }
  grants_.clear();
  {
    auto in = next();
    expect_tag(in, "grants");
    const auto count = read_value<std::size_t>(in, "grant count");
    for (std::size_t i = 0; i < count; ++i) {
      auto gin = next();
      const auto id = read_value<workload::JobId>(gin, "grant job id");
      Grant g;
      g.grant_mw = read_value<Milliwatts>(gin, "grant mw");
      g.cap_mw = read_value<Milliwatts>(gin, "cap mw");
      g.nnodes = read_value<std::uint32_t>(gin, "grant nnodes");
      if (!grants_.emplace(id, g).second) {
        throw std::runtime_error("power checkpoint: duplicate grant");
      }
    }
  }
}

}  // namespace hpcpower::power

#include "power/predictor.hpp"

#include <array>
#include <cmath>

#include "util/prng.hpp"

namespace hpcpower::power {

double TreePredictor::predict_node_w(const workload::JobRequest& job) const {
  if (!model_) return fallback_w_;
  const std::array<double, 3> features = {
      static_cast<double>(job.user_id), static_cast<double>(job.nnodes),
      static_cast<double>(job.walltime_req_min)};
  const double p = model_->predict(features);
  return std::isfinite(p) && p > 0.0 ? p : fallback_w_;
}

std::string TreePredictor::name() const {
  return model_ ? model_->name() : "fallback";
}

double NoisyPredictor::predict_node_w(const workload::JobRequest& job) const {
  const double base = inner_->predict_node_w(job);
  if (sigma_ <= 0.0) return base;
  const std::uint64_t stream = util::derive_stream(seed_, "power-predictor-noise");
  const double z = util::stateless_normal(stream, job.job_id, 0);
  return base * std::exp(sigma_ * z);
}

std::string NoisyPredictor::name() const {
  return inner_->name() + "+noise";
}

}  // namespace hpcpower::power

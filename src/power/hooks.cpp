#include "power/hooks.hpp"

#include <utility>

namespace hpcpower::power {

sched::SimulationHooks managed_hooks(ClusterPowerManager& manager,
                                     sched::SimulationHooks inner,
                                     std::function<double()> meter) {
  sched::SimulationHooks hooks;
  hooks.on_start = [&manager, on_start = std::move(inner.on_start)](
                       const sched::RunningJob& job) {
    manager.on_job_start(job);
    if (on_start) on_start(job);
  };
  hooks.on_end = [&manager, on_end = std::move(inner.on_end)](
                     const sched::RunningJob& job,
                     const sched::JobAccountingRecord& rec) {
    manager.on_job_end(job);
    if (on_end) on_end(job, rec);
  };
  hooks.per_minute = [&manager, per_minute = std::move(inner.per_minute),
                      meter = std::move(meter)](
                         util::MinuteTime now,
                         const std::vector<const sched::RunningJob*>& running,
                         std::uint32_t down_nodes) {
    manager.begin_minute(now, running);
    if (per_minute) per_minute(now, running, down_nodes);
    if (meter) manager.end_minute(now, meter());
  };
  hooks.checkpoint_state = [&manager]() { return manager.checkpoint_lines(); };
  hooks.restore_state = [&manager](const std::vector<std::string>& lines) {
    manager.restore(lines);
  };
  return hooks;
}

}  // namespace hpcpower::power

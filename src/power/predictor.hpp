#pragma once
// Pre-execution node-power predictors for admission control.
//
// The closed loop budgets a job before it starts, so the only inputs are the
// pre-execution quantities the paper's Sec 5 models use. Three sources:
//
//   * EstimatePredictor — the submission's own estimate (the template nominal
//     power a user or site database would supply), TDP when absent;
//   * TreePredictor    — a trained regression model (the paper's BDT) over
//     (user id, nnodes, requested wall time);
//   * NoisyPredictor   — decorator that multiplies any predictor by a
//     deterministic lognormal error keyed by (seed, job id), used to sweep
//     predictor quality without retraining.
//
// All predictors are pure functions of the job request (plus frozen model
// state), so admission decisions are bit-identical at any thread count and
// across checkpoint/resume.

#include <cstdint>
#include <memory>
#include <string>

#include "ml/regressor.hpp"
#include "workload/generator.hpp"

namespace hpcpower::power {

class NodePowerPredictor {
 public:
  virtual ~NodePowerPredictor() = default;
  /// Predicted mean per-node power in watts for a job about to start.
  [[nodiscard]] virtual double predict_node_w(const workload::JobRequest& job) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uses JobRequest::estimated_node_power_w; falls back to `fallback_w`
/// (typically the node TDP) when the submission carries no estimate.
class EstimatePredictor final : public NodePowerPredictor {
 public:
  explicit EstimatePredictor(double fallback_w) : fallback_w_(fallback_w) {}
  [[nodiscard]] double predict_node_w(const workload::JobRequest& job) const override {
    return job.estimated_node_power_w > 0.0 ? job.estimated_node_power_w
                                            : fallback_w_;
  }
  [[nodiscard]] std::string name() const override { return "estimate"; }

 private:
  double fallback_w_;
};

/// Wraps a fitted regressor over the paper's feature set
/// (user id, nnodes, requested wall time).
class TreePredictor final : public NodePowerPredictor {
 public:
  TreePredictor(std::shared_ptr<const ml::Regressor> model, double fallback_w)
      : model_(std::move(model)), fallback_w_(fallback_w) {}
  [[nodiscard]] double predict_node_w(const workload::JobRequest& job) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const ml::Regressor> model_;
  double fallback_w_;
};

/// Multiplies an inner prediction by exp(sigma * z) with z a stateless
/// standard normal keyed by (seed, job id): the predictor-quality axis of the
/// robustness scenario matrix.
class NoisyPredictor final : public NodePowerPredictor {
 public:
  NoisyPredictor(std::shared_ptr<const NodePowerPredictor> inner, double sigma,
                 std::uint64_t seed)
      : inner_(std::move(inner)), sigma_(sigma), seed_(seed) {}
  [[nodiscard]] double predict_node_w(const workload::JobRequest& job) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const NodePowerPredictor> inner_;
  double sigma_;
  std::uint64_t seed_;
};

}  // namespace hpcpower::power

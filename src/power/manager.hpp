#pragma once
// Closed-loop hierarchical power manager: cluster -> job -> node.
//
// Enforces a site-wide power cap inside the campaign simulation instead of
// advising after the fact. The safety argument is structural, not reactive:
//
//   pool = site_cap - node_count * idle_watts - 1 W guard
//
// is the budget available to compute. Every starting job receives a grant
// (predicted per-node power * (1 + guard band), clamped to TDP), admission
// refuses starts that would push committed grants past the pool, and every
// running job's nodes are clamped by the RAPL model at their current per-node
// cap. Caps are recomputed each minute so that the integer sum of caps over
// busy nodes never exceeds the pool — therefore the facility meter
// (capped busy draw + idle floor) cannot exceed the site cap in ANY mode,
// no matter how badly the predictor missed, which nodes failed, or what the
// telemetry claims.
//
// On top of the structural bound sits a reactive state machine:
//
//   NORMAL    grants plus deterministically redistributed slack (stranded
//             power recovered by letting jobs run up to TDP when budget is
//             spare),
//   THROTTLE  measured site power drifted toward the cap: caps tighten to a
//             fraction of the grant, with hysteresis (enter/exit fractions
//             plus a minimum dwell) so a noisy meter cannot flap the mode,
//   DEGRADED  the site meter is untrustworthy (too many implausible samples
//             in the sliding quality window): fall back to conservative
//             static caps that do not depend on telemetry at all.
//
// Every milliwatt moves through the PowerLedger (granted = released + held +
// throttled, exact in int64 milliwatts). All decisions are integer arithmetic
// over deterministic inputs in ascending-job-id order, so managed campaigns
// keep the repo-wide thread-count-invariance guarantee, and the complete
// manager state serializes into the campaign checkpoint (see
// checkpoint_lines()/restore()) for bit-identical kill/resume.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/system_spec.hpp"
#include "power/ledger.hpp"
#include "power/predictor.hpp"
#include "sched/scheduler.hpp"
#include "sched/simulator.hpp"
#include "util/sim_time.hpp"

namespace hpcpower::power {

enum class PowerMode : int { kNormal = 0, kThrottle = 1, kDegraded = 2 };

[[nodiscard]] const char* power_mode_name(PowerMode mode) noexcept;

struct PowerManagerConfig {
  bool enabled = false;
  /// Site-wide cap as a fraction of provisioned power (node_count * TDP).
  double site_cap_fraction = 0.75;
  /// Absolute site cap in watts; > 0 overrides site_cap_fraction.
  double site_cap_w = 0.0;
  /// Admission guard band on top of the predicted per-node power.
  double guard_band = 0.15;
  /// Lognormal predictor-error injection (sigma of ln-error; 0 = faithful).
  double predictor_error_sigma = 0.0;
  /// Emergency throttle hysteresis: enter above, exit below (fractions of
  /// the site cap), with a minimum dwell before the exit test applies.
  double throttle_enter_fraction = 0.97;
  double throttle_exit_fraction = 0.90;
  double throttle_tighten_fraction = 0.85;
  std::uint32_t throttle_min_dwell_min = 5;
  /// Telemetry-trust window: fraction of implausible meter samples in the
  /// last quality_window_min minutes that trips DEGRADED, and the clean
  /// streak required to leave it.
  std::uint32_t quality_window_min = 60;
  double degraded_enter_bad_fraction = 0.25;
  std::uint32_t degraded_exit_clean_min = 30;
  /// Per-minute probability that the site meter reading is faulty
  /// (dropout / spike / negative), keyed statelessly by (seed, minute).
  double meter_fault_rate = 0.0;

  friend bool operator==(const PowerManagerConfig&, const PowerManagerConfig&) = default;
};

/// Final accounting of one managed campaign, rendered as the report's
/// "Closed-loop power management" section.
struct PowerReport {
  double site_cap_w = 0.0;
  double pool_w = 0.0;
  double guard_band = 0.0;
  std::string predictor;
  std::uint64_t jobs_granted = 0;
  // Ledger (milliwatts, exact).
  Milliwatts granted_mw = 0;
  Milliwatts released_mw = 0;
  Milliwatts held_mw = 0;
  Milliwatts throttled_mw = 0;
  bool ledger_reconciles = false;
  Milliwatts peak_held_mw = 0;
  // Mode occupancy and events.
  std::uint64_t minutes_normal = 0;
  std::uint64_t minutes_throttle = 0;
  std::uint64_t minutes_degraded = 0;
  std::uint64_t throttle_events = 0;
  std::uint64_t degraded_events = 0;
  // Meter health.
  std::uint64_t meter_samples = 0;
  std::uint64_t meter_faults_injected = 0;
  std::uint64_t meter_samples_rejected = 0;
  // Site-level outcomes. max_true_site_w is the unfaulted facility draw; the
  // structural invariant promises max_true_site_w <= site_cap_w always.
  double max_true_site_w = 0.0;
  double max_filtered_site_w = 0.0;
  std::uint64_t cap_violation_minutes = 0;
  // Stranded-power recovery: mean committed grant vs the TDP-worst-case
  // commitment the same placements would have required (both in watts,
  // averaged over managed minutes).
  double mean_committed_w = 0.0;
  double mean_tdp_committed_w = 0.0;

  [[nodiscard]] double mean_stranded_recovered_w() const noexcept {
    return mean_tdp_committed_w - mean_committed_w;
  }
  [[nodiscard]] double headroom_w() const noexcept {
    return site_cap_w - max_true_site_w;
  }

  friend bool operator==(const PowerReport&, const PowerReport&) = default;
};

class ClusterPowerManager {
 public:
  /// `seed` keys the deterministic meter-fault stream (use the campaign seed).
  ClusterPowerManager(const cluster::SystemSpec& spec, PowerManagerConfig config,
                      std::shared_ptr<const NodePowerPredictor> predictor,
                      std::uint64_t seed = 42);

  /// Per-node admission estimate in watts for one submission: prediction *
  /// (1 + guard band), clamped to [1 W, TDP], rounded to a whole milliwatt so
  /// the scheduler's double arithmetic and the integer ledger agree. Written
  /// into JobRequest::estimated_node_power_w before the campaign runs.
  [[nodiscard]] double admission_estimate_w(const workload::JobRequest& job) const;

  /// Resolved site cap / admission pool in watts.
  [[nodiscard]] double site_cap_w() const noexcept { return site_cap_w_; }
  [[nodiscard]] double pool_w() const noexcept {
    return static_cast<double>(pool_mw_) / 1000.0;
  }

  // -- campaign hooks (wired by managed_hooks(), see hooks.hpp) --------------
  void on_job_start(const sched::RunningJob& job);
  void on_job_end(const sched::RunningJob& job);
  /// Recomputes per-node caps for the running set (ascending job id) under
  /// the current mode. Runs after placements, before the telemetry tick.
  void begin_minute(util::MinuteTime now,
                    const std::vector<const sched::RunningJob*>& running);
  /// Consumes this minute's site meter reading (true facility draw before
  /// meter faults), injects the configured meter faults, plausibility-filters
  /// the result, and drives the NORMAL/THROTTLE/DEGRADED transitions.
  void end_minute(util::MinuteTime now, double true_site_w);

  /// Current per-node cap in watts for a running job (0 = unknown job,
  /// uncapped). Safe to call concurrently with itself: the cap table only
  /// changes inside begin_minute().
  [[nodiscard]] double node_cap_w(workload::JobId id) const noexcept;

  [[nodiscard]] PowerMode mode() const noexcept { return mode_; }
  [[nodiscard]] const PowerLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const PowerManagerConfig& config() const noexcept { return config_; }
  [[nodiscard]] PowerReport report() const;

  // -- checkpoint support ----------------------------------------------------
  /// Serializes the complete mutable manager state as tag-value lines
  /// (doubles as IEEE-754 bit patterns). Embedded in the campaign checkpoint.
  [[nodiscard]] std::vector<std::string> checkpoint_lines() const;
  /// Restores state written by checkpoint_lines(); throws std::runtime_error
  /// on malformed input.
  void restore(const std::vector<std::string>& lines);

 private:
  struct Grant {
    Milliwatts grant_mw = 0;  ///< per node
    Milliwatts cap_mw = 0;    ///< per node, current
    std::uint32_t nnodes = 0;
  };

  void set_cap(workload::JobId id, Grant& g, Milliwatts new_cap_mw);
  void enter_mode(PowerMode next);

  cluster::SystemSpec spec_;
  PowerManagerConfig config_;
  std::shared_ptr<const NodePowerPredictor> predictor_;

  double site_cap_w_ = 0.0;
  Milliwatts site_cap_mw_ = 0;
  Milliwatts pool_mw_ = 0;
  Milliwatts tdp_mw_ = 0;
  std::uint64_t meter_seed_ = 0;

  // Mutable campaign state (all of it checkpointed).
  std::map<workload::JobId, Grant> grants_;
  PowerLedger ledger_;
  PowerMode mode_ = PowerMode::kNormal;
  std::uint32_t throttle_dwell_ = 0;
  std::uint32_t clean_streak_ = 0;
  double last_good_w_ = 0.0;
  bool have_last_good_ = false;
  std::vector<std::uint8_t> quality_window_;  // ring buffer: 1 = bad sample
  std::uint32_t window_pos_ = 0;
  std::uint32_t window_count_ = 0;
  std::uint32_t window_bad_ = 0;
  // Report accumulators.
  std::uint64_t jobs_granted_ = 0;
  Milliwatts peak_held_mw_ = 0;
  std::uint64_t minutes_normal_ = 0;
  std::uint64_t minutes_throttle_ = 0;
  std::uint64_t minutes_degraded_ = 0;
  std::uint64_t throttle_events_ = 0;
  std::uint64_t degraded_events_ = 0;
  std::uint64_t meter_samples_ = 0;
  std::uint64_t meter_faults_injected_ = 0;
  std::uint64_t meter_samples_rejected_ = 0;
  double max_true_site_w_ = 0.0;
  double max_filtered_site_w_ = 0.0;
  std::uint64_t cap_violation_minutes_ = 0;
  std::int64_t committed_mwmin_ = 0;      // sum over minutes of held+throttled
  std::int64_t tdp_committed_mwmin_ = 0;  // sum over minutes of TDP-equivalent
  std::uint64_t managed_minutes_ = 0;
};

}  // namespace hpcpower::power

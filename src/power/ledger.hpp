#pragma once
// Power-budget ledger in integer milliwatts.
//
// The closed-loop power manager accounts for every watt it hands out. Floating
// point cannot promise "granted = released + held + throttled" exactly, so the
// ledger works in int64 milliwatts: additions and subtractions are exact, the
// reconciliation check is an integer equality, and a resumed campaign carries
// the ledger across a checkpoint bit-identically.
//
// Semantics:
//   granted    cumulative milliwatts ever granted to starting jobs,
//   released   cumulative milliwatts returned by finished/killed jobs,
//   held       milliwatts currently granted AND currently deliverable (the
//              node caps let the jobs draw them),
//   throttled  milliwatts currently granted but withheld by the THROTTLE or
//              DEGRADED caps.
// Invariant (checked by reconciles()): granted == released + held + throttled.

#include <cstdint>

namespace hpcpower::power {

using Milliwatts = std::int64_t;

class PowerLedger {
 public:
  /// A job starts: its whole grant begins in the held (deliverable) bucket.
  void grant(Milliwatts mw) noexcept {
    granted_ += mw;
    held_ += mw;
  }

  /// Throttling moved `mw` of currently-granted power from deliverable to
  /// withheld (negative `mw` moves it back when a throttle lifts).
  void withhold(Milliwatts mw) noexcept {
    held_ -= mw;
    throttled_ += mw;
  }

  /// A job ends (completed, truncated, or killed): its full grant leaves the
  /// outstanding buckets and is counted as released. `held_part` +
  /// `throttled_part` must equal the job's original grant.
  void release(Milliwatts held_part, Milliwatts throttled_part) noexcept {
    held_ -= held_part;
    throttled_ -= throttled_part;
    released_ += held_part + throttled_part;
  }

  [[nodiscard]] Milliwatts granted() const noexcept { return granted_; }
  [[nodiscard]] Milliwatts released() const noexcept { return released_; }
  [[nodiscard]] Milliwatts held() const noexcept { return held_; }
  [[nodiscard]] Milliwatts throttled() const noexcept { return throttled_; }
  /// Grant still out with running jobs.
  [[nodiscard]] Milliwatts outstanding() const noexcept { return held_ + throttled_; }

  /// Every granted milliwatt is in exactly one bucket.
  [[nodiscard]] bool reconciles() const noexcept {
    return held_ >= 0 && throttled_ >= 0 &&
           granted_ == released_ + held_ + throttled_;
  }

  void restore(Milliwatts granted, Milliwatts released, Milliwatts held,
               Milliwatts throttled) noexcept {
    granted_ = granted;
    released_ = released;
    held_ = held;
    throttled_ = throttled;
  }

  friend bool operator==(const PowerLedger&, const PowerLedger&) = default;

 private:
  Milliwatts granted_ = 0;
  Milliwatts released_ = 0;
  Milliwatts held_ = 0;
  Milliwatts throttled_ = 0;
};

}  // namespace hpcpower::power

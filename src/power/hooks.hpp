#pragma once
// Wires a ClusterPowerManager into a campaign's SimulationHooks.
//
// The manager sees every lifecycle event the simulator emits — start, end
// (complete / kill / truncate), and the per-minute monitoring tick — wrapped
// around whatever inner hooks the caller already had (typically the telemetry
// pipeline). Each minute runs as:
//
//   manager.begin_minute()   recompute per-node caps for the running set
//   inner.per_minute()       telemetry tick under those caps
//   manager.end_minute()     consume the site meter reading, drive the
//                            NORMAL/THROTTLE/DEGRADED state machine
//
// `meter` supplies the site power reading for the minute that just ticked
// (e.g. the back of the pipeline's system series); faults are injected inside
// the manager, deterministically, so the same campaign always sees the same
// faulty meter. checkpoint_state/restore_state round-trip the manager through
// the campaign checkpoint.

#include <functional>

#include "power/manager.hpp"
#include "sched/simulator.hpp"

namespace hpcpower::power {

/// Composes power management over `inner`. The manager must outlive the
/// returned hooks. `meter` may be empty only if end-of-minute control is
/// driven elsewhere (tests); then the state machine never leaves NORMAL.
[[nodiscard]] sched::SimulationHooks managed_hooks(
    ClusterPowerManager& manager, sched::SimulationHooks inner,
    std::function<double()> meter);

}  // namespace hpcpower::power

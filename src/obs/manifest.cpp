#include "obs/manifest.hpp"

#include <fstream>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

namespace hpcpower::obs {

namespace {

std::string quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += detail::json_escape(text);
  out += '"';
  return out;
}

}  // namespace

std::string render_run_manifest(const RunInfo& info) {
  const MetricsSnapshot snap = metrics().snapshot();

  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"schema\": \"hpcpower.run_manifest.v1\",\n";
  out += "  \"program\": " + quoted(info.program) + ",\n";
  out += util::format("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(info.seed));
  out += util::format("  \"threads\": %zu,\n", info.threads);
  out += util::format("  \"hardware_concurrency\": %u,\n",
                      std::thread::hardware_concurrency());

  out += "  \"config\": {";
  for (std::size_t i = 0; i < info.config.size(); ++i) {
    out += (i == 0 ? "\n    " : ",\n    ");
    out += quoted(info.config[i].first) + ": " + quoted(info.config[i].second);
  }
  out += info.config.empty() ? "},\n" : "\n  },\n";

  out += "  \"observability\": {\n";
  out += util::format("    \"recording\": %s,\n",
                      recording() ? "true" : "false");
  out += util::format("    \"spans_recorded\": %llu\n",
                      static_cast<unsigned long long>(recorded_span_count()));
  out += "  },\n";

  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += (i == 0 ? "\n    " : ",\n    ");
    out += quoted(snap.counters[i].first) +
           util::format(": %llu",
                        static_cast<unsigned long long>(snap.counters[i].second));
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += (i == 0 ? "\n    " : ",\n    ");
    out += quoted(snap.gauges[i].first) + ": " +
           detail::json_number(snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    out += (i == 0 ? "\n    " : ",\n    ");
    out += "{\"name\": " + quoted(name) + ", \"edges\": [";
    for (std::size_t j = 0; j < h.edges.size(); ++j) {
      if (j != 0) out += ", ";
      out += detail::json_number(h.edges[j]);
    }
    out += "], \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j != 0) out += ", ";
      out += util::format("%llu", static_cast<unsigned long long>(h.counts[j]));
    }
    out += util::format("], \"count\": %llu",
                        static_cast<unsigned long long>(h.count));
    out += ", \"sum\": " + detail::json_number(h.sum);
    if (h.finite_count > 0) {
      out += ", \"min\": " + detail::json_number(h.min);
      out += ", \"max\": " + detail::json_number(h.max);
    }
    out += "}";
  }
  out += snap.histograms.empty() ? "],\n" : "\n  ],\n";

  out += "  \"timers\": [";
  for (std::size_t i = 0; i < snap.timers.size(); ++i) {
    const auto& t = snap.timers[i];
    out += (i == 0 ? "\n    " : ",\n    ");
    out += "{\"name\": " + quoted(t.name) +
           util::format(", \"calls\": %llu, \"total_ms\": %.3f}",
                        static_cast<unsigned long long>(t.calls),
                        static_cast<double>(t.total_ns) / 1e6);
  }
  out += snap.timers.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

void write_run_manifest(const std::string& path, const RunInfo& info) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << render_run_manifest(info);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace hpcpower::obs

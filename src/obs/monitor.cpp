#include "obs/monitor.hpp"

#include <utility>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "util/strings.hpp"

namespace hpcpower::obs {

SelfMonitor::SelfMonitor(MonitorConfig config)
    : config_(std::move(config)),
      series_(TimeSeriesConfig{config_.ring_capacity, config_.cadence_minutes}),
      slo_(config_.rules.empty() ? SloEngine::default_rules() : config_.rules) {}

void SelfMonitor::add_collector(std::function<void(std::int64_t)> collector) {
  collectors_.push_back(std::move(collector));
}

void SelfMonitor::sample_locked(std::int64_t minute, bool force) {
  for (const auto& collector : collectors_) collector(minute);
  const bool sampled =
      force ? series_.force_sample(minute) : series_.sample(minute);
  if (!sampled) return;
  slo_.evaluate(series_, minute);
  // The sentinel means "never exported"; subtracting it would overflow.
  const bool never_exported =
      last_export_minute_ == std::numeric_limits<std::int64_t>::min();
  if (!config_.openmetrics_path.empty() && config_.export_every_minutes > 0 &&
      (never_exported ||
       minute - last_export_minute_ >= config_.export_every_minutes)) {
    write_openmetrics(config_.openmetrics_path);
    metrics().count("monitor.exports");
    last_export_minute_ = minute;
  }
}

void SelfMonitor::on_minute(std::int64_t minute) {
  if (minute % config_.cadence_minutes != 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (minute <= series_.last_minute()) return;
  sample_locked(minute, /*force=*/false);
}

void SelfMonitor::finalize(std::int64_t minute) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (minute > series_.last_minute()) sample_locked(minute, /*force=*/true);
  if (!config_.openmetrics_path.empty()) {
    write_openmetrics(config_.openmetrics_path);
    metrics().count("monitor.exports");
  }
  if (!config_.self_metrics_path.empty()) series_.save(config_.self_metrics_path);
}

std::string SelfMonitor::render_monitoring_section() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "## Continuous self-monitoring\n\n";
  out += util::format(
      "- samples: %llu recorded (cadence %lld min, ring %zu, %llu evicted)\n",
      static_cast<unsigned long long>(series_.samples_taken()),
      static_cast<long long>(series_.cadence_minutes()), series_.capacity(),
      static_cast<unsigned long long>(series_.samples_evicted()));

  const auto components = health().snapshot();
  out += util::format("- health: %s\n",
                      health_status_name(health().overall()));
  for (const auto& c : components) {
    out += util::format("  - %s: %s", c.component.c_str(),
                        health_status_name(c.status));
    if (!c.detail.empty()) out += " — " + c.detail;
    out += "\n";
  }

  out += util::format(
      "- SLO alerts: %llu fired, %llu resolved, %zu active\n",
      static_cast<unsigned long long>(slo_.fired()),
      static_cast<unsigned long long>(slo_.resolved()), slo_.active());

  out += "\n| SLO rule | objective | burn (short) | burn (long) | state |\n";
  out += "|---|---|---|---|---|\n";
  for (const auto& s : slo_.status()) {
    const SloRule* rule = nullptr;
    for (const auto& r : slo_.rules())
      if (r.name == s.rule) rule = &r;
    out += util::format("| %s | %.3f | %.2f | %.2f | %s |\n", s.rule.c_str(),
                        rule ? rule->objective : 0.0, s.burn_short,
                        s.burn_long, s.firing ? "FIRING" : "ok");
  }

  if (!slo_.alerts().empty()) {
    out += "\nAlert log:\n\n";
    for (const auto& a : slo_.alerts()) {
      if (a.active()) {
        out += util::format(
            "- `%s` fired at minute %lld (burn %.2f / %.2f), still active\n",
            a.rule.c_str(), static_cast<long long>(a.fired_minute),
            a.burn_short, a.burn_long);
      } else {
        out += util::format(
            "- `%s` fired at minute %lld (burn %.2f / %.2f), resolved at "
            "minute %lld\n",
            a.rule.c_str(), static_cast<long long>(a.fired_minute),
            a.burn_short, a.burn_long,
            static_cast<long long>(a.resolved_minute));
      }
    }
  }
  return out;
}

}  // namespace hpcpower::obs

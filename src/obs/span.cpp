#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace hpcpower::obs {

namespace {

std::atomic<bool> g_recording{false};
std::atomic<std::uint64_t> g_span_count{0};
std::atomic<std::int64_t> g_epoch_ns{0};

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread event sink. Owned jointly by the writing thread (thread_local
/// shared_ptr) and the global registry, so events survive the thread —
/// the pool is rebuilt whenever the thread count changes, and a joined
/// worker's spans must still reach the exporter.
struct EventBuffer {
  std::uint32_t tid = 0;
  std::string label;
  std::vector<TraceEvent> events;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

BufferRegistry& buffer_registry() {
  static BufferRegistry registry;
  return registry;
}

EventBuffer& local_buffer() {
  thread_local std::shared_ptr<EventBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<EventBuffer>();
    buffer->label = util::thread_label();
    auto& registry = buffer_registry();
    const std::lock_guard lock(registry.mutex);
    buffer->tid = registry.next_tid++;
    registry.buffers.push_back(buffer);
  }
  return *buffer;
}

}  // namespace

void set_recording(bool on) noexcept {
  if (on) {
    std::int64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, now_ns());
  }
  g_recording.store(on, std::memory_order_relaxed);
}

bool recording() noexcept { return g_recording.load(std::memory_order_relaxed); }

std::uint64_t recorded_span_count() noexcept {
  return g_span_count.load(std::memory_order_relaxed);
}

void clear_recorded() {
  auto& registry = buffer_registry();
  const std::lock_guard lock(registry.mutex);
  for (auto& buffer : registry.buffers) buffer->events.clear();
  g_span_count.store(0, std::memory_order_relaxed);
  g_epoch_ns.store(recording() ? now_ns() : 0, std::memory_order_relaxed);
}

std::vector<ThreadEvents> recorded_events() {
  std::vector<ThreadEvents> out;
  auto& registry = buffer_registry();
  const std::lock_guard lock(registry.mutex);
  out.reserve(registry.buffers.size());
  for (const auto& buffer : registry.buffers) {
    if (buffer->events.empty()) continue;
    ThreadEvents t;
    t.tid = buffer->tid;
    t.label = buffer->label;
    t.events = buffer->events;
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadEvents& a, const ThreadEvents& b) { return a.tid < b.tid; });
  return out;
}

std::int64_t recording_epoch_ns() noexcept {
  return g_epoch_ns.load(std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept : name_(name) {
  util::push_log_context(name);
  timed_ = g_recording.load(std::memory_order_relaxed);
  if (timed_) start_ns_ = now_ns();
}

Span::~Span() {
  if (timed_) {
    const std::int64_t dur_ns = now_ns() - start_ns_;
    local_buffer().events.push_back(TraceEvent{name_, start_ns_, dur_ns});
    metrics().timer(name_).add(dur_ns);
    g_span_count.fetch_add(1, std::memory_order_relaxed);
  }
  util::pop_log_context();
}

}  // namespace hpcpower::obs

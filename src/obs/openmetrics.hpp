#pragma once
// OpenMetrics / Prometheus text exposition of the metric and health
// registries (DESIGN.md §6), alongside the JSON run manifest.
//
// Mapping: dotted metric names become underscore names ("sched.requeues" ->
// "sched_requeues"); counters render as "<name>_total", gauges as bare
// samples, histograms as cumulative "le" buckets plus "_sum"/"_count"
// (upper-inclusive edges match OpenMetrics bucket semantics exactly), and
// span-fed timers as "<name>_seconds_total" + "<name>_calls_total".
// Component health renders as "health_status{component=\"...\"}" gauges —
// label values go through openmetrics_label_escape, which shares its escape
// property tests with the JSON helpers. The document ends with "# EOF" as
// the spec requires, so a scrape validator can detect truncation.

#include <string>
#include <string_view>

namespace hpcpower::obs {

/// Renders every counter, gauge, histogram, and timer plus the health
/// registry in OpenMetrics text format (ends with "# EOF\n").
[[nodiscard]] std::string render_openmetrics();

/// Writes render_openmetrics() to `path` (tmp-then-rename is not needed:
/// scrapers re-read, and partial files fail the "# EOF" check).
void write_openmetrics(const std::string& path);

namespace detail {

/// Sanitizes a dotted metric name to the OpenMetrics charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* by mapping every other byte to '_'.
[[nodiscard]] std::string openmetrics_name(std::string_view name);

/// Escapes a label value or help text per the OpenMetrics ABNF: backslash,
/// double quote, and newline.
[[nodiscard]] std::string openmetrics_label_escape(std::string_view text);

/// Renders a sample value: shortest round-trip decimal for finite doubles,
/// "NaN" / "+Inf" / "-Inf" otherwise (OpenMetrics, unlike JSON, has
/// spellings for them).
[[nodiscard]] std::string openmetrics_number(double value);

}  // namespace detail

}  // namespace hpcpower::obs

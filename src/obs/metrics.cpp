#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace hpcpower::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty())
    throw std::invalid_argument("histogram: at least one bucket edge required");
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (std::isnan(edges_[i]) || (i > 0 && edges_[i] <= edges_[i - 1]))
      throw std::invalid_argument("histogram: edges must be strictly increasing");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const std::lock_guard lock(mutex_);
  std::size_t bucket = edges_.size();  // overflow (and NaN) bucket
  if (!std::isnan(value)) {
    // Upper-inclusive: first edge >= value, so a value exactly on an edge
    // lands in that edge's bucket ("le" semantics).
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
    bucket = static_cast<std::size_t>(it - edges_.begin());
    sum_ += value;
    if (finite_count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++finite_count_;
  }
  ++counts_[bucket];
  ++count_;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard lock(mutex_);
  Snapshot out;
  out.edges = edges_;
  out.counts = counts_;
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  out.finite_count = finite_count_;
  return out;
}

void MetricRegistry::count(std::string_view name, std::uint64_t delta) {
  util::counters().add(name, delta);
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge())).first;
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> upper_edges) {
  const std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(
                          std::vector<double>(upper_edges.begin(), upper_edges.end()))))
             .first;
    return *it->second;
  }
  const Histogram& existing = *it->second;
  if (!std::equal(existing.edges_.begin(), existing.edges_.end(), upper_edges.begin(),
                  upper_edges.end()))
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "': redefined with different bucket edges");
  return *it->second;
}

Timer& MetricRegistry::timer(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end())
    it = timers_.emplace(std::string(name), std::unique_ptr<Timer>(new Timer())).first;
  return *it->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot out;
  out.counters = util::counters().snapshot();
  const std::lock_guard lock(mutex_);
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.gauges.emplace_back(name, gauge->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_)
    out.histograms.emplace_back(name, hist->snapshot());
  out.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_)
    out.timers.push_back({name, timer->calls(), timer->total_ns()});
  return out;
}

void MetricRegistry::reset() {
  util::counters().reset();
  const std::lock_guard lock(mutex_);
  for (auto& [name, gauge] : gauges_) gauge->set(0.0);
  for (auto& [name, hist] : histograms_) {
    const std::lock_guard hist_lock(hist->mutex_);
    std::fill(hist->counts_.begin(), hist->counts_.end(), 0);
    hist->count_ = hist->finite_count_ = 0;
    hist->sum_ = hist->min_ = hist->max_ = 0.0;
  }
  for (auto& [name, timer] : timers_) {
    timer->total_ns_.store(0, std::memory_order_relaxed);
    timer->calls_.store(0, std::memory_order_relaxed);
  }
}

MetricRegistry& metrics() noexcept {
  static MetricRegistry registry;
  return registry;
}

std::optional<MetricsSnapshot::TimerEntry> slowest_timer(
    const MetricsSnapshot& snapshot, std::string_view prefix) {
  std::optional<MetricsSnapshot::TimerEntry> best;
  for (const auto& timer : snapshot.timers) {
    if (timer.name.rfind(prefix, 0) != 0) continue;
    if (!best || timer.total_ns > best->total_ns) best = timer;
  }
  return best;
}

}  // namespace hpcpower::obs

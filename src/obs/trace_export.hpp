#pragma once
// Chrome trace-event exporter: renders every recorded span as a JSON file
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Format: the "JSON object format" of the Trace Event spec — one complete
// ("ph":"X") event per span with microsecond ts/dur relative to the
// recording epoch, plus process/thread metadata so pool workers show up as
// named rows ("main", "worker-0", ...). Nesting is implied by time
// containment, which the viewers render as stacked slices.

#include <string>

namespace hpcpower::obs {

/// Renders all spans recorded so far (obs/span.hpp) as a Chrome trace JSON
/// document. Callers must quiesce parallel work first.
[[nodiscard]] std::string render_chrome_trace();

/// Convenience: render and write to `path`. Throws std::runtime_error on
/// I/O failure.
void write_chrome_trace(const std::string& path);

}  // namespace hpcpower::obs

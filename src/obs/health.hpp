#pragma once
// Component health model for the long-lived system (DESIGN.md §6).
//
// Subsystems with internal state machines push typed health probes here at
// their transition points — the streaming ingest daemon maps
// NORMAL/LAGGING/SHEDDING, the closed-loop power manager maps
// NORMAL/THROTTLE/DEGRADED, the prediction service reports snapshot installs
// and drift rollbacks, and the WAL reports checkpoint freshness. The registry
// rolls every component up into one OK/DEGRADED/UNHEALTHY readiness verdict
// (worst component wins), the shape a load balancer or operator dashboard
// polls.
//
// Determinism contract: health is monitoring-only. set() writes gauges
// ("health.<component>", "health.overall") and transition counters
// ("health.*") that surface in the manifest, the OpenMetrics export, and the
// self-metrics time series — never in a deterministic report section.
// Pushes happen at state-machine transitions that are themselves
// deterministic per campaign config, so single-campaign health trajectories
// are reproducible; concurrent campaigns (run_both_systems) interleave pushes
// and the registry simply holds the latest write.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpcpower::obs {

/// Readiness verdict, ordered by severity (worst wins in rollups).
enum class HealthStatus : int {
  kOk = 0,
  kDegraded = 1,
  kUnhealthy = 2,
};

[[nodiscard]] const char* health_status_name(HealthStatus status) noexcept;

struct ComponentHealth {
  std::string component;  ///< dotted lowercase, e.g. "stream.ingest"
  HealthStatus status = HealthStatus::kOk;
  std::string detail;     ///< free-form operator hint, e.g. "backlog 1.4x"
};

/// Thread-safe push-based registry of per-component health probes.
class HealthRegistry {
 public:
  /// Records the component's current status. On a status *transition* the
  /// "health.transitions" counter increments (plus "health.degraded.entered"
  /// / "health.unhealthy.entered" when entering those states), and the
  /// "health.<component>" and "health.overall" gauges are updated so health
  /// lands in the metric time series like any other signal.
  void set(std::string_view component, HealthStatus status,
           std::string_view detail = {});

  /// Last pushed status; kOk for components never seen.
  [[nodiscard]] HealthStatus status(std::string_view component) const;

  /// Worst status across all components; kOk when none registered.
  [[nodiscard]] HealthStatus overall() const;

  /// All components, sorted by name.
  [[nodiscard]] std::vector<ComponentHealth> snapshot() const;

  /// Forgets every component (tests). Gauges/counters are left to
  /// MetricRegistry::reset().
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ComponentHealth, std::less<>> components_;
};

/// The process-wide health registry.
[[nodiscard]] HealthRegistry& health() noexcept;

}  // namespace hpcpower::obs

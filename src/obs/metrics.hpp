#pragma once
// Typed metrics layer: one MetricRegistry unifying the process behind a
// single observable surface.
//
//   * counters    — monotonically increasing uint64 event counts. Backed by
//                   util::CounterRegistry (util/logging.hpp), which stays the
//                   storage so the existing util::counters() call sites and
//                   the new registry can never disagree.
//   * gauges      — last-written double values (run parameters, result sizes).
//   * histograms  — fixed upper-inclusive bucket edges ("le" semantics):
//                   bucket i counts values in (edges[i-1], edges[i]], the
//                   final implicit bucket counts values above the last edge.
//                   NaN observations land in the overflow bucket and are
//                   excluded from sum/min/max.
//   * timers      — accumulated wall-clock nanoseconds + call counts. Spans
//                   (obs/span.hpp) feed one timer per span name, so per-stage
//                   wall times in BENCH_perf.json and the run manifest come
//                   from the same data the trace profiler shows.
//
// Naming rule (enforced by tools/check_metric_names.sh): dotted lowercase,
// at least two components, e.g. "telemetry.samples.gap" or "stage.campaign".
//
// Determinism contract: nothing in this registry may feed back into analysis
// results. Counters/histogram bucket counts are commutative integer sums and
// stay bit-identical at any thread count; timer values and histogram sums
// are wall-clock/ordering dependent and appear only in the manifest and
// trace files, never in deterministic report sections (DESIGN.md §6).
//
// Handles returned by gauge()/histogram()/timer() are valid for the process
// lifetime; reset() zeroes values in place, so hot paths may cache them in
// function-local statics.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcpower::obs {

class MetricRegistry;

/// Last-written double value. Lock-free; safe to set from pool workers.
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Accumulated wall-clock time. Lock-free; spans add from any thread.
class Timer {
 public:
  void add(std::int64_t ns, std::uint64_t calls = 1) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    calls_.fetch_add(calls, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  Timer() = default;
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Histogram over fixed, strictly increasing upper bucket edges.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> edges;          ///< upper-inclusive bucket edges
    std::vector<std::uint64_t> counts;  ///< edges.size() + 1 buckets (overflow last)
    std::uint64_t count = 0;            ///< total observations (incl. NaN)
    double sum = 0.0;                   ///< sum of non-NaN observations
    double min = 0.0, max = 0.0;        ///< valid only when finite_count > 0
    std::uint64_t finite_count = 0;     ///< non-NaN observations
  };

  void observe(double value);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> edges);

  mutable std::mutex mutex_;
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t finite_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Everything the registry knows, sorted by name (for exporters and tests).
struct MetricsSnapshot {
  struct TimerEntry {
    std::string name;
    std::uint64_t calls = 0;
    std::int64_t total_ns = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  std::vector<TimerEntry> timers;
};

/// Thread-safe process-wide registry of typed metrics.
class MetricRegistry {
 public:
  /// Adds `delta` to the named counter (delegates to util::counters(), the
  /// single store shared with the legacy call sites).
  void count(std::string_view name, std::uint64_t delta = 1);

  /// Returns the named gauge, creating it at 0 first. Stable reference.
  [[nodiscard]] Gauge& gauge(std::string_view name);

  /// Returns the named histogram, creating it with `upper_edges` (strictly
  /// increasing, non-empty) first. Throws std::invalid_argument on invalid
  /// edges or when an existing histogram was created with different edges.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_edges);

  /// Returns the named timer, creating it at zero first. Stable reference.
  [[nodiscard]] Timer& timer(std::string_view name);

  /// All metrics, sorted by name; counters come from util::counters().
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric in place — counters (via util::counters().reset()),
  /// gauges, histogram bucket counts, timers. Handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// The process-wide metric registry.
[[nodiscard]] MetricRegistry& metrics() noexcept;

/// Largest-total timer whose name starts with `prefix` (empty = any), or
/// nullopt when none matches. Used by the "slowest stage" summary lines.
[[nodiscard]] std::optional<MetricsSnapshot::TimerEntry> slowest_timer(
    const MetricsSnapshot& snapshot, std::string_view prefix);

}  // namespace hpcpower::obs

#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace hpcpower::obs {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Bucket-estimated p99: the smallest upper edge whose cumulative count
/// covers 99% of observations; +inf when it falls in the overflow bucket,
/// NaN for an empty histogram.
double histogram_p99(const Histogram::Snapshot& h) {
  if (h.count == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto target = static_cast<std::uint64_t>(
      std::ceil(0.99 * static_cast<double>(h.count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.edges.size(); ++i) {
    cum += h.counts[i];
    if (cum >= target) return h.edges[i];
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

bool is_integer_column_ref(std::string_view ref) noexcept {
  if (ref.starts_with("counter.") || ref.starts_with("timer.")) return true;
  if (ref.starts_with("hist.") && ref.ends_with(".count")) return true;
  return false;
}

MetricTimeSeries::MetricTimeSeries(TimeSeriesConfig config)
    : config_(config) {
  if (config_.capacity == 0)
    throw std::invalid_argument("MetricTimeSeries: capacity must be > 0");
  if (config_.cadence_minutes <= 0)
    throw std::invalid_argument("MetricTimeSeries: cadence must be > 0");
}

std::int64_t MetricTimeSeries::last_minute() const noexcept {
  return ring_.empty() ? std::numeric_limits<std::int64_t>::min()
                       : ring_.back().minute;
}

std::uint32_t MetricTimeSeries::intern(std::string&& ref) {
  const auto it = ids_.find(ref);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(ref);
  ids_.emplace(std::move(ref), id);
  return id;
}

bool MetricTimeSeries::sample(std::int64_t minute) {
  if (minute % config_.cadence_minutes != 0) return false;
  return force_sample(minute);
}

bool MetricTimeSeries::force_sample(std::int64_t minute) {
  if (minute <= last_minute()) return false;

  const MetricsSnapshot snap = metrics().snapshot();
  Sample s;
  s.minute = minute;
  s.values.assign(names_.size(), std::numeric_limits<double>::quiet_NaN());
  const auto put = [&](std::string&& ref, double value) {
    const std::uint32_t id = intern(std::move(ref));
    if (id >= s.values.size())
      s.values.resize(id + 1, std::numeric_limits<double>::quiet_NaN());
    s.values[id] = value;
  };

  for (const auto& [name, value] : snap.counters)
    put("counter." + name, static_cast<double>(value));
  for (const auto& [name, value] : snap.gauges) put("gauge." + name, value);
  for (const auto& [name, h] : snap.histograms) {
    put("hist." + name + ".count", static_cast<double>(h.count));
    put("hist." + name + ".sum", h.sum);
    put("hist." + name + ".p99", histogram_p99(h));
  }
  for (const auto& t : snap.timers) {
    put("timer." + t.name + ".ns", static_cast<double>(t.total_ns));
    put("timer." + t.name + ".calls", static_cast<double>(t.calls));
  }

  ring_.push_back(std::move(s));
  ++taken_;
  metrics().count("monitor.samples");
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++evicted_;
    metrics().count("monitor.samples.evicted");
  }
  return true;
}

std::size_t MetricTimeSeries::sample_at_or_before(std::int64_t minute) const {
  // First sample with sample.minute > minute, then step back one.
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), minute,
      [](std::int64_t m, const Sample& s) { return m < s.minute; });
  if (it == ring_.begin()) return kNpos;
  return static_cast<std::size_t>(std::distance(ring_.begin(), it)) - 1;
}

double MetricTimeSeries::value_at(std::string_view ref,
                                  std::int64_t minute) const {
  const auto id_it = ids_.find(ref);
  if (id_it == ids_.end()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t i = sample_at_or_before(minute);
  if (i == kNpos) return std::numeric_limits<double>::quiet_NaN();
  const Sample& s = ring_[i];
  if (id_it->second >= s.values.size())
    return std::numeric_limits<double>::quiet_NaN();
  return s.values[id_it->second];
}

MetricTimeSeries::WindowStats MetricTimeSeries::count_above(
    std::string_view ref, double threshold, std::int64_t begin_exclusive,
    std::int64_t end_inclusive) const {
  WindowStats stats;
  const auto id_it = ids_.find(ref);
  if (id_it == ids_.end()) return stats;
  const std::uint32_t id = id_it->second;
  for (const Sample& s : ring_) {
    if (s.minute <= begin_exclusive || s.minute > end_inclusive) continue;
    if (id >= s.values.size() || std::isnan(s.values[id])) continue;
    ++stats.samples;
    if (s.values[id] > threshold) ++stats.above;
  }
  return stats;
}

std::vector<std::string> MetricTimeSeries::column_refs() const {
  std::vector<std::string> refs;
  refs.reserve(ids_.size());
  for (const auto& [ref, id] : ids_) refs.push_back(ref);
  return refs;
}

storage::Table MetricTimeSeries::to_table() const {
  storage::Table table;
  table.schema.push_back({"minute", storage::ColumnType::kInt64Delta});
  table.columns.emplace_back();
  auto& minute_col = table.columns.back().i64;
  minute_col.reserve(ring_.size());
  for (const Sample& s : ring_) minute_col.push_back(s.minute);

  for (const auto& [ref, id] : ids_) {
    const bool integer = is_integer_column_ref(ref);
    table.schema.push_back({ref, integer ? storage::ColumnType::kInt64Delta
                                         : storage::ColumnType::kFloat64Xor});
    table.columns.emplace_back();
    auto& col = table.columns.back();
    if (integer) {
      col.i64.reserve(ring_.size());
      for (const Sample& s : ring_) {
        const double v = id < s.values.size() ? s.values[id] : 0.0;
        col.i64.push_back(std::isnan(v) ? 0
                                        : static_cast<std::int64_t>(v));
      }
    } else {
      col.f64.reserve(ring_.size());
      for (const Sample& s : ring_) {
        col.f64.push_back(id < s.values.size()
                              ? s.values[id]
                              : std::numeric_limits<double>::quiet_NaN());
      }
    }
  }
  table.validate();
  return table;
}

void MetricTimeSeries::save(const std::string& path) const {
  storage::save_hpcb(path, to_table());
}

void MetricTimeSeries::clear() {
  ring_.clear();
  names_.clear();
  ids_.clear();
  taken_ = 0;
  evicted_ = 0;
}

}  // namespace hpcpower::obs
